"""Scheduling policies driving the runtime simulator.

A :class:`Scheduler` receives wakeups from the
:class:`~repro.sim.Simulator` — ``schedule(new_ready, new_finished)`` is
called whenever the processing element is idle and no decision is queued —
and answers with ``(task, design-point column)`` decisions.  Four policies
ship with the library, spanning the offline/online axis the simulator
exists to study:

* :class:`StaticReplayScheduler` — replays a precomputed offline schedule
  verbatim.  This is the bridge to every existing result: with zero
  perturbation it reproduces the offline evaluator's sigma bitwise, and
  under perturbation it shows how brittle the offline plan is.
* :class:`GreedyEnergyScheduler` — an online list scheduler: the ready
  task with the largest average energy first (the paper's
  ``SequenceDecEnergy`` weight, shared with
  :mod:`repro.scheduling.list_scheduler`), at the lowest-energy design
  point the deadline guard allows.
* :class:`DeadlineSlackScheduler` — orders ready tasks by downstream
  min-time pressure and spends the *live* slack proportionally: each task
  gets a slack share proportional to its fastest execution time and runs
  at the slowest design point fitting that allowance.
* :class:`BatteryReactiveScheduler` — queries the simulator's live
  battery state (state-of-charge on bounded batteries, the
  recoverable-charge ratio otherwise) and switches between low-current
  recovery mode and low-energy cruise mode per decision.

Policies are registered by name (:data:`POLICIES`) so
:class:`~repro.engine.SimulationJob` and the CLI can name them as data;
:func:`make_policy` builds instances, resolving ``static-replay``'s
offline schedule through the engine's algorithm registry.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError, SimulationError
from ..scheduling import SchedulingProblem
from ..taskgraph import validate_sequence

__all__ = [
    "Scheduler",
    "StaticReplayScheduler",
    "GreedyEnergyScheduler",
    "DeadlineSlackScheduler",
    "BatteryReactiveScheduler",
    "POLICIES",
    "register_policy",
    "policy_names",
    "make_policy",
]

#: Feasibility slack shared with the offline deadline comparisons.
_EPS = 1e-9


class Scheduler:
    """Base class: the wakeup protocol plus shared deadline arithmetic."""

    #: Registry/display name; instances may override per construction.
    name: str = "scheduler"

    def init(self, simulator) -> None:
        """Bind to the simulator before the run starts (estee-style)."""
        self.simulator = simulator

    def schedule(
        self, new_ready: Tuple[str, ...], new_finished: Tuple[str, ...]
    ) -> Sequence[Tuple[str, int]]:
        """Return decisions for the idle processing element.

        ``new_ready``/``new_finished`` list the tasks that changed state
        since the previous wakeup.  Returning an empty sequence while
        tasks are ready is a protocol violation (the simulator raises).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared helpers for online policies
    # ------------------------------------------------------------------
    def _deadline_allowance(self, name: str) -> float:
        """Longest execution time ``name`` may take while the rest of the
        graph can still finish by the deadline at full speed."""
        sim = self.simulator
        min_time = sim.graph.task(name).min_execution_time
        others = sim.remaining_min_time() - min_time
        return sim.deadline - sim.now - others

    def _feasible_columns(self, name: str) -> List[int]:
        """Design-point columns whose execution time fits the allowance.

        Falls back to the fastest column when nothing fits (the deadline
        is already compromised; run flat out and record the miss).
        """
        allowance = self._deadline_allowance(name)
        times = self.simulator.graph.task(name).execution_times()
        feasible = [
            column
            for column, time in enumerate(times)
            if time <= allowance + _EPS
        ]
        return feasible or [0]


class StaticReplayScheduler(Scheduler):
    """Replay a precomputed (sequence, assignment) offline schedule.

    The whole run is handed to the simulator at the first wakeup —
    exactly how an offline plan is deployed on a device — so perturbations
    change *when* things happen but never *what* runs where.
    """

    name = "static-replay"

    def __init__(
        self,
        sequence: Sequence[str],
        columns: Mapping[str, int],
        name: Optional[str] = None,
    ) -> None:
        self.sequence = tuple(sequence)
        missing = [task for task in self.sequence if task not in columns]
        if missing:
            raise ConfigurationError(
                f"static replay is missing design-point columns for {missing}"
            )
        self.columns = {str(task): int(columns[task]) for task in self.sequence}
        if name is not None:
            self.name = name
        self._dispatched = False

    def init(self, simulator) -> None:
        super().init(simulator)
        validate_sequence(simulator.graph, self.sequence)
        self._dispatched = False

    def schedule(self, new_ready, new_finished):
        if self._dispatched:  # only the first wakeup carries decisions
            return ()
        self._dispatched = True
        return [(task, self.columns[task]) for task in self.sequence]


class _OnlineScheduler(Scheduler):
    """Shared machinery of the online policies: one decision per wakeup.

    Maintains the ready pool from the wakeup deltas and picks the
    highest-weight task (ties broken by graph insertion order, matching
    :func:`repro.scheduling.list_scheduler.sequence_by_weights`), then
    delegates the design-point choice to :meth:`choose_column`.
    """

    def init(self, simulator) -> None:
        super().init(simulator)
        self._ready: List[str] = []
        self._rank = {
            name: index for index, name in enumerate(simulator.graph.task_names())
        }
        self._weights = self.task_weights()

    def task_weights(self) -> Dict[str, float]:
        """Per-task priority (higher runs first); computed once at init."""
        raise NotImplementedError

    def choose_column(self, name: str) -> int:
        """Design-point column for the chosen task (live-state dependent)."""
        raise NotImplementedError

    def schedule(self, new_ready, new_finished):
        self._ready.extend(new_ready)
        if not self._ready:
            return ()
        self._ready.sort(
            key=lambda name: (-self._weights[name], self._rank[name])
        )
        chosen = self._ready.pop(0)
        return [(chosen, self.choose_column(chosen))]


class GreedyEnergyScheduler(_OnlineScheduler):
    """Online greedy: biggest average energy first, cheapest feasible point.

    The task order reuses the ``SequenceDecEnergy`` weight of the offline
    list scheduler; the design point is the feasible column with the
    lowest energy (ties to the slower implementation).
    """

    name = "greedy-energy"

    def task_weights(self) -> Dict[str, float]:
        return {
            task.name: task.average_energy for task in self.simulator.graph
        }

    def choose_column(self, name: str) -> int:
        energies = self.simulator.graph.task(name).energies()
        return min(
            self._feasible_columns(name),
            key=lambda column: (energies[column], -column),
        )


class DeadlineSlackScheduler(_OnlineScheduler):
    """Spend live slack proportionally to each task's share of the work.

    Tasks are ordered by the min-time of the subgraph they root (critical
    downstream pressure first).  The chosen task receives a slack share
    proportional to its own fastest time relative to all remaining work,
    and runs at the slowest design point fitting that allowance — a
    self-correcting policy: jitter that eats slack automatically pushes
    later tasks to faster design points.
    """

    name = "deadline-slack"

    def task_weights(self) -> Dict[str, float]:
        graph = self.simulator.graph
        return {
            task.name: math.fsum(
                graph.task(member).min_execution_time
                for member in graph.subgraph_rooted_at(task.name)
            )
            for task in graph
        }

    def choose_column(self, name: str) -> int:
        sim = self.simulator
        min_time = sim.graph.task(name).min_execution_time
        remaining = sim.remaining_min_time()
        slack = sim.deadline - sim.now - remaining
        share = slack * (min_time / remaining) if remaining > 0 else 0.0
        allowance = min_time + max(share, 0.0)
        times = sim.graph.task(name).execution_times()
        fitting = [
            column
            for column in self._feasible_columns(name)
            if times[column] <= allowance + _EPS
        ]
        candidates = fitting or self._feasible_columns(name)
        # Slowest fitting implementation (largest execution time wins).
        return max(candidates, key=lambda column: (times[column], column))


class BatteryReactiveScheduler(_OnlineScheduler):
    """React to the live battery state when picking design points.

    Between attempts the policy asks the simulator for the battery's
    state of charge (bounded batteries) or the recoverable-charge ratio
    ``(sigma - delivered) / delivered`` (the unbounded paper setting).
    Under stress — state of charge below ``soc_reserve``, or recoverable
    ratio above ``stress_threshold`` — it runs the chosen task at the
    lowest-*current* feasible design point, giving the cell time to
    recover (the rate-capacity lever the paper's offline heuristic pulls
    statically); otherwise it sprints at the *fastest* feasible point,
    banking slack while the battery is fresh so the recovery mode has
    room to fire later.  Task order is energy-greedy, isolating the
    battery reaction as the only difference from
    :class:`GreedyEnergyScheduler`.
    """

    name = "battery-reactive"

    def __init__(
        self, stress_threshold: float = 0.25, soc_reserve: float = 0.25
    ) -> None:
        if stress_threshold < 0:
            raise ConfigurationError(
                f"stress_threshold must be >= 0, got {stress_threshold!r}"
            )
        if not (0.0 <= soc_reserve <= 1.0):
            raise ConfigurationError(
                f"soc_reserve must be within [0, 1], got {soc_reserve!r}"
            )
        self.stress_threshold = float(stress_threshold)
        self.soc_reserve = float(soc_reserve)

    def task_weights(self) -> Dict[str, float]:
        return {
            task.name: task.average_energy for task in self.simulator.graph
        }

    def _stressed(self) -> bool:
        sim = self.simulator
        soc = sim.state_of_charge()
        if soc is not None:
            return soc < self.soc_reserve
        delivered = sim.delivered_charge()
        if delivered <= 0.0:
            return False
        unavailable = sim.apparent_charge() - delivered
        return unavailable / delivered > self.stress_threshold

    def choose_column(self, name: str) -> int:
        task = self.simulator.graph.task(name)
        feasible = self._feasible_columns(name)
        if self._stressed():
            currents = task.currents()
            return min(feasible, key=lambda column: (currents[column], -column))
        times = task.execution_times()
        return min(feasible, key=lambda column: (times[column], column))


# ----------------------------------------------------------------------
# the policy registry
# ----------------------------------------------------------------------
#: ``factory(problem, params, model) -> Scheduler`` — ``model`` is an
#: optional battery-model override forwarded to offline runs.
PolicyFactory = Callable[..., Scheduler]

POLICIES: Dict[str, PolicyFactory] = {}


def register_policy(name: str, factory: PolicyFactory) -> None:
    """Register a policy factory ``factory(problem, params) -> Scheduler``."""
    POLICIES[name] = factory


def policy_names() -> Tuple[str, ...]:
    """All registered policy names, sorted."""
    return tuple(sorted(POLICIES))


def make_policy(
    name: str,
    problem: SchedulingProblem,
    params: Optional[Mapping[str, Any]] = None,
    model=None,
) -> Scheduler:
    """Build a policy instance by registry name.

    ``static-replay`` needs an offline schedule: either an explicit
    ``sequence``/``columns`` pair in ``params``, or the name of a
    registered offline ``algorithm`` (default ``"iterative"``) that is run
    on ``problem`` first — through the engine's algorithm registry, with
    ``model`` (e.g. a battery-cost cache wrapper) forwarded to it.
    """
    if name not in POLICIES:
        raise ConfigurationError(
            f"unknown simulation policy {name!r}; choose from {list(policy_names())}"
        )
    return POLICIES[name](problem, dict(params or {}), model)


def _make_static_replay(
    problem: SchedulingProblem, params: Dict[str, Any], model=None
) -> StaticReplayScheduler:
    if "sequence" in params or "columns" in params:
        if not ("sequence" in params and "columns" in params):
            raise ConfigurationError(
                "static-replay needs both 'sequence' and 'columns' when "
                "either is given explicitly"
            )
        return StaticReplayScheduler(params["sequence"], params["columns"])
    from ..engine.jobs import get_algorithm, resolve_algorithm_name

    algorithm = resolve_algorithm_name(str(params.get("algorithm", "iterative")))
    runner = get_algorithm(algorithm)
    outcome = runner(problem, model, dict(params.get("algorithm_params", {})))
    return StaticReplayScheduler(
        outcome.sequence,
        {task: int(column) for task, column in outcome.assignment.items()},
    )


def _simple_factory(cls: type, allowed: Tuple[str, ...] = ()) -> PolicyFactory:
    def build(problem: SchedulingProblem, params: Dict[str, Any], model=None):
        unknown = set(params) - set(allowed)
        if unknown:
            raise ConfigurationError(
                f"policy {cls.name!r} does not accept parameters {sorted(unknown)}"
            )
        return cls(**params)

    return build


register_policy("static-replay", _make_static_replay)
register_policy("greedy-energy", _simple_factory(GreedyEnergyScheduler))
register_policy("deadline-slack", _simple_factory(DeadlineSlackScheduler))
register_policy(
    "battery-reactive",
    _simple_factory(
        BatteryReactiveScheduler, allowed=("stress_threshold", "soc_reserve")
    ),
)
