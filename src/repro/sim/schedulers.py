"""Scheduling policies driving the runtime simulator.

A :class:`Scheduler` receives wakeups from the
:class:`~repro.sim.Simulator` — ``schedule(new_ready, new_finished)`` is
called whenever the processing element is idle and no decision is queued —
and answers with ``(task, design-point column)`` decisions.  Four policies
ship with the library, spanning the offline/online axis the simulator
exists to study:

* :class:`StaticReplayScheduler` — replays a precomputed offline schedule
  verbatim.  This is the bridge to every existing result: with zero
  perturbation it reproduces the offline evaluator's sigma bitwise, and
  under perturbation it shows how brittle the offline plan is.
* :class:`GreedyEnergyScheduler` — an online list scheduler: the ready
  task with the largest average energy first (the paper's
  ``SequenceDecEnergy`` weight, shared with
  :mod:`repro.scheduling.list_scheduler`), at the lowest-energy design
  point the deadline guard allows.
* :class:`DeadlineSlackScheduler` — orders ready tasks by downstream
  min-time pressure and spends the *live* slack proportionally: each task
  gets a slack share proportional to its fastest execution time and runs
  at the slowest design point fitting that allowance.
* :class:`BatteryReactiveScheduler` — queries the simulator's live
  battery state (state-of-charge on bounded batteries, the
  recoverable-charge ratio otherwise) and switches between low-current
  recovery mode and low-energy cruise mode per decision.

Policies are registered by name (:data:`POLICIES`) so
:class:`~repro.engine.SimulationJob` and the CLI can name them as data;
:func:`make_policy` builds instances, resolving ``static-replay``'s
offline schedule through the engine's algorithm registry.

Every duration estimate the online policies consult — ``sim.min_times``,
``remaining_min_time()``, the per-task execution-time rows, the energy
priorities — flows through the simulator's information mode
(:mod:`repro.sim.imode`): under ``exact`` (or no mode) the literal
pre-imode code paths run, under ``blind``/``mean``/``noisy`` the believed
tables replace them.  ``static-replay`` is imode-invariant by
construction: its offline plan is computed from the modeled times before
the run starts, exactly like a plan deployed to a device.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

from ..errors import ConfigurationError, SimulationError
from ..scheduling import SchedulingProblem
from ..taskgraph import validate_sequence

__all__ = [
    "Scheduler",
    "StaticReplayScheduler",
    "GreedyEnergyScheduler",
    "DeadlineSlackScheduler",
    "BatteryReactiveScheduler",
    "POLICIES",
    "register_policy",
    "policy_names",
    "make_policy",
]

#: Feasibility slack shared with the offline deadline comparisons.
_EPS = 1e-9


class Scheduler:
    """Base class: the wakeup protocol plus shared deadline arithmetic."""

    #: Registry/display name; instances may override per construction.
    name: str = "scheduler"

    def init(self, simulator) -> None:
        """Bind to the simulator before the run starts (estee-style)."""
        self.simulator = simulator

    def schedule(
        self, new_ready: Tuple[str, ...], new_finished: Tuple[str, ...]
    ) -> Sequence[Tuple[str, int]]:
        """Return decisions for the idle processing element.

        ``new_ready``/``new_finished`` list the tasks that changed state
        since the previous wakeup.  Returning an empty sequence while
        tasks are ready is a protocol violation (the simulator raises).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared helpers for online policies
    # ------------------------------------------------------------------
    def _deadline_allowance(
        self, name: str, remaining: Optional[float] = None
    ) -> float:
        """Longest execution time ``name`` may take while the rest of the
        graph can still finish by the deadline at full speed.

        ``remaining`` lets a caller that already queried
        ``remaining_min_time()`` this decision pass the value through —
        the state cannot change between queries of one decision, so the
        reuse is bit-identical to asking again.  Under a ``blind``
        information mode the believed bound is infinite, and so is the
        allowance: with no duration information, no column can be ruled
        out (``inf - inf`` must never reach the arithmetic below).
        """
        sim = self.simulator
        min_time = sim.min_times[name]
        if remaining is None:
            remaining = sim.remaining_min_time()
        if not (math.isfinite(remaining) and math.isfinite(min_time)):
            return math.inf
        others = remaining - min_time
        return sim.deadline - sim.now - others

    def _feasible_columns(
        self,
        name: str,
        times: Optional[Sequence[float]] = None,
        remaining: Optional[float] = None,
    ) -> List[int]:
        """Design-point columns whose execution time fits the allowance.

        Falls back to the fastest column when nothing fits (the deadline
        is already compromised; run flat out and record the miss).
        ``times``/``remaining`` are pass-throughs for values the caller
        already holds (same floats, fewer lookups per decision).
        """
        allowance = self._deadline_allowance(name, remaining)
        if times is None:
            times = self.simulator.graph.task(name).execution_times()
        feasible = [
            column
            for column, time in enumerate(times)
            if time <= allowance + _EPS
        ]
        return feasible or [0]


#: Graph -> set of (num_tasks, sequence) pairs already validated.  Replaying
#: the same schedule on the same graph across replications (the batch
#: simulator's entire workload, and any replication loop) re-validates a
#: pure function of unchanged inputs; this memo makes the repeat binds O(1).
#: Weakly keyed so graphs die normally; ``num_tasks`` in the entry guards
#: against a graph growing after validation.
_VALIDATED_SEQUENCES: "WeakKeyDictionary" = WeakKeyDictionary()


def _validate_sequence_once(graph, sequence: Tuple[str, ...]) -> None:
    try:
        seen = _VALIDATED_SEQUENCES.setdefault(graph, set())
    except TypeError:  # unhashable/unweakrefable graph stand-in: no memo
        validate_sequence(graph, sequence)
        return
    entry = (graph.num_tasks, sequence)
    if entry not in seen:
        validate_sequence(graph, sequence)
        seen.add(entry)


class StaticReplayScheduler(Scheduler):
    """Replay a precomputed (sequence, assignment) offline schedule.

    The whole run is handed to the simulator at the first wakeup —
    exactly how an offline plan is deployed on a device — so perturbations
    change *when* things happen but never *what* runs where.
    """

    name = "static-replay"

    def __init__(
        self,
        sequence: Sequence[str],
        columns: Mapping[str, int],
        name: Optional[str] = None,
    ) -> None:
        self.sequence = tuple(sequence)
        missing = [task for task in self.sequence if task not in columns]
        if missing:
            raise ConfigurationError(
                f"static replay is missing design-point columns for {missing}"
            )
        self.columns = {str(task): int(columns[task]) for task in self.sequence}
        if name is not None:
            self.name = name
        self._dispatched = False

    def init(self, simulator) -> None:
        super().init(simulator)
        _validate_sequence_once(simulator.graph, self.sequence)
        self._dispatched = False

    def schedule(self, new_ready, new_finished):
        if self._dispatched:  # only the first wakeup carries decisions
            return ()
        self._dispatched = True
        return [(task, self.columns[task]) for task in self.sequence]


#: Graph -> {policy class name: (weights, sort order)} for policies whose
#: weights are a pure function of the graph.  Replications (and every
#: batch-simulator lane) re-bind fresh policy instances to the same graph;
#: without the memo each bind recomputes an O(graph) — for deadline-slack
#: O(graph^2) — priority table that never changes.
_WEIGHTS_MEMO: "WeakKeyDictionary" = WeakKeyDictionary()

#: Graph -> {task name: execution-time tuple}.  Policy-independent and
#: read-only, so every bind on the same graph shares one dict.
_TIMES_MEMO: "WeakKeyDictionary" = WeakKeyDictionary()


class _OnlineScheduler(Scheduler):
    """Shared machinery of the online policies: one decision per wakeup.

    Maintains the ready pool from the wakeup deltas and picks the
    highest-weight task (ties broken by graph insertion order, matching
    :func:`repro.scheduling.list_scheduler.sequence_by_weights`), then
    delegates the design-point choice to :meth:`choose_column`.
    """

    #: Whether :meth:`task_weights` depends only on the graph (True for all
    #: built-in policies), making the per-graph weights memo safe.
    #: Subclasses whose weights read instance parameters or live simulator
    #: state must leave this False.
    WEIGHTS_GRAPH_PURE = False

    def init(self, simulator) -> None:
        super().init(simulator)
        #: Min-heap of ``self._order`` sort keys for the ready tasks.
        self._ready: List[tuple] = []
        rank = getattr(simulator, "_rank", None)
        self._rank = (
            rank
            if rank is not None
            else {
                name: index
                for index, name in enumerate(simulator.graph.task_names())
            }
        )
        #: rank -> name, to translate popped heap keys back to tasks.
        self._rank_name = {index: name for name, index in self._rank.items()}
        #: Believed-duration tables (``None`` for exact/unset — the
        #: original modeled-times code paths below then run unchanged).
        self._beliefs = getattr(simulator, "beliefs", None)
        #: ``self._order`` is the precomputed sort key per task —
        #: ``sort(key=self._order.__getitem__)`` orders exactly like
        #: sorting on ``(-weight, rank)`` tuples built per wakeup, without
        #: rebuilding them.  Memoised with the weights (both are shared
        #: read-only across binds to the same graph).
        self._weights, self._order = self._resolve_weights()
        if self._beliefs is not None:
            #: Every execution-time row a policy consults is believed.
            self._times = self._beliefs.times
            return
        #: Per-task design-point rows, shared per graph across binds.
        graph = simulator.graph
        try:
            times = _TIMES_MEMO.get(graph)
        except TypeError:  # unweakrefable graph stand-in: no memo
            times = None
        if times is None:
            times = {task.name: task.execution_times() for task in graph}
            try:
                _TIMES_MEMO[graph] = times
            except TypeError:
                pass
        self._times = times

    def _build_order(self, weights: Dict[str, float]) -> Dict[str, tuple]:
        rank = self._rank
        return {name: (-weight, rank[name]) for name, weight in weights.items()}

    def _resolve_weights(self):
        if not self.WEIGHTS_GRAPH_PURE:
            weights = self.task_weights()
            return weights, self._build_order(weights)
        graph = self.simulator.graph
        try:
            per_graph = _WEIGHTS_MEMO.setdefault(graph, {})
        except TypeError:  # unweakrefable graph stand-in: no memo
            weights = self.task_weights()
            return weights, self._build_order(weights)
        # Belief-mode weights are a pure function of (graph, mode), so the
        # memo key grows the mode token; the exact-mode key stays the bare
        # qualname, preserving (and sharing) every pre-imode entry.
        key = type(self).__qualname__
        if self._beliefs is not None:
            key = (key, self._beliefs.mode.token)
        entry = per_graph.get(key)
        if entry is None:
            weights = self.task_weights()
            entry = per_graph[key] = (weights, self._build_order(weights))
        return entry

    def task_weights(self) -> Dict[str, float]:
        """Per-task priority (higher runs first); computed once at init."""
        raise NotImplementedError

    def choose_column(self, name: str) -> int:
        """Design-point column for the chosen task (live-state dependent)."""
        raise NotImplementedError

    def schedule(self, new_ready, new_finished):
        # ``self._ready`` is a min-heap of ``(-weight, rank)`` sort keys
        # (``rank`` is unique, so the key is a total order and the heap
        # minimum equals the head of the old sort-then-pop(0) list —
        # identical decisions, without the O(n log n) re-sort per wakeup).
        ready = self._ready
        order = self._order
        for name in new_ready:
            heapq.heappush(ready, order[name])
        if not ready:
            return ()
        chosen = self._rank_name[heapq.heappop(ready)[1]]
        return [(chosen, self.choose_column(chosen))]


class GreedyEnergyScheduler(_OnlineScheduler):
    """Online greedy: biggest average energy first, cheapest feasible point.

    The task order reuses the ``SequenceDecEnergy`` weight of the offline
    list scheduler; the design point is the feasible column with the
    lowest energy (ties to the slower implementation).
    """

    name = "greedy-energy"
    WEIGHTS_GRAPH_PURE = True

    def task_weights(self) -> Dict[str, float]:
        if self._beliefs is not None:
            return self._beliefs.average_energy
        return {
            task.name: task.average_energy for task in self.simulator.graph
        }

    def choose_column(self, name: str) -> int:
        beliefs = self._beliefs
        if beliefs is not None:
            energies = beliefs.energies[name]
        else:
            energies = self.simulator.graph.task(name).energies()
        return min(
            self._feasible_columns(name, times=self._times[name]),
            key=lambda column: (energies[column], -column),
        )


class DeadlineSlackScheduler(_OnlineScheduler):
    """Spend live slack proportionally to each task's share of the work.

    Tasks are ordered by the min-time of the subgraph they root (critical
    downstream pressure first).  The chosen task receives a slack share
    proportional to its own fastest time relative to all remaining work,
    and runs at the slowest design point fitting that allowance — a
    self-correcting policy: jitter that eats slack automatically pushes
    later tasks to faster design points.
    """

    name = "deadline-slack"
    WEIGHTS_GRAPH_PURE = True

    def task_weights(self) -> Dict[str, float]:
        graph = self.simulator.graph
        if self._beliefs is not None:
            min_times = self._beliefs.min_times
            return {
                task.name: math.fsum(
                    min_times[member]
                    for member in graph.subgraph_rooted_at(task.name)
                )
                for task in graph
            }
        return {
            task.name: math.fsum(
                graph.task(member).min_execution_time
                for member in graph.subgraph_rooted_at(task.name)
            )
            for task in graph
        }

    def choose_column(self, name: str) -> int:
        sim = self.simulator
        min_time = sim.min_times[name]
        remaining = sim.remaining_min_time()
        if not (math.isfinite(remaining) and math.isfinite(min_time)):
            # Blind: no believed durations to apportion slack over — run
            # the fastest point, and never observe a finite time estimate.
            return 0
        now = sim.now
        deadline = sim.deadline
        slack = deadline - now - remaining
        share = slack * (min_time / remaining) if remaining > 0 else 0.0
        # One fused pass over the design points, replacing the
        # _feasible_columns + fitting-filter + max(key=...) pipeline: the
        # limits are the same floats the helper would compare against, and
        # ">=" on the running maxima reproduces the (time, column)
        # tie-break (later equal column wins).  Slowest fitting
        # implementation (largest execution time) wins; without a fitting
        # column, the slowest feasible one; without a feasible column, the
        # fastest point (the deadline is already compromised).
        share_limit = min_time + max(share, 0.0) + _EPS
        deadline_limit = deadline - now - (remaining - min_time) + _EPS
        times = self._times[name]
        best_feasible = -1
        best_feasible_time = -1.0
        best_fitting = -1
        best_fitting_time = -1.0
        for column, time in enumerate(times):
            if time <= deadline_limit:
                if time >= best_feasible_time:
                    best_feasible, best_feasible_time = column, time
                if time <= share_limit and time >= best_fitting_time:
                    best_fitting, best_fitting_time = column, time
        if best_fitting >= 0:
            return best_fitting
        if best_feasible >= 0:
            return best_feasible
        return 0


class BatteryReactiveScheduler(_OnlineScheduler):
    """React to the live battery state when picking design points.

    Between attempts the policy asks the simulator for the battery's
    state of charge (bounded batteries) or the recoverable-charge ratio
    ``(sigma - delivered) / delivered`` (the unbounded paper setting).
    Under stress — state of charge below ``soc_reserve``, or recoverable
    ratio above ``stress_threshold`` — it runs the chosen task at the
    lowest-*current* feasible design point, giving the cell time to
    recover (the rate-capacity lever the paper's offline heuristic pulls
    statically); otherwise it sprints at the *fastest* feasible point,
    banking slack while the battery is fresh so the recovery mode has
    room to fire later.  Task order is energy-greedy, isolating the
    battery reaction as the only difference from
    :class:`GreedyEnergyScheduler`.
    """

    name = "battery-reactive"
    WEIGHTS_GRAPH_PURE = True

    #: Battery telemetry (state of charge, delivered/apparent charge) is
    #: *measured*, never believed: an information mode degrades the
    #: policy's duration estimates while its stress sensing stays real.

    def __init__(
        self, stress_threshold: float = 0.25, soc_reserve: float = 0.25
    ) -> None:
        if stress_threshold < 0:
            raise ConfigurationError(
                f"stress_threshold must be >= 0, got {stress_threshold!r}"
            )
        if not (0.0 <= soc_reserve <= 1.0):
            raise ConfigurationError(
                f"soc_reserve must be within [0, 1], got {soc_reserve!r}"
            )
        self.stress_threshold = float(stress_threshold)
        self.soc_reserve = float(soc_reserve)

    def task_weights(self) -> Dict[str, float]:
        if self._beliefs is not None:
            return self._beliefs.average_energy
        return {
            task.name: task.average_energy for task in self.simulator.graph
        }

    def _stressed(self) -> bool:
        sim = self.simulator
        soc = sim.state_of_charge()
        if soc is not None:
            return soc < self.soc_reserve
        delivered = sim.delivered_charge()
        if delivered <= 0.0:
            return False
        unavailable = sim.apparent_charge() - delivered
        return unavailable / delivered > self.stress_threshold

    def choose_column(self, name: str) -> int:
        times = self._times[name]
        feasible = self._feasible_columns(name, times=times)
        if self._stressed():
            currents = self.simulator.graph.task(name).currents()
            return min(feasible, key=lambda column: (currents[column], -column))
        return min(feasible, key=lambda column: (times[column], column))


# ----------------------------------------------------------------------
# the policy registry
# ----------------------------------------------------------------------
#: ``factory(problem, params, model) -> Scheduler`` — ``model`` is an
#: optional battery-model override forwarded to offline runs.
PolicyFactory = Callable[..., Scheduler]

POLICIES: Dict[str, PolicyFactory] = {}


def register_policy(name: str, factory: PolicyFactory) -> None:
    """Register a policy factory ``factory(problem, params) -> Scheduler``."""
    POLICIES[name] = factory


def policy_names() -> Tuple[str, ...]:
    """All registered policy names, sorted."""
    return tuple(sorted(POLICIES))


def make_policy(
    name: str,
    problem: SchedulingProblem,
    params: Optional[Mapping[str, Any]] = None,
    model=None,
) -> Scheduler:
    """Build a policy instance by registry name.

    ``static-replay`` needs an offline schedule: either an explicit
    ``sequence``/``columns`` pair in ``params``, or the name of a
    registered offline ``algorithm`` (default ``"iterative"``) that is run
    on ``problem`` first — through the engine's algorithm registry, with
    ``model`` (e.g. a battery-cost cache wrapper) forwarded to it.
    """
    if name not in POLICIES:
        raise ConfigurationError(
            f"unknown simulation policy {name!r}; choose from {list(policy_names())}"
        )
    return POLICIES[name](problem, dict(params or {}), model)


def _make_static_replay(
    problem: SchedulingProblem, params: Dict[str, Any], model=None
) -> StaticReplayScheduler:
    if "sequence" in params or "columns" in params:
        if not ("sequence" in params and "columns" in params):
            raise ConfigurationError(
                "static-replay needs both 'sequence' and 'columns' when "
                "either is given explicitly"
            )
        return StaticReplayScheduler(params["sequence"], params["columns"])
    from ..engine.jobs import get_algorithm, resolve_algorithm_name

    algorithm = resolve_algorithm_name(str(params.get("algorithm", "iterative")))
    runner = get_algorithm(algorithm)
    outcome = runner(problem, model, dict(params.get("algorithm_params", {})))
    return StaticReplayScheduler(
        outcome.sequence,
        {task: int(column) for task, column in outcome.assignment.items()},
    )


def _simple_factory(cls: type, allowed: Tuple[str, ...] = ()) -> PolicyFactory:
    def build(problem: SchedulingProblem, params: Dict[str, Any], model=None):
        unknown = set(params) - set(allowed)
        if unknown:
            raise ConfigurationError(
                f"policy {cls.name!r} does not accept parameters {sorted(unknown)}"
            )
        return cls(**params)

    return build


register_policy("static-replay", _make_static_replay)
register_policy("greedy-energy", _simple_factory(GreedyEnergyScheduler))
register_policy("deadline-slack", _simple_factory(DeadlineSlackScheduler))
register_policy(
    "battery-reactive",
    _simple_factory(
        BatteryReactiveScheduler, allowed=("stress_threshold", "soc_reserve")
    ),
)
