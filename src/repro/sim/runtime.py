"""The discrete-event simulator: a task graph executed forward in time.

:class:`Simulator` runs one :class:`~repro.scheduling.SchedulingProblem`
on the paper's single-processing-element platform under a pluggable
:class:`~repro.sim.schedulers.Scheduler` policy and an optional
:class:`~repro.sim.perturbation.PerturbationModel`.  The loop follows
estee's shape — per-task runtime info, a ready set, and a scheduler
*wakeup protocol* — on a plain event heap:

1. whenever the processing element is idle and the scheduler's decision
   queue is empty, the scheduler is woken with the tasks that became ready
   and finished since the last wakeup, and returns ``(task, column)``
   decisions (a static policy may return the whole run upfront; online
   policies typically return one decision per wakeup);
2. the next queued decision starts on the PE: the attempt's realised
   duration is the modeled design-point time times a seeded jitter factor,
   and a ``task-end`` event is scheduled (the single-PE platform holds at
   most one in-flight event, so a plain slot replaces the event heap);
3. popping the event advances the :class:`~repro.sim.events.VirtualClock`.
   A successful attempt finishes the task and releases its successors; a
   failed attempt (its time and current were still spent) is retried at
   the front of the queue with the same design point and fresh draws.

Bit-level conformance
---------------------
The realised timeline is reduced to its cost exactly the way the offline
evaluator reduces a candidate: realised duration/current arrays into
``model.schedule_charge`` with an fsum makespan and the same
deadline-clamped rest rule.  With a zero perturbation and a
:class:`~repro.sim.schedulers.StaticReplayScheduler`, the realised arrays
*are* the offline arrays, so the simulated sigma equals the offline sigma
bit for bit — for every chemistry.  The golden-fixture conformance tests
pin exactly this.
"""

from __future__ import annotations

import bisect
import math
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple, Union
from weakref import WeakKeyDictionary

import numpy as np

from ..battery import BatteryModel
from ..errors import SimulationError
from ..obs import RECORDER as _OBS
from ..scheduling import SchedulingProblem
from ..scheduling.evaluator import _resolve_rest
import time as _time

from .events import TaskRuntimeInfo, TaskState, VirtualClock
from .imode import InformationMode, resolve_beliefs
from .livestate import ExactSum, LiveRuntimeState
from .perturbation import PerturbationModel, rng_for_seed
from .result import SimulatedInterval, SimulationResult

__all__ = ["Simulator"]

#: Feasibility slack, matching the offline schedule/deadline comparisons.
_EPS = 1e-9


class _GraphTables:
    """Per-graph lookup tables every simulator over that graph shares.

    All of these are pure functions of the (immutable-in-practice) task
    graph, yet used to be rebuilt in every ``Simulator.__init__`` — a cost
    replication loops and batch lanes pay per run for identical answers.
    """

    __slots__ = (
        "num_tasks",
        "rank",
        "successors",
        "min_times",
        "points",
        "attempt_rows",
        "num_inputs",
        "initial_ready",
        "remaining_partials",
    )

    def __init__(self, graph) -> None:
        names = graph.task_names()
        self.num_tasks = graph.num_tasks
        self.rank = {name: index for index, name in enumerate(names)}
        self.successors: Dict[str, Tuple[str, ...]] = {
            name: tuple(sorted(graph.successors(name), key=self.rank.__getitem__))
            for name in names
        }
        self.min_times = {
            name: graph.task(name).min_execution_time for name in names
        }
        self.points: Dict[str, Tuple] = {
            name: graph.task(name).ordered_design_points() for name in names
        }
        #: ``points`` flattened to (execution time, current) rows — the two
        #: fields the attempt hot path reads, without attribute dispatch.
        self.attempt_rows: Dict[str, Tuple[Tuple[float, float], ...]] = {
            name: tuple(
                (point.execution_time, point.current) for point in points
            )
            for name, points in self.points.items()
        }
        self.num_inputs = {
            name: len(graph.predecessors(name)) for name in names
        }
        self.initial_ready = tuple(
            name for name in names if self.num_inputs[name] == 0
        )
        #: Exact partials of summing every min-time — the starting state of
        #: the remaining-min-time accumulator (see ``ExactSum.from_partials``).
        self.remaining_partials = ExactSum(self.min_times.values()).partials


_GRAPH_TABLES: "WeakKeyDictionary" = WeakKeyDictionary()


def _graph_tables(graph) -> _GraphTables:
    try:
        tables = _GRAPH_TABLES.get(graph)
    except TypeError:  # unhashable/unweakrefable graph stand-in: no memo
        return _GraphTables(graph)
    # ``num_tasks`` guards against a graph mutated after memoisation, the
    # same defence the schedulers' sequence-validation memo uses.
    if tables is None or tables.num_tasks != graph.num_tasks:
        tables = _GraphTables(graph)
        try:
            _GRAPH_TABLES[graph] = tables
        except TypeError:  # pragma: no cover - get() above already filtered
            pass
    return tables


class Simulator:
    """Event-driven execution of one problem under a scheduling policy.

    Parameters
    ----------
    problem:
        The scheduling problem (graph + deadline + battery).
    scheduler:
        Policy driving the run (see :mod:`repro.sim.schedulers`).
    perturbation:
        Runtime deviations; ``None`` (or a null model) makes the run
        deterministic and draw-free.
    rng:
        Seed or :class:`numpy.random.Generator` for the perturbation
        draws.  Required only when the perturbation actually draws.
    model:
        Battery model override (e.g. an engine
        :class:`~repro.engine.CachedBatteryModel`); defaults to the
        problem's own chemistry model.
    clock:
        Virtual clock override (testing/instrumentation hook).
    evaluate_at:
        Where sigma is evaluated — ``"completion"`` or ``"deadline"``,
        with the offline stack's clamping semantics.
    trace_samples:
        When > 0, the result carries a sampled
        :class:`~repro.battery.DischargeTrace` of the realised profile.
    imode:
        The :class:`~repro.sim.InformationMode` mediating every duration
        estimate the policy sees (``None`` and ``exact`` are equivalent:
        policies observe the modeled times, through the literal pre-imode
        code paths — the bitwise conformance anchor).  Belief tables are
        resolved once per (graph, mode) and shared across replications;
        the realised timeline always draws from the *modeled* times, so
        beliefs change decisions, never physics.
    """

    def __init__(
        self,
        problem: SchedulingProblem,
        scheduler,
        perturbation: Optional[PerturbationModel] = None,
        rng: Union[None, int, np.random.Generator] = None,
        model: Optional[BatteryModel] = None,
        clock: Optional[VirtualClock] = None,
        evaluate_at: str = "completion",
        trace_samples: int = 0,
        imode: Optional[InformationMode] = None,
    ) -> None:
        _resolve_rest(0.0, problem.deadline, evaluate_at)  # validate the mode
        self.problem = problem
        self.graph = problem.graph
        self.deadline = float(problem.deadline)
        self.scheduler = scheduler
        self.perturbation = perturbation or PerturbationModel()
        self.model = model if model is not None else problem.model()
        self.clock = clock if clock is not None else VirtualClock()
        self.evaluate_at = evaluate_at
        self.trace_samples = int(trace_samples)
        if isinstance(rng, np.random.Generator):
            self.rng: Optional[np.random.Generator] = rng
        elif rng is not None:
            self.rng = rng_for_seed(int(rng))
        else:
            self.rng = None
        #: Resolved once: ``is_null`` is a property, and the loop asks per attempt.
        self._perturb_active = not self.perturbation.is_null
        if self._perturb_active and self.rng is None:
            raise SimulationError(
                "a stochastic perturbation needs an rng (seed or Generator)"
            )
        # Deterministic per-task tables and insertion-ordered successor
        # lists — pure functions of the graph, shared through a per-graph
        # memo across replications and batch lanes.
        tables = _graph_tables(self.graph)
        self._tables = tables
        self._rank = tables.rank
        self._successors = tables.successors
        self._min_times = tables.min_times
        #: Believed-duration tables (None for exact/unset: policies then
        #: observe the modeled values through the original code paths).
        self.imode = imode
        self.beliefs = resolve_beliefs(self.graph, imode)
        #: Public per-task min-time table (policies consult it per decision).
        #: Under an information mode this is the *believed* table; the event
        #: loop itself always runs on the modeled times.
        if self.beliefs is None:
            self.min_times = self._min_times
        else:
            self.min_times = self.beliefs.min_times
        # Canonical design-point rows, resolved once: the event loop and the
        # online policies index these every attempt/decision.
        self._points = tables.points
        self._attempt_rows = tables.attempt_rows
        # Run state (created fresh per run()).
        self._infos: Dict[str, TaskRuntimeInfo] = {}
        #: The one in-flight task-end event as ``(time, task)`` (the
        #: single-PE platform never holds more than one, so a heap of event
        #: objects would be pure overhead).
        self._pending_event: Optional[Tuple[float, str]] = None
        # Decision FIFO: popleft/appendleft are O(1) where the previous
        # list-based pop(0)/insert(0) shifted the whole queue (the static
        # replay policy enqueues every decision up front, so a plain list
        # made each task start O(n)).  Same elements, same order.
        self._queue: Deque[Tuple[str, int]] = deque()
        self._running: Optional[Tuple[str, int, float, bool, float]] = None
        self._new_ready: List[str] = []
        self._new_finished: List[str] = []
        #: Ready tasks as (graph rank, name), kept sorted — ready_tasks()
        #: reads it directly instead of scanning every task in the graph.
        self._ready_set: List[Tuple[int, str]] = []
        self._durations: List[float] = []
        self._currents: List[float] = []
        self._intervals: List[SimulatedInterval] = []
        self._completion_order: List[str] = []
        self._finished_count = 0
        self._retries = 0
        self._events = 0
        self._ran = False
        #: Incremental live-state totals backing the policy queries.  The
        #: charge side is always *measured* (realised durations/currents);
        #: only the remaining-min-time bound follows the beliefs: believed
        #: min-times for mean/noisy, the modeled table for exact, and a
        #: flat ``inf`` answer for blind (see :meth:`remaining_min_time`).
        beliefs = self.beliefs
        if beliefs is None or beliefs.remaining_partials is None:
            self._live = LiveRuntimeState(
                self.model, self._min_times, tables.remaining_partials
            )
        else:
            self._live = LiveRuntimeState(
                self.model, beliefs.min_times, beliefs.remaining_partials
            )
        #: Batch-driver hook: when set, a sigma query that would run the
        #: chemistry kernel first calls this (the driver answers it for every
        #: lane of the batch in one vectorized evaluation — see
        #: :class:`repro.sim.BatchSimulator`).
        self._sigma_batch: Optional[Callable[[], None]] = None
        # Observability: per-policy labels keep the counter catalogue
        # separable across the policies of one run (`sim.*[policy]`).
        self._obs_label = getattr(scheduler, "name", type(scheduler).__name__)

    # ------------------------------------------------------------------
    # queries offered to scheduling policies (the "runtime info" surface)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.clock.now

    def info(self, name: str) -> TaskRuntimeInfo:
        """Runtime info of one task (state, attempts, times)."""
        return self._infos[name]

    def ready_tasks(self) -> Tuple[str, ...]:
        """All currently ready tasks, in graph insertion order.

        Served from the insertion-ordered ready set maintained on state
        transitions (tasks enter on becoming READY, leave on starting), so
        the query costs O(ready) instead of scanning every task in the
        graph.  The order is pinned by a regression test against the
        original full-scan implementation.
        """
        return tuple(name for _, name in self._ready_set)

    def remaining_min_time(self) -> float:
        """Lower bound on the time still needed: sum of unfinished tasks'
        fastest design-point times (the running attempt counts in full —
        on failure it must rerun, and the bound must stay a bound).

        Answered from an exact running total (bit-identical to the fsum
        over unfinished tasks it replaces — see
        :mod:`repro.sim.livestate`).  Under a non-exact information mode
        the bound is computed over the *believed* min-times; under
        ``blind`` it is ``inf`` (no duration information exists, and the
        exact accumulator cannot hold infinities)."""
        if _OBS.enabled:
            _OBS.count("sim.query.remaining_min_time", label=self._obs_label)
        beliefs = self.beliefs
        if beliefs is not None and beliefs.blind:
            return math.inf
        return self._live.remaining_min_time()

    def delivered_charge(self) -> float:
        """Plain coulomb count of everything executed so far (mA·min)."""
        if _OBS.enabled:
            _OBS.count("sim.query.delivered_charge", label=self._obs_label)
        return self._live.delivered_charge()

    def apparent_charge(self) -> float:
        """Live sigma of the executed timeline, evaluated at the current time.

        Policies call this between attempts (the PE is idle at wakeup
        time), when the executed intervals end exactly at ``now`` — so the
        canonical back-to-back ``schedule_charge`` applies with zero rest.
        Time-insensitive chemistries answer from an exact running total;
        time-sensitive ones evaluate the vectorized kernel once per
        distinct ``(timeline length, now)`` state (the repeated queries of
        one decision hit the memo).
        """
        if _OBS.enabled:
            # Counted even via state_of_charge (which delegates here): the
            # counter tracks sigma evaluations actually requested.
            _OBS.count("sim.query.apparent_charge", label=self._obs_label)
        live = self._live
        if (
            self._sigma_batch is not None
            and live.needs_sigma_kernel
            and self._durations
            and live.sigma_memo_key != (len(self._durations), self.clock.now)
        ):
            self._sigma_batch()
        return live.apparent_charge(self.clock.now, self._durations, self._currents)

    def state_of_charge(self) -> Optional[float]:
        """Remaining capacity fraction, or ``None`` on an unbounded battery."""
        if _OBS.enabled:
            _OBS.count("sim.query.state_of_charge", label=self._obs_label)
        battery = self.problem.battery
        if not battery.has_finite_capacity:
            return None
        return max(0.0, 1.0 - self.apparent_charge() / battery.capacity)

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the whole graph and return the realised-timeline result.

        A simulator instance is single-shot: the run mutates per-task
        runtime state, so call sites wanting replications build one
        simulator per run (they are cheap).
        """
        with _OBS.span("sim.run", label=self._obs_label):
            self._begin()
            total = self.graph.num_tasks
            while self._finished_count < total:
                if self._running is None:
                    if not self._queue:
                        self._wakeup_scheduler()
                    self._start_next()
                else:
                    self._process_next_event()
            return self._finalize()

    def _begin(self) -> None:
        """Install the initial runtime state and bind the scheduler.

        Split out of :meth:`run` so the batch driver can set lanes up and
        then step them in lockstep with :meth:`_start_next` /
        :meth:`_process_next_event` — the exact loop body :meth:`run`
        executes, which is what keeps batch results bit-identical.
        """
        if self._ran:
            raise SimulationError("a Simulator instance runs exactly once")
        self._ran = True
        tables = self._tables
        for name in self.graph.task_names():
            self._infos[name] = TaskRuntimeInfo(
                unfinished_inputs=tables.num_inputs[name]
            )
        for name in tables.initial_ready:
            info = self._infos[name]
            info.state = TaskState.READY
            info.ready_time = 0.0
            self._new_ready.append(name)
            self._ready_set.append((self._rank[name], name))
        self.scheduler.init(self)

    @property
    def _finished(self) -> bool:
        """True when every task has completed (the loop's exit condition)."""
        return self._finished_count >= self.graph.num_tasks

    def _finalize(self, cost: Optional[float] = None) -> SimulationResult:
        """Reduce the realised timeline to its :class:`SimulationResult`.

        ``cost`` lets the batch driver hand in this lane's row of one
        vectorized ``schedule_charge_batch`` evaluation (bit-identical per
        row to the scalar path below); scalar runs compute it here.
        """
        makespan = math.fsum(self._durations)
        rest = _resolve_rest(makespan, self.deadline, self.evaluate_at)
        if cost is None:
            cost = self.model.schedule_charge(self._durations, self._currents, rest)
        depletion: Optional[float] = None
        trace = None
        battery = self.problem.battery
        if battery.has_finite_capacity or self.trace_samples > 0:
            profile = None
            if battery.has_finite_capacity:
                profile = self._profile()
                depletion = self.model.lifetime(profile, battery.capacity)
            if self.trace_samples > 0:
                from ..battery import simulate_discharge

                profile = profile if profile is not None else self._profile()
                trace = simulate_discharge(
                    self.model,
                    profile,
                    capacity=battery.capacity
                    if battery.has_finite_capacity
                    else None,
                    num_samples=max(2, self.trace_samples),
                )
        return SimulationResult(
            policy=getattr(self.scheduler, "name", type(self.scheduler).__name__),
            cost=cost,
            makespan=makespan,
            rest=rest,
            feasible=makespan <= self.deadline + _EPS,
            deadline=self.deadline,
            sequence=tuple(self._completion_order),
            columns={
                name: info.column
                for name, info in self._infos.items()
                if info.column is not None
            },
            intervals=tuple(self._intervals),
            retries=self._retries,
            events=self._events,
            evaluate_at=self.evaluate_at,
            depletion_time=depletion,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _profile(self):
        from ..battery import LoadProfile

        return LoadProfile.from_back_to_back(
            durations=list(self._durations), currents=list(self._currents)
        )

    def _wakeup_scheduler(self) -> None:
        new_ready = tuple(self._new_ready)
        new_finished = tuple(self._new_finished)
        self._new_ready = []
        self._new_finished = []
        self._events += 1
        if _OBS.enabled:
            _OBS.count("sim.event.wakeup", label=self._obs_label)
            started = _time.perf_counter()
            decisions = self.scheduler.schedule(new_ready, new_finished)
            _OBS.observe(
                "rt.sim.decision_s",
                _time.perf_counter() - started,
                label=self._obs_label,
            )
            _OBS.count("sim.decisions", len(decisions or ()), label=self._obs_label)
            if self.beliefs is not None:
                # Per-mode decision accounting.  Only belief modes add the
                # counter: the exact-mode counter catalogue must stay
                # byte-identical to the pre-imode one.
                _OBS.count(
                    "sim.imode.decisions",
                    len(decisions or ()),
                    label=f"{self._obs_label}|{self.beliefs.mode.label}",
                )
        else:
            decisions = self.scheduler.schedule(new_ready, new_finished)
        for decision in decisions or ():
            self._enqueue(decision)
        if not self._queue:
            raise SimulationError(
                f"scheduler {getattr(self.scheduler, 'name', '?')!r} stalled: "
                f"no decision while {self.ready_tasks()} are ready"
            )

    def _enqueue(self, decision: Iterable) -> None:
        try:
            name, column = decision
        except (TypeError, ValueError):
            raise SimulationError(
                f"scheduler decisions must be (task, column) pairs, got {decision!r}"
            ) from None
        info = self._infos.get(name)
        if info is None:
            raise SimulationError(f"scheduler assigned unknown task {name!r}")
        if info.state is TaskState.FINISHED:
            raise SimulationError(
                f"scheduler tried to assign finished task {name!r}"
            )
        points = self._points[name]
        if not (0 <= int(column) < len(points)):
            raise SimulationError(
                f"column {column!r} out of range for task {name!r} "
                f"({len(points)} design points)"
            )
        self._queue.append((name, int(column)))

    def _start_next(self) -> None:
        name, column = self._queue.popleft()
        info = self._infos[name]
        if info.state is not TaskState.READY:
            raise SimulationError(
                f"task {name!r} started while {info.state.value} "
                "(predecessors unfinished, or assigned twice)"
            )
        execution_time, current = self._attempt_rows[name][column]
        factor = 1.0
        failed = False
        if self._perturb_active:
            factor = self.perturbation.duration_factor(self.rng)
            failed = self.perturbation.draw_failure(self.rng)
        duration = execution_time * factor
        info.state = TaskState.RUNNING
        self._ready_set.remove((self._rank[name], name))
        info.column = column
        info.start_time = self.clock.now
        info.attempts += 1
        if failed and info.attempts > self.perturbation.max_retries:
            raise SimulationError(
                f"task {name!r} exhausted its retry budget "
                f"({self.perturbation.max_retries} retries)"
            )
        self._running = (name, column, current, failed, duration)
        self._pending_event = (self.clock.now + duration, name)

    def _process_next_event(self) -> None:
        event_time, event_task = self._pending_event
        self._pending_event = None
        self.clock.advance_to(event_time)
        self._events += 1
        if _OBS.enabled:
            _OBS.count("sim.event.task-end", label=self._obs_label)
        # The drawn duration is carried through (not recovered as
        # ``event time - start``): float subtraction would lose ulps, and the
        # realised durations must reproduce the offline arrays bit for bit
        # in the deterministic case.
        name, column, current, failed, duration = self._running
        if event_task != name:  # pragma: no cover - single-PE invariant
            raise SimulationError(
                f"event for {event_task!r} fired while {name!r} was running"
            )
        info = self._infos[name]
        self._durations.append(duration)
        self._currents.append(current)
        self._live.record_interval(duration, current)
        self._intervals.append(
            SimulatedInterval(
                task=name,
                column=column,
                start=info.start_time,
                duration=duration,
                current=current,
                attempt=info.attempts,
                failed=failed,
            )
        )
        self._running = None
        if failed:
            # The attempt's time and current are spent; the task re-enters
            # the PE at the front of the queue with the same design point
            # (fresh draws), preserving precedence order for every policy.
            self._retries += 1
            if _OBS.enabled:
                _OBS.count("sim.retries", label=self._obs_label)
            info.state = TaskState.READY
            bisect.insort(self._ready_set, (self._rank[name], name))
            self._queue.appendleft((name, column))
            return
        info.state = TaskState.FINISHED
        info.end_time = event_time
        self._finished_count += 1
        self._live.finish_task(name)
        self._completion_order.append(name)
        self._new_finished.append(name)
        for child in self._successors[name]:
            child_info = self._infos[child]
            child_info.unfinished_inputs -= 1
            if child_info.unfinished_inputs == 0:
                child_info.state = TaskState.READY
                child_info.ready_time = event_time
                self._new_ready.append(child)
                bisect.insort(self._ready_set, (self._rank[child], child))
            elif child_info.unfinished_inputs < 0:  # pragma: no cover
                raise SimulationError(
                    f"task {child!r} finished more inputs than it has"
                )

    def __repr__(self) -> str:
        return (
            f"Simulator({self.graph.name or 'graph'}: {self.graph.num_tasks} "
            f"tasks, policy={getattr(self.scheduler, 'name', '?')!r}, "
            f"now={self.clock.now:g})"
        )
