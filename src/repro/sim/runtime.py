"""The discrete-event simulator: a task graph executed forward in time.

:class:`Simulator` runs one :class:`~repro.scheduling.SchedulingProblem`
on the paper's single-processing-element platform under a pluggable
:class:`~repro.sim.schedulers.Scheduler` policy and an optional
:class:`~repro.sim.perturbation.PerturbationModel`.  The loop follows
estee's shape — per-task runtime info, a ready set, and a scheduler
*wakeup protocol* — on a plain event heap:

1. whenever the processing element is idle and the scheduler's decision
   queue is empty, the scheduler is woken with the tasks that became ready
   and finished since the last wakeup, and returns ``(task, column)``
   decisions (a static policy may return the whole run upfront; online
   policies typically return one decision per wakeup);
2. the next queued decision starts on the PE: the attempt's realised
   duration is the modeled design-point time times a seeded jitter factor,
   and a ``task-end`` :class:`~repro.sim.events.SimEvent` is pushed;
3. popping the event advances the :class:`~repro.sim.events.VirtualClock`.
   A successful attempt finishes the task and releases its successors; a
   failed attempt (its time and current were still spent) is retried at
   the front of the queue with the same design point and fresh draws.

Bit-level conformance
---------------------
The realised timeline is reduced to its cost exactly the way the offline
evaluator reduces a candidate: realised duration/current arrays into
``model.schedule_charge`` with an fsum makespan and the same
deadline-clamped rest rule.  With a zero perturbation and a
:class:`~repro.sim.schedulers.StaticReplayScheduler`, the realised arrays
*are* the offline arrays, so the simulated sigma equals the offline sigma
bit for bit — for every chemistry.  The golden-fixture conformance tests
pin exactly this.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..battery import BatteryModel
from ..errors import SimulationError
from ..obs import RECORDER as _OBS
from ..scheduling import SchedulingProblem
from ..scheduling.evaluator import _resolve_rest
import time as _time

from .events import SimEvent, TaskRuntimeInfo, TaskState, VirtualClock
from .perturbation import PerturbationModel, rng_for_seed
from .result import SimulatedInterval, SimulationResult

__all__ = ["Simulator"]

#: Feasibility slack, matching the offline schedule/deadline comparisons.
_EPS = 1e-9


class Simulator:
    """Event-driven execution of one problem under a scheduling policy.

    Parameters
    ----------
    problem:
        The scheduling problem (graph + deadline + battery).
    scheduler:
        Policy driving the run (see :mod:`repro.sim.schedulers`).
    perturbation:
        Runtime deviations; ``None`` (or a null model) makes the run
        deterministic and draw-free.
    rng:
        Seed or :class:`numpy.random.Generator` for the perturbation
        draws.  Required only when the perturbation actually draws.
    model:
        Battery model override (e.g. an engine
        :class:`~repro.engine.CachedBatteryModel`); defaults to the
        problem's own chemistry model.
    clock:
        Virtual clock override (testing/instrumentation hook).
    evaluate_at:
        Where sigma is evaluated — ``"completion"`` or ``"deadline"``,
        with the offline stack's clamping semantics.
    trace_samples:
        When > 0, the result carries a sampled
        :class:`~repro.battery.DischargeTrace` of the realised profile.
    """

    def __init__(
        self,
        problem: SchedulingProblem,
        scheduler,
        perturbation: Optional[PerturbationModel] = None,
        rng: Union[None, int, np.random.Generator] = None,
        model: Optional[BatteryModel] = None,
        clock: Optional[VirtualClock] = None,
        evaluate_at: str = "completion",
        trace_samples: int = 0,
    ) -> None:
        _resolve_rest(0.0, problem.deadline, evaluate_at)  # validate the mode
        self.problem = problem
        self.graph = problem.graph
        self.deadline = float(problem.deadline)
        self.scheduler = scheduler
        self.perturbation = perturbation or PerturbationModel()
        self.model = model if model is not None else problem.model()
        self.clock = clock if clock is not None else VirtualClock()
        self.evaluate_at = evaluate_at
        self.trace_samples = int(trace_samples)
        if isinstance(rng, np.random.Generator):
            self.rng: Optional[np.random.Generator] = rng
        elif rng is not None:
            self.rng = rng_for_seed(int(rng))
        else:
            self.rng = None
        if not self.perturbation.is_null and self.rng is None:
            raise SimulationError(
                "a stochastic perturbation needs an rng (seed or Generator)"
            )
        # Deterministic per-task tables and insertion-ordered successor lists.
        names = self.graph.task_names()
        self._rank = {name: index for index, name in enumerate(names)}
        self._successors: Dict[str, Tuple[str, ...]] = {
            name: tuple(
                sorted(self.graph.successors(name), key=self._rank.__getitem__)
            )
            for name in names
        }
        self._min_times = {
            name: self.graph.task(name).min_execution_time for name in names
        }
        # Run state (created fresh per run()).
        self._infos: Dict[str, TaskRuntimeInfo] = {}
        self._heap: List[SimEvent] = []
        self._queue: List[Tuple[str, int]] = []
        self._running: Optional[Tuple[str, int, float, bool, float]] = None
        self._new_ready: List[str] = []
        self._new_finished: List[str] = []
        self._durations: List[float] = []
        self._currents: List[float] = []
        self._intervals: List[SimulatedInterval] = []
        self._completion_order: List[str] = []
        self._finished_count = 0
        self._retries = 0
        self._events = 0
        self._seq = 0
        self._ran = False
        # Observability: per-policy labels keep the counter catalogue
        # separable across the policies of one run (`sim.*[policy]`).
        self._obs_label = getattr(scheduler, "name", type(scheduler).__name__)

    # ------------------------------------------------------------------
    # queries offered to scheduling policies (the "runtime info" surface)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.clock.now

    def info(self, name: str) -> TaskRuntimeInfo:
        """Runtime info of one task (state, attempts, times)."""
        return self._infos[name]

    def ready_tasks(self) -> Tuple[str, ...]:
        """All currently ready tasks, in graph insertion order."""
        return tuple(
            name
            for name in self.graph.task_names()
            if name in self._infos and self._infos[name].is_ready
        )

    def remaining_min_time(self) -> float:
        """Lower bound on the time still needed: sum of unfinished tasks'
        fastest design-point times (the running attempt counts in full —
        on failure it must rerun, and the bound must stay a bound)."""
        if _OBS.enabled:
            _OBS.count("sim.query.remaining_min_time", label=self._obs_label)
        return math.fsum(
            self._min_times[name]
            for name, info in self._infos.items()
            if not info.is_finished
        )

    def delivered_charge(self) -> float:
        """Plain coulomb count of everything executed so far (mA·min)."""
        if _OBS.enabled:
            _OBS.count("sim.query.delivered_charge", label=self._obs_label)
        return math.fsum(
            duration * current
            for duration, current in zip(self._durations, self._currents)
        )

    def apparent_charge(self) -> float:
        """Live sigma of the executed timeline, evaluated at the current time.

        Policies call this between attempts (the PE is idle at wakeup
        time), when the executed intervals end exactly at ``now`` — so the
        canonical back-to-back ``schedule_charge`` applies with zero rest.
        """
        if _OBS.enabled:
            # Counted even via state_of_charge (which delegates here): the
            # counter tracks sigma evaluations actually requested.
            _OBS.count("sim.query.apparent_charge", label=self._obs_label)
        if not self._durations:
            return 0.0
        return self.model.schedule_charge(self._durations, self._currents, 0.0)

    def state_of_charge(self) -> Optional[float]:
        """Remaining capacity fraction, or ``None`` on an unbounded battery."""
        if _OBS.enabled:
            _OBS.count("sim.query.state_of_charge", label=self._obs_label)
        battery = self.problem.battery
        if not battery.has_finite_capacity:
            return None
        return max(0.0, 1.0 - self.apparent_charge() / battery.capacity)

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the whole graph and return the realised-timeline result.

        A simulator instance is single-shot: the run mutates per-task
        runtime state, so call sites wanting replications build one
        simulator per run (they are cheap).
        """
        if self._ran:
            raise SimulationError("a Simulator instance runs exactly once")
        self._ran = True
        for name in self.graph.task_names():
            info = TaskRuntimeInfo(
                unfinished_inputs=len(self.graph.predecessors(name))
            )
            self._infos[name] = info
            if info.unfinished_inputs == 0:
                info.state = TaskState.READY
                info.ready_time = 0.0
                self._new_ready.append(name)
        self.scheduler.init(self)
        total = self.graph.num_tasks
        while self._finished_count < total:
            if self._running is None:
                if not self._queue:
                    self._wakeup_scheduler()
                self._start_next()
            else:
                self._process_next_event()
        makespan = math.fsum(self._durations)
        rest = _resolve_rest(makespan, self.deadline, self.evaluate_at)
        cost = self.model.schedule_charge(self._durations, self._currents, rest)
        depletion: Optional[float] = None
        trace = None
        battery = self.problem.battery
        if battery.has_finite_capacity or self.trace_samples > 0:
            profile = None
            if battery.has_finite_capacity:
                profile = self._profile()
                depletion = self.model.lifetime(profile, battery.capacity)
            if self.trace_samples > 0:
                from ..battery import simulate_discharge

                profile = profile if profile is not None else self._profile()
                trace = simulate_discharge(
                    self.model,
                    profile,
                    capacity=battery.capacity
                    if battery.has_finite_capacity
                    else None,
                    num_samples=max(2, self.trace_samples),
                )
        return SimulationResult(
            policy=getattr(self.scheduler, "name", type(self.scheduler).__name__),
            cost=cost,
            makespan=makespan,
            rest=rest,
            feasible=makespan <= self.deadline + _EPS,
            deadline=self.deadline,
            sequence=tuple(self._completion_order),
            columns={
                name: info.column
                for name, info in self._infos.items()
                if info.column is not None
            },
            intervals=tuple(self._intervals),
            retries=self._retries,
            events=self._events,
            evaluate_at=self.evaluate_at,
            depletion_time=depletion,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _profile(self):
        from ..battery import LoadProfile

        return LoadProfile.from_back_to_back(
            durations=list(self._durations), currents=list(self._currents)
        )

    def _wakeup_scheduler(self) -> None:
        new_ready = tuple(self._new_ready)
        new_finished = tuple(self._new_finished)
        self._new_ready = []
        self._new_finished = []
        self._events += 1
        if _OBS.enabled:
            _OBS.count("sim.event.wakeup", label=self._obs_label)
            started = _time.perf_counter()
            decisions = self.scheduler.schedule(new_ready, new_finished)
            _OBS.observe(
                "rt.sim.decision_s",
                _time.perf_counter() - started,
                label=self._obs_label,
            )
            _OBS.count("sim.decisions", len(decisions or ()), label=self._obs_label)
        else:
            decisions = self.scheduler.schedule(new_ready, new_finished)
        for decision in decisions or ():
            self._enqueue(decision)
        if not self._queue:
            raise SimulationError(
                f"scheduler {getattr(self.scheduler, 'name', '?')!r} stalled: "
                f"no decision while {self.ready_tasks()} are ready"
            )

    def _enqueue(self, decision: Iterable) -> None:
        try:
            name, column = decision
        except (TypeError, ValueError):
            raise SimulationError(
                f"scheduler decisions must be (task, column) pairs, got {decision!r}"
            ) from None
        if name not in self._infos:
            raise SimulationError(f"scheduler assigned unknown task {name!r}")
        info = self._infos[name]
        if info.is_finished:
            raise SimulationError(
                f"scheduler tried to assign finished task {name!r}"
            )
        task = self.graph.task(name)
        if not (0 <= int(column) < task.num_design_points):
            raise SimulationError(
                f"column {column!r} out of range for task {name!r} "
                f"({task.num_design_points} design points)"
            )
        self._queue.append((name, int(column)))

    def _start_next(self) -> None:
        name, column = self._queue.pop(0)
        info = self._infos[name]
        if info.state is not TaskState.READY:
            raise SimulationError(
                f"task {name!r} started while {info.state.value} "
                "(predecessors unfinished, or assigned twice)"
            )
        point = self.graph.task(name).ordered_design_points()[column]
        factor = 1.0
        failed = False
        if not self.perturbation.is_null:
            factor = self.perturbation.duration_factor(self.rng)
            failed = self.perturbation.draw_failure(self.rng)
        duration = point.execution_time * factor
        info.state = TaskState.RUNNING
        info.column = column
        info.start_time = self.clock.now
        info.attempts += 1
        if failed and info.attempts > self.perturbation.max_retries:
            raise SimulationError(
                f"task {name!r} exhausted its retry budget "
                f"({self.perturbation.max_retries} retries)"
            )
        self._running = (name, column, point.current, failed, duration)
        self._seq += 1
        heapq.heappush(
            self._heap,
            SimEvent(
                time=self.clock.now + duration,
                seq=self._seq,
                kind="task-end",
                task=name,
            ),
        )

    def _process_next_event(self) -> None:
        event = heapq.heappop(self._heap)
        self.clock.advance_to(event.time)
        self._events += 1
        if _OBS.enabled:
            _OBS.count(f"sim.event.{event.kind}", label=self._obs_label)
        # The drawn duration is carried through (not recovered as
        # ``event.time - start``): float subtraction would lose ulps, and the
        # realised durations must reproduce the offline arrays bit for bit
        # in the deterministic case.
        name, column, current, failed, duration = self._running
        if event.task != name:  # pragma: no cover - single-PE invariant
            raise SimulationError(
                f"event for {event.task!r} fired while {name!r} was running"
            )
        info = self._infos[name]
        self._durations.append(duration)
        self._currents.append(current)
        self._intervals.append(
            SimulatedInterval(
                task=name,
                column=column,
                start=info.start_time,
                duration=duration,
                current=current,
                attempt=info.attempts,
                failed=failed,
            )
        )
        self._running = None
        if failed:
            # The attempt's time and current are spent; the task re-enters
            # the PE at the front of the queue with the same design point
            # (fresh draws), preserving precedence order for every policy.
            self._retries += 1
            if _OBS.enabled:
                _OBS.count("sim.retries", label=self._obs_label)
            info.state = TaskState.READY
            self._queue.insert(0, (name, column))
            return
        info.state = TaskState.FINISHED
        info.end_time = event.time
        self._finished_count += 1
        self._completion_order.append(name)
        self._new_finished.append(name)
        for child in self._successors[name]:
            child_info = self._infos[child]
            child_info.unfinished_inputs -= 1
            if child_info.unfinished_inputs == 0:
                child_info.state = TaskState.READY
                child_info.ready_time = event.time
                self._new_ready.append(child)
            elif child_info.unfinished_inputs < 0:  # pragma: no cover
                raise SimulationError(
                    f"task {child!r} finished more inputs than it has"
                )

    def __repr__(self) -> str:
        return (
            f"Simulator({self.graph.name or 'graph'}: {self.graph.num_tasks} "
            f"tasks, policy={getattr(self.scheduler, 'name', '?')!r}, "
            f"now={self.clock.now:g})"
        )
