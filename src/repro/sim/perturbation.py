"""Seeded runtime perturbations: duration jitter and task failure/retry.

A :class:`PerturbationModel` is pure data describing how a simulated run
deviates from the modeled schedule:

* **duration jitter** — every attempt's execution time is the modeled
  design-point time multiplied by a random factor with mean 1:
  ``lognormal`` (sigma = ``jitter``, the classic heavy-right-tail runtime
  noise) or ``uniform`` (on ``[1 - jitter, 1 + jitter]``);
* **failure + retry** — each attempt independently fails with probability
  ``failure_rate``; a failed attempt consumes its full (perturbed)
  duration and current, then the task re-enters the ready set and is
  retried, up to ``max_retries`` extra attempts.

All randomness flows through an explicit :class:`numpy.random.Generator`
handed to the draw methods — the model itself holds no state — so a
(seed, policy) pair fully determines a run: the simulator draws in event
order, which is deterministic, making simulation results content-hashable
and engine-cacheable.  :func:`rng_for_seed` builds the canonical PCG64
stream used throughout the sim stack (``SeedSequence([seed, replication])``
keeps replications independent without magic offsets).

>>> model = PerturbationModel(jitter=0.2)
>>> rng = rng_for_seed(7)
>>> 0.0 < model.duration_factor(rng) < 10.0
True
>>> PerturbationModel.from_dict(model.to_dict()) == model
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Union

import numpy as np

from ..errors import ConfigurationError

__all__ = ["JITTER_MODELS", "PerturbationModel", "rng_for_seed"]

#: Supported multiplicative jitter distributions.
JITTER_MODELS = ("lognormal", "uniform")


def rng_for_seed(
    seed: Union[int, Sequence[int]], replication: Optional[int] = None
) -> np.random.Generator:
    """The sim stack's canonical seeded generator (PCG64 via SeedSequence).

    ``replication`` (when given) is folded into the seed material, so each
    replication of a simulation job draws from an independent stream while
    staying a pure function of ``(seed, replication)``.
    """
    material = list(seed) if isinstance(seed, (list, tuple)) else [int(seed)]
    if replication is not None:
        material.append(int(replication))
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(material)))


@dataclass(frozen=True)
class PerturbationModel:
    """Stochastic runtime deviations applied to every simulated attempt.

    Attributes
    ----------
    jitter:
        Spread of the multiplicative duration noise (0 disables jitter).
        For ``lognormal`` this is the underlying normal's sigma; for
        ``uniform`` the half-width of the factor interval.
    jitter_model:
        One of :data:`JITTER_MODELS`.
    failure_rate:
        Per-attempt failure probability in ``[0, 1)``.
    max_retries:
        Extra attempts allowed per task before the simulator abandons the
        run with a :class:`~repro.errors.SimulationError`.
    """

    jitter: float = 0.0
    jitter_model: str = "lognormal"
    failure_rate: float = 0.0
    max_retries: int = 16

    def __post_init__(self) -> None:
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter!r}")
        if self.jitter_model not in JITTER_MODELS:
            raise ConfigurationError(
                f"unknown jitter model {self.jitter_model!r}; "
                f"choose from {JITTER_MODELS}"
            )
        if self.jitter_model == "uniform" and self.jitter >= 1.0:
            raise ConfigurationError(
                "uniform jitter must be < 1 (duration factors stay positive), "
                f"got {self.jitter!r}"
            )
        if not (0.0 <= self.failure_rate < 1.0):
            raise ConfigurationError(
                f"failure_rate must be within [0, 1), got {self.failure_rate!r}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries!r}"
            )

    # ------------------------------------------------------------------
    # draws (explicit generator in, value out; the model holds no state)
    # ------------------------------------------------------------------
    @property
    def is_null(self) -> bool:
        """True when the model perturbs nothing (deterministic runs).

        A null model draws nothing from the generator, which is what makes
        a zero-perturbation simulation bit-identical to the offline
        evaluation regardless of seed.
        """
        return self.jitter == 0.0 and self.failure_rate == 0.0

    def duration_factor(self, rng: np.random.Generator) -> float:
        """One multiplicative duration factor (mean 1, strictly positive)."""
        if self.jitter == 0.0:
            return 1.0
        if self.jitter_model == "uniform":
            return float(rng.uniform(1.0 - self.jitter, 1.0 + self.jitter))
        # Lognormal with E[factor] = 1: mean of the underlying normal is
        # -sigma^2/2.
        return float(rng.lognormal(-0.5 * self.jitter * self.jitter, self.jitter))

    def draw_failure(self, rng: np.random.Generator) -> bool:
        """Whether one attempt fails (independent Bernoulli draw)."""
        if self.failure_rate == 0.0:
            return False
        return bool(rng.random() < self.failure_rate)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (inverse of :meth:`from_dict`)."""
        return {
            "jitter": self.jitter,
            "jitter_model": self.jitter_model,
            "failure_rate": self.failure_rate,
            "max_retries": self.max_retries,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PerturbationModel":
        """Rebuild a model from its :meth:`to_dict` form."""
        return cls(
            jitter=float(data.get("jitter", 0.0)),
            jitter_model=str(data.get("jitter_model", "lognormal")),
            failure_rate=float(data.get("failure_rate", 0.0)),
            max_retries=int(data.get("max_retries", 16)),
        )
