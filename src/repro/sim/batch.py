"""Lockstep batched Monte Carlo simulation: many replications, one driver.

Monte Carlo studies replicate one (scenario, policy) cell over seeded
perturbation streams.  Run scalar, every replication pays the whole stack
alone — and for policies that query live battery state, the dominant cost
is per-wakeup chemistry-kernel evaluations on *tiny* arrays, where numpy's
fixed per-call overhead (and the Rakhmatov mode-matrix setup) dwarfs the
arithmetic.

:class:`BatchSimulator` turns the replication loop inside out.  Each
replication lane **is** a scalar :class:`~repro.sim.Simulator` — the batch
driver never reimplements the event loop; it calls the exact same
``_wakeup_scheduler`` / ``_start_next`` / ``_process_next_event`` methods
``Simulator.run`` calls, one round per lane in lockstep.  Lockstep buys two
vectorization points:

* **Batched live sigma.**  Within one round, every lane's timeline is
  frozen while policies decide (timeline mutations happen strictly in the
  process phase).  The first lane whose sigma query misses its live-state
  memo triggers one *batched* evaluation: every active lane's realised
  timeline becomes a row of a zero-padded matrix costed by
  ``schedule_charge_batch``, and each lane's memo is primed with its row.
  Zero-padding at the row end is exact — padded intervals contribute
  ``0.0`` for every chemistry and extra zeros never change an ``fsum`` —
  so each primed value is **bit-identical** to the scalar kernel call it
  replaces.
* **Batched final costing.**  Finished lanes' timelines are costed in one
  ``schedule_charge_batch`` call with a per-row rest vector (the same
  deadline-clamped rest rule as the scalar path), again bit-identical per
  row.

Per-replication randomness is untouched: each lane owns its
``rng_for_seed(seed, replication)`` generator and draws in the scalar
event order, so a batch lane's :class:`~repro.sim.SimulationResult` equals
the scalar simulator's **bitwise** — sigma, makespan, intervals, retries,
events, everything.  The conformance suite pins exactly this across every
chemistry and policy.

Lanes fail independently: a replication that stalls or exhausts its retry
budget yields its exception in place of a result, and its batch siblings
run to completion — mirroring the per-job error isolation of the engine,
which is where batches are built (:class:`repro.engine.SimulationBatch`).
"""

from __future__ import annotations

import math
import time as _time
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..battery import BatteryModel
from ..errors import SimulationError
from ..obs import RECORDER as _OBS
from ..scheduling import SchedulingProblem
from ..scheduling.evaluator import _resolve_rest
from .perturbation import PerturbationModel
from .result import SimulationResult
from .runtime import Simulator

__all__ = ["BatchSimulator", "LaneOutcome"]

#: One lane's outcome: its result, or the exception that aborted it.
LaneOutcome = Union[SimulationResult, Exception]


class BatchSimulator:
    """Run many replications of one problem/policy cell in lockstep.

    Parameters
    ----------
    problem:
        The shared scheduling problem (graph + deadline + battery).
    schedulers:
        One policy instance **per replication** — lanes run concurrently,
        and policy instances carry per-run state, so they cannot be
        shared.  (For ``static-replay``, resolve the offline schedule once
        and construct one cheap replayer per lane from it; the engine's
        batch executor does exactly that.)
    rngs:
        One seed or :class:`numpy.random.Generator` per replication —
        the scalar path's ``rng_for_seed(seed, replication)`` streams.
        ``None`` entries (or a ``None`` sequence) are only valid with a
        null perturbation.
    perturbation, model, evaluate_at, trace_samples, imode:
        As on :class:`~repro.sim.Simulator`, shared by every lane (the
        belief tables of an information mode are per-graph, so all lanes
        share one resolved :class:`~repro.sim.imode.GraphBeliefs`).

    :meth:`run` returns one :data:`LaneOutcome` per replication, in order:
    the lane's :class:`~repro.sim.SimulationResult`, or the exception that
    aborted that lane (per-lane isolation — one failed replication never
    poisons its siblings).
    """

    def __init__(
        self,
        problem: SchedulingProblem,
        schedulers: Sequence,
        rngs: Optional[Sequence] = None,
        perturbation: Optional[PerturbationModel] = None,
        model: Optional[BatteryModel] = None,
        evaluate_at: str = "completion",
        trace_samples: int = 0,
        imode=None,
    ) -> None:
        schedulers = list(schedulers)
        if not schedulers:
            raise SimulationError("a batch needs at least one replication")
        if len(set(map(id, schedulers))) != len(schedulers):
            raise SimulationError(
                "batch lanes cannot share scheduler instances (policies carry "
                "per-run state); build one per replication"
            )
        if rngs is None:
            rngs = [None] * len(schedulers)
        rngs = list(rngs)
        if len(rngs) != len(schedulers):
            raise SimulationError(
                f"got {len(schedulers)} schedulers but {len(rngs)} rngs; "
                "each replication lane needs its own stream"
            )
        self.problem = problem
        self.model = model if model is not None else problem.model()
        self._lanes: List[Simulator] = [
            Simulator(
                problem,
                scheduler,
                perturbation=perturbation,
                rng=rng,
                model=self.model,
                evaluate_at=evaluate_at,
                trace_samples=trace_samples,
                imode=imode,
            )
            for scheduler, rng in zip(schedulers, rngs)
        ]
        self._errors: List[Optional[Exception]] = [None] * len(self._lanes)
        #: Lanes still running, as (lane index, lane) pairs.
        self._active: List[Tuple[int, Simulator]] = []
        self._ran = False
        self._obs_label = getattr(
            schedulers[0], "name", type(schedulers[0]).__name__
        )

    def __len__(self) -> int:
        return len(self._lanes)

    # ------------------------------------------------------------------
    # the lockstep loop
    # ------------------------------------------------------------------
    def run(self) -> Tuple[LaneOutcome, ...]:
        """Step every lane to completion and return the per-lane outcomes."""
        if self._ran:
            raise SimulationError("a BatchSimulator instance runs exactly once")
        self._ran = True
        with _OBS.span("sim.batch.run", label=self._obs_label):
            return self._run_lockstep()

    def _run_lockstep(self) -> Tuple[LaneOutcome, ...]:
        started = _time.perf_counter()
        lanes = self._lanes
        for index, lane in enumerate(lanes):
            lane._sigma_batch = self._prime_sigma_memos
            try:
                lane._begin()
            except Exception as exc:  # noqa: BLE001 - per-lane isolation
                self._errors[index] = exc
        self._active = [
            (index, lane)
            for index, lane in enumerate(lanes)
            if self._errors[index] is None and not lane._finished
        ]
        errors = self._errors
        rounds = 0
        while self._active:
            rounds += 1
            # Decide phase: wakeups, decisions and attempt starts.  No lane
            # timeline mutates here, which is what makes one batched sigma
            # evaluation valid for every active lane (see _prime_sigma_memos).
            for index, lane in self._active:
                if lane._running is None:
                    try:
                        if not lane._queue:
                            lane._wakeup_scheduler()
                        lane._start_next()
                    except Exception as exc:  # noqa: BLE001 - lane isolation
                        errors[index] = exc
            # Process phase: every started attempt completes its event.
            still_active: List[Tuple[int, Simulator]] = []
            for index, lane in self._active:
                if errors[index] is not None:
                    continue
                try:
                    lane._process_next_event()
                except Exception as exc:  # noqa: BLE001 - lane isolation
                    errors[index] = exc
                    continue
                if not lane._finished:
                    still_active.append((index, lane))
            self._active = still_active
        outcomes = self._finalize()
        if _OBS.enabled:
            _OBS.count("sim.batch.lanes", len(lanes), label=self._obs_label)
            _OBS.count("sim.batch.rounds", rounds, label=self._obs_label)
            _OBS.observe(
                "rt.sim.batch.run_s",
                _time.perf_counter() - started,
                label=self._obs_label,
            )
        return outcomes

    # ------------------------------------------------------------------
    # the vectorization points
    # ------------------------------------------------------------------
    def _prime_sigma_memos(self) -> None:
        """Answer every active lane's next sigma query in one kernel call.

        Called (through ``Simulator._sigma_batch``) when a policy's sigma
        query misses its lane's live-state memo during the decide phase.
        All active lanes' timelines are frozen until the process phase, so
        one zero-padded ``schedule_charge_batch`` evaluation at zero rest
        answers the round's queries for every lane at once; each row is
        bit-identical to the scalar ``schedule_charge`` call it replaces.
        """
        pending = [
            lane
            for _, lane in self._active
            if lane._durations
            and lane._live.needs_sigma_kernel
            and lane._live.sigma_memo_key
            != (len(lane._durations), lane.clock.now)
        ]
        if not pending:
            return
        width = max(len(lane._durations) for lane in pending)
        durations = np.zeros((len(pending), width))
        currents = np.zeros((len(pending), width))
        for row, lane in enumerate(pending):
            timeline = len(lane._durations)
            durations[row, :timeline] = lane._durations
            currents[row, :timeline] = lane._currents
        sigmas = self.model.schedule_charge_batch(durations, currents, 0.0)
        for lane, sigma in zip(pending, sigmas):
            lane._live.prime_sigma(
                (len(lane._durations), lane.clock.now), float(sigma)
            )
        if _OBS.enabled:
            _OBS.count("sim.batch.sigma_batches", label=self._obs_label)
            _OBS.count(
                "sim.batch.sigma_rows", len(pending), label=self._obs_label
            )

    def _finalize(self) -> Tuple[LaneOutcome, ...]:
        """Cost every completed lane in one batched evaluation."""
        completed = [
            (index, lane)
            for index, lane in enumerate(self._lanes)
            if self._errors[index] is None
        ]
        costs: dict = {}
        if completed:
            width = max(len(lane._durations) for _, lane in completed)
            durations = np.zeros((len(completed), width))
            currents = np.zeros((len(completed), width))
            rests = np.zeros(len(completed))
            for row, (_, lane) in enumerate(completed):
                timeline = len(lane._durations)
                durations[row, :timeline] = lane._durations
                currents[row, :timeline] = lane._currents
                rests[row] = _resolve_rest(
                    math.fsum(lane._durations), lane.deadline, lane.evaluate_at
                )
            sigmas = self.model.schedule_charge_batch(durations, currents, rests)
            costs = {index: float(sigma) for (index, _), sigma in zip(completed, sigmas)}
        outcomes: List[LaneOutcome] = []
        for index, lane in enumerate(self._lanes):
            error = self._errors[index]
            if error is not None:
                outcomes.append(error)
                continue
            try:
                outcomes.append(lane._finalize(cost=costs[index]))
            except Exception as exc:  # noqa: BLE001 - e.g. depletion/trace
                outcomes.append(exc)
        return tuple(outcomes)

    def __repr__(self) -> str:
        return (
            f"BatchSimulator({len(self._lanes)} lanes, "
            f"policy={self._obs_label!r})"
        )
