"""Incremental live-state accounting for the runtime simulator.

The scheduling policies query three quantities between attempts —
``remaining_min_time``, ``delivered_charge`` and ``apparent_charge`` — and
the original :class:`~repro.sim.Simulator` recomputed each one from scratch
per query: full ``fsum`` passes over every unfinished task or executed
interval, and a full chemistry-kernel evaluation of the entire timeline for
every sigma request.  That made live-state queries O(timeline) and the
state-querying policies several times slower than static replay
(BENCH_sim.json pins the gap).

This module replaces the recomputation with *exact* running state:

* :class:`ExactSum` — a Shewchuk-style exact accumulator (the algorithm
  behind :func:`math.fsum`): adding a value keeps the non-overlapping
  partials of the exact sum, and :meth:`ExactSum.value` rounds them once.
  Because the partials represent the exact (error-free) sum, the rounded
  value is **bit-identical** to ``math.fsum`` over the same multiset —
  including removals, which add the negated value.  Sums the simulator used
  to recompute per query become O(1) amortised updates per event.
* :class:`LiveRuntimeState` — the simulator's running totals:
  ``remaining_min_time`` (min-times of unfinished tasks), ``delivered``
  (plain coulomb count) and the live sigma.  For **time-insensitive**
  chemistries (``TIME_SENSITIVE`` is ``False`` — Peukert, ideal) each
  interval's contribution is independent of when it runs, so sigma is an
  exact running total too, updated once per executed interval; live queries
  are O(1) and the chemistry kernel is never re-run.  For time-sensitive
  chemistries (Rakhmatov–Vrudhula, KiBaM) sigma genuinely changes with the
  evaluation time, so the state keeps a one-entry memo keyed on
  ``(timeline length, now)``: the ~4 queries per decision the observability
  benchmark records collapse to a single vectorized kernel evaluation per
  wakeup, each bit-identical to the full recomputation it replaces.

Both the scalar :class:`~repro.sim.Simulator` and the lockstep
:class:`~repro.sim.BatchSimulator` lanes share this class, which is what
keeps their query surfaces bit-for-bit interchangeable.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ExactSum", "LiveRuntimeState"]


class ExactSum:
    """Error-free running sum with :func:`math.fsum`-identical rounding.

    Maintains Shewchuk non-overlapping partials (the same invariant
    ``math.fsum`` maintains internally), so :meth:`value` returns the
    correctly-rounded exact sum of everything added so far — bit-identical
    to ``math.fsum`` over the same values in any order.  Removing a value
    is adding its negation: the partials stay exact, so the identity keeps
    holding for running *differences* too (the simulator's shrinking
    remaining-min-time total).
    """

    __slots__ = ("_partials",)

    def __init__(self, values: Sequence[float] = ()) -> None:
        self._partials: List[float] = []
        for value in values:
            self.add(value)

    @classmethod
    def from_partials(cls, partials: Sequence[float]) -> "ExactSum":
        """Rebuild from a previously computed partials list (copied).

        Lets call sites that repeatedly start from the same initial multiset
        (every replication's remaining-min-time total starts from the same
        per-graph values) pay the accumulation once and clone the exact
        state afterwards.
        """
        sum_ = cls()
        sum_._partials = list(partials)
        return sum_

    @property
    def partials(self) -> Tuple[float, ...]:
        """The current non-overlapping partials (for :meth:`from_partials`)."""
        return tuple(self._partials)

    def add(self, value: float) -> None:
        """Fold one float into the exact partials (amortised O(1))."""
        partials = self._partials
        x = float(value)
        count = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            high = x + y
            low = y - (high - x)
            if low != 0.0:
                partials[count] = low
                count += 1
            x = high
        partials[count:] = [x]

    def value(self) -> float:
        """The correctly-rounded sum (bit-identical to ``math.fsum``)."""
        return math.fsum(self._partials)

    def __repr__(self) -> str:
        return f"ExactSum({self.value()!r}, partials={len(self._partials)})"


class LiveRuntimeState:
    """Running live-state totals of one simulated timeline.

    One instance per replication; the owning loop feeds it every executed
    interval (:meth:`record_interval`) and every successful completion
    (:meth:`finish_task`), and serves policy queries from the running
    state.  All values are bit-identical to the full recomputations they
    replace (see the module docstring for why).
    """

    __slots__ = (
        "_model",
        "_time_sensitive",
        "_min_times",
        "_remaining",
        "_pending_remaining",
        "_delivered",
        "_pending_charge",
        "_sigma",
        "_pending_durations",
        "_pending_currents",
        "_memo_key",
        "_memo_value",
    )

    def __init__(
        self,
        model,
        min_times: Mapping[str, float],
        remaining_partials: Optional[Sequence[float]] = None,
    ) -> None:
        self._model = model
        self._time_sensitive = bool(getattr(model, "TIME_SENSITIVE", True))
        self._min_times = dict(min_times)
        #: ``remaining_partials`` (when given) must be the exact partials of
        #: summing ``min_times.values()`` — the per-graph tables precompute
        #: them once so replications clone instead of re-accumulating.
        self._remaining = (
            ExactSum.from_partials(remaining_partials)
            if remaining_partials is not None
            else ExactSum(self._min_times.values())
        )
        self._delivered = ExactSum()
        #: Exact running sigma (time-insensitive chemistries only).
        self._sigma: Optional[ExactSum] = None if self._time_sensitive else ExactSum()
        #: Updates queued since the last matching query.  Every accumulator
        #: folds lazily — deferral never changes the values (the adds happen
        #: in the same order, just later), and a run that never asks a given
        #: question (static replay asks none) never pays for its accounting.
        self._pending_remaining: List[float] = []
        self._pending_charge: List[float] = []
        self._pending_durations: List[float] = []
        self._pending_currents: List[float] = []
        self._memo_key: Optional[Tuple[int, float]] = None
        self._memo_value = 0.0

    # ------------------------------------------------------------------
    # updates (called by the event loop)
    # ------------------------------------------------------------------
    def record_interval(self, duration: float, current: float) -> None:
        """Account one executed attempt (successful or failed)."""
        self._pending_charge.append(duration * current)
        if self._sigma is not None:
            self._pending_durations.append(duration)
            self._pending_currents.append(current)
        self._memo_key = None

    def _flush_pending(self) -> None:
        """Fold queued intervals into the running sigma (one kernel call).

        Contributions are evaluated through the same elementwise kernel as
        the array paths (time-to-end zero — time-insensitive kernels ignore
        it), so the running total accumulates the exact per-interval values
        a full timeline evaluation would reduce.
        """
        if not self._pending_durations:
            return
        contributions = self._model._contributions(
            np.asarray(self._pending_durations),
            np.asarray(self._pending_currents),
            np.zeros(len(self._pending_durations)),
        )
        sigma = self._sigma
        for contribution in contributions.tolist():
            sigma.add(contribution)
        self._pending_durations.clear()
        self._pending_currents.clear()

    def finish_task(self, name: str) -> None:
        """Remove a completed task from the remaining-min-time bound."""
        self._pending_remaining.append(-self._min_times[name])

    # ------------------------------------------------------------------
    # queries (called by scheduling policies)
    # ------------------------------------------------------------------
    def remaining_min_time(self) -> float:
        """Sum of unfinished tasks' fastest design-point times."""
        pending = self._pending_remaining
        if pending:
            remaining = self._remaining
            for value in pending:
                remaining.add(value)
            pending.clear()
        return self._remaining.value()

    def delivered_charge(self) -> float:
        """Plain coulomb count of everything executed so far."""
        pending = self._pending_charge
        if pending:
            delivered = self._delivered
            for value in pending:
                delivered.add(value)
            pending.clear()
        return self._delivered.value()

    def apparent_charge(
        self,
        now: float,
        durations: Sequence[float],
        currents: Sequence[float],
    ) -> float:
        """Live sigma of the executed back-to-back timeline at ``now``.

        ``durations``/``currents`` are the realised arrays the owning loop
        maintains anyway; time-insensitive chemistries answer from the
        running total without touching them, time-sensitive ones evaluate
        the vectorized schedule kernel once per distinct
        ``(timeline length, now)`` state.
        """
        if self._sigma is not None:
            self._flush_pending()
            return self._sigma.value()
        if not durations:
            return 0.0
        key = (len(durations), now)
        if key != self._memo_key:
            self._memo_value = self._model.schedule_charge(durations, currents, 0.0)
            self._memo_key = key
        return self._memo_value

    def prime_sigma(self, key: Tuple[int, float], value: float) -> None:
        """Install an externally computed sigma into the memo.

        The batch simulator evaluates sigma for many replications in one
        ``schedule_charge_batch`` call (bit-identical per row to the scalar
        path) and primes each lane's memo with its row.  Only meaningful
        for time-sensitive chemistries; time-insensitive ones already
        answer from their exact running total.
        """
        if self._sigma is None:
            self._memo_key = key
            self._memo_value = value

    @property
    def sigma_memo_key(self) -> Optional[Tuple[int, float]]:
        """The memoised (timeline length, now) state, if any."""
        return self._memo_key

    @property
    def needs_sigma_kernel(self) -> bool:
        """True when a sigma query must run the chemistry kernel (no memo)."""
        return self._sigma is None
