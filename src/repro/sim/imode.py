"""Information modes: what a scheduling policy *believes* about durations.

The simulator draws realised durations from the perturbation streams; the
online policies, until this module existed, planned against the *exact*
modeled execution times — an online scheduler that is never wrong in
expectation.  The paper's offline-vs-online question needs the missing
axis (estee's ``imode``): what the scheduler believes vs. what the
simulator draws.  An :class:`InformationMode` mediates **every** duration
estimate a policy sees:

* ``exact`` — beliefs are the modeled times (today's behaviour, and the
  conformance anchor: an exact-mode run is bit-identical to one with no
  mode at all);
* ``blind`` — no duration information: every believed time is ``inf``, so
  policies fall back to their information-free defaults (a blind policy
  never observes a finite duration estimate — a pinned property);
* ``mean`` — per-column means across the whole graph: the speed-ladder
  structure survives, per-task identity is erased;
* ``noisy(rel_error, seed)`` — the modeled times scaled by seeded,
  mean-one lognormal factors per (task, design point): a miscalibrated
  profile, reproducible from ``(graph, rel_error, seed)`` alone.

Belief draws live on their own RNG substream, derived from
``SeedSequence([seed, _BELIEF_STREAM])`` with a constant stream tag —
strictly separate material from the perturbation streams'
``SeedSequence([seed, replication])`` (:func:`~repro.sim.perturbation.
rng_for_seed`) — so changing the information mode never perturbs the
jitter/failure draws, and vice versa.  The belief-independence property
tests pin this contract.

Beliefs are resolved once per (graph, mode) into a :class:`GraphBeliefs`
table (believed times, min-times, energies, priority inputs) shared by
every simulator over that graph — including all lockstep batch lanes.

>>> mode = InformationMode.noisy(0.3, seed=7)
>>> mode.is_exact, mode.kind
(False, 'noisy')
>>> InformationMode.exact().is_exact
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from ..errors import ConfigurationError

__all__ = ["INFORMATION_MODES", "InformationMode", "GraphBeliefs", "resolve_beliefs"]

#: The supported mode kinds (mirrored by ``ScenarioSpec.imode`` validation).
INFORMATION_MODES: Tuple[str, ...] = ("exact", "blind", "mean", "noisy")

#: Stream tag mixed into the belief SeedSequence.  Deliberately far outside
#: any plausible replication index, so ``SeedSequence([seed, _BELIEF_STREAM])``
#: can never collide with a perturbation stream's
#: ``SeedSequence([seed, replication])``.
_BELIEF_STREAM = 0x1BE11EF5EED


@dataclass(frozen=True)
class InformationMode:
    """One policy-side information regime, as pure data.

    Attributes
    ----------
    kind:
        One of :data:`INFORMATION_MODES`.
    rel_error:
        Relative spread of the ``noisy`` mode's mean-one lognormal belief
        factors (must be positive for ``noisy``, zero otherwise).
    seed:
        Belief-stream seed of the ``noisy`` mode (zero otherwise); two
        equal seeds believe identical duration tables on the same graph.
    """

    kind: str = "exact"
    rel_error: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in INFORMATION_MODES:
            raise ConfigurationError(
                f"unknown information mode {self.kind!r}; "
                f"choose from {list(INFORMATION_MODES)}"
            )
        if self.kind == "noisy":
            if not self.rel_error > 0:
                raise ConfigurationError(
                    "a noisy information mode needs rel_error > 0, "
                    f"got {self.rel_error!r}"
                )
        else:
            if self.rel_error != 0.0:
                raise ConfigurationError(
                    f"rel_error only applies to the noisy mode, not {self.kind!r}"
                )
            if self.seed != 0:
                raise ConfigurationError(
                    f"a belief seed only applies to the noisy mode, not {self.kind!r}"
                )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def exact(cls) -> "InformationMode":
        """Full information: believed times are the modeled times."""
        return cls(kind="exact")

    @classmethod
    def blind(cls) -> "InformationMode":
        """No duration information: every believed time is ``inf``."""
        return cls(kind="blind")

    @classmethod
    def mean(cls) -> "InformationMode":
        """Per-column cross-task means: structure without task identity."""
        return cls(kind="mean")

    @classmethod
    def noisy(cls, rel_error: float, seed: int = 0) -> "InformationMode":
        """Modeled times scaled by seeded mean-one lognormal factors."""
        return cls(kind="noisy", rel_error=float(rel_error), seed=int(seed))

    # ------------------------------------------------------------------
    @property
    def is_exact(self) -> bool:
        """True for the full-information (conformance-anchor) mode."""
        return self.kind == "exact"

    @property
    def token(self) -> Tuple:
        """Hashable identity used by the per-graph belief/weights memos."""
        return (self.kind, self.rel_error, self.seed)

    @property
    def label(self) -> str:
        """Compact display form (``noisy(0.3,7)``; bare kind otherwise)."""
        if self.kind == "noisy":
            return f"noisy({self.rel_error:g},{self.seed})"
        return self.kind

    def belief_rng(self) -> np.random.Generator:
        """The belief substream: independent of every perturbation stream.

        >>> a = InformationMode.noisy(0.2, seed=3).belief_rng().random(2)
        >>> b = InformationMode.noisy(0.2, seed=3).belief_rng().random(2)
        >>> bool((a == b).all())
        True
        """
        return np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([self.seed, _BELIEF_STREAM]))
        )


class GraphBeliefs:
    """Resolved believed-duration tables of one (graph, mode) pair.

    Everything a policy may consult about durations, precomputed in
    canonical design-point column order (the order of
    :meth:`~repro.taskgraph.Task.ordered_design_points`, which is also the
    simulator's attempt/column order):

    ``times``
        task -> believed execution time per column.
    ``min_times``
        task -> believed fastest time (``inf`` under ``blind``).
    ``energies``
        task -> believed energy per column (believed time x real current —
        the current is a measured platform property, not an estimate).
    ``average_energy``
        task -> mean believed energy (the greedy/reactive priority input).
    ``remaining_partials``
        exact-sum partials of all believed min-times (``None`` under
        ``blind``, whose remaining-work bound is ``inf`` by definition).
    """

    __slots__ = (
        "mode",
        "blind",
        "times",
        "min_times",
        "energies",
        "average_energy",
        "remaining_partials",
    )

    def __init__(self, graph, mode: InformationMode) -> None:
        from .livestate import ExactSum

        self.mode = mode
        self.blind = mode.kind == "blind"
        names = graph.task_names()
        modeled: Dict[str, Tuple[float, ...]] = {
            name: graph.task(name).execution_times() for name in names
        }
        if mode.kind == "blind":
            times = {
                name: (math.inf,) * len(row) for name, row in modeled.items()
            }
        elif mode.kind == "mean":
            width = max(len(row) for row in modeled.values())
            column_means = [
                _column_mean(modeled, names, column) for column in range(width)
            ]
            times = {
                name: tuple(column_means[: len(row)])
                for name, row in modeled.items()
            }
        elif mode.kind == "noisy":
            rng = mode.belief_rng()
            spread = mode.rel_error
            times = {}
            for name in names:  # canonical draw order: task, then column
                times[name] = tuple(
                    time * rng.lognormal(-0.5 * spread * spread, spread)
                    for time in modeled[name]
                )
        else:  # exact tables are never materialised (beliefs stay None)
            times = modeled
        self.times = times
        self.min_times = {name: min(row) for name, row in times.items()}
        self.energies = {
            name: tuple(
                time * current
                for time, current in zip(times[name], graph.task(name).currents())
            )
            for name in names
        }
        self.average_energy = {
            name: (
                math.fsum(row) / len(row) if row else 0.0
            )
            for name, row in self.energies.items()
        }
        self.remaining_partials = (
            None if self.blind else ExactSum(self.min_times.values()).partials
        )

    def __repr__(self) -> str:
        return f"GraphBeliefs({self.mode.label}, {len(self.times)} tasks)"


def _column_mean(modeled, names, column: int) -> float:
    """Mean modeled time of one column across the tasks that have it."""
    values = [
        modeled[name][column] for name in names if column < len(modeled[name])
    ]
    return math.fsum(values) / len(values)


#: graph -> {mode token: GraphBeliefs}; weakly keyed so graphs die normally.
_BELIEFS_MEMO: "WeakKeyDictionary" = WeakKeyDictionary()


def resolve_beliefs(graph, mode: Optional[InformationMode]) -> Optional[GraphBeliefs]:
    """The shared belief tables for ``(graph, mode)``; ``None`` for exact.

    Exact mode (and ``None``) resolves to ``None`` so the simulator and the
    policies keep running the *literal* pre-imode code paths — the bitwise
    conformance anchor is "no beliefs object exists", not "a beliefs object
    that happens to contain the modeled times".
    """
    if mode is None or mode.is_exact:
        return None
    try:
        per_graph = _BELIEFS_MEMO.setdefault(graph, {})
    except TypeError:  # unhashable/unweakrefable graph stand-in: no memo
        return GraphBeliefs(graph, mode)
    beliefs = per_graph.get(mode.token)
    if beliefs is None:
        beliefs = per_graph[mode.token] = GraphBeliefs(graph, mode)
    return beliefs
