"""Results of one simulated execution: the realised timeline plus its cost.

A :class:`SimulationResult` is to the runtime simulator what
:class:`~repro.scheduling.evaluator.ScheduleEvaluation` is to the offline
evaluator — except the timeline it describes is the one that *actually
happened* under the policy and perturbations, including failed attempts
(which drew real current) and jittered durations.  The final ``cost`` is
computed by handing the realised duration/current arrays to the battery
model's canonical ``schedule_charge`` path, so a deterministic replay of an
offline schedule reproduces the offline sigma bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..battery import DischargeTrace, LoadProfile

__all__ = ["SimulatedInterval", "SimulationResult"]


@dataclass(frozen=True)
class SimulatedInterval:
    """One executed attempt on the processing element (back-to-back slots)."""

    task: str
    column: int
    start: float
    duration: float
    """Realised (possibly jittered) execution time of this attempt."""

    current: float
    attempt: int
    """1-based attempt number for the task."""

    failed: bool
    """True when this attempt failed (its time and current were still spent)."""

    @property
    def finish(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> Dict[str, Any]:
        return {
            "task": self.task,
            "column": self.column,
            "start": self.start,
            "duration": self.duration,
            "current": self.current,
            "attempt": self.attempt,
            "failed": self.failed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulatedInterval":
        return cls(
            task=str(data["task"]),
            column=int(data["column"]),
            start=float(data["start"]),
            duration=float(data["duration"]),
            current=float(data["current"]),
            attempt=int(data.get("attempt", 1)),
            failed=bool(data.get("failed", False)),
        )


@dataclass(frozen=True)
class SimulationResult:
    """Everything one :meth:`~repro.sim.Simulator.run` call produced."""

    policy: str
    """Name of the scheduling policy that drove the run."""

    cost: float
    """sigma of the realised timeline at the evaluation point (mA·min)."""

    makespan: float
    """Virtual time at which the last task finished."""

    rest: float
    """Idle time between completion and the sigma evaluation point."""

    feasible: bool
    """True when the realised makespan met the problem deadline."""

    deadline: float
    sequence: Tuple[str, ...]
    """Tasks in realised completion order (successful attempts only)."""

    columns: Dict[str, int]
    """Design-point column finally used per task."""

    intervals: Tuple[SimulatedInterval, ...]
    """Every executed attempt, in execution order (includes failures)."""

    retries: int
    """Total failed attempts across all tasks."""

    events: int
    """Events processed by the simulator's loop (throughput accounting)."""

    evaluate_at: str = "completion"
    depletion_time: Optional[float] = None
    """First time sigma reached the battery capacity, when one was given."""

    trace: Optional[DischargeTrace] = field(default=None, compare=False)
    """Optional sampled battery trace of the realised profile."""

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def num_attempts(self) -> int:
        return len(self.intervals)

    @property
    def total_busy_time(self) -> float:
        """Summed attempt durations (equals the makespan on the single PE)."""
        return math.fsum(interval.duration for interval in self.intervals)

    def assignment_columns(self) -> Dict[str, int]:
        """Final per-task design-point columns (a copy)."""
        return dict(self.columns)

    def to_profile(self) -> LoadProfile:
        """The realised discharge profile (one interval per attempt)."""
        return LoadProfile.from_back_to_back(
            durations=[interval.duration for interval in self.intervals],
            currents=[interval.current for interval in self.intervals],
            labels=[
                f"{interval.task}#{interval.attempt}"
                if interval.attempt > 1 or interval.failed
                else interval.task
                for interval in self.intervals
            ],
        )

    def summary(self) -> str:
        """One-line human-readable outcome."""
        status = "ok" if self.feasible else "DEADLINE MISS"
        tail = f", {self.retries} retries" if self.retries else ""
        return (
            f"{self.policy}: sigma={self.cost:.1f}, "
            f"makespan={self.makespan:.1f} ({status}{tail})"
        )

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (inverse of :meth:`from_dict`)."""
        return {
            "policy": self.policy,
            "cost": self.cost,
            "makespan": self.makespan,
            "rest": self.rest,
            "feasible": self.feasible,
            "deadline": self.deadline,
            "sequence": list(self.sequence),
            "columns": dict(self.columns),
            "intervals": [interval.to_dict() for interval in self.intervals],
            "retries": self.retries,
            "events": self.events,
            "evaluate_at": self.evaluate_at,
            "depletion_time": self.depletion_time,
            "trace": self.trace.to_dict() if self.trace is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationResult":
        """Rebuild a result from its :meth:`to_dict` form."""
        trace = data.get("trace")
        return cls(
            policy=str(data["policy"]),
            cost=float(data["cost"]),
            makespan=float(data["makespan"]),
            rest=float(data.get("rest", 0.0)),
            feasible=bool(data["feasible"]),
            deadline=float(data["deadline"]),
            sequence=tuple(data["sequence"]),
            columns={str(k): int(v) for k, v in data["columns"].items()},
            intervals=tuple(
                SimulatedInterval.from_dict(entry) for entry in data["intervals"]
            ),
            retries=int(data.get("retries", 0)),
            events=int(data.get("events", 0)),
            evaluate_at=str(data.get("evaluate_at", "completion")),
            depletion_time=data.get("depletion_time"),
            trace=DischargeTrace.from_dict(trace) if trace is not None else None,
        )

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.policy}, {len(self.sequence)} tasks, "
            f"cost={self.cost:g}, makespan={self.makespan:g}, "
            f"retries={self.retries})"
        )
