"""Event-loop primitives of the runtime simulator.

The simulator advances a :class:`VirtualClock` through a heap of
:class:`SimEvent` records; each task carries a :class:`TaskRuntimeInfo`
whose :class:`TaskState` walks ``WAITING -> READY -> RUNNING -> FINISHED``
(possibly looping through ``RUNNING`` several times when an attempt fails
and is retried).  The shapes follow estee's simulator — ``TaskState`` /
per-task runtime info / an explicit wakeup event — minus the simpy
dependency: the loop is a plain heap, which keeps the core importable
anywhere and the event order bit-deterministic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..errors import SimulationError

__all__ = ["VirtualClock", "SimEvent", "TaskState", "TaskRuntimeInfo"]


class VirtualClock:
    """Monotone virtual time; the simulator's only notion of "now".

    Pluggable so tests (and future co-simulation layers) can observe or
    intercept time advances; the default implementation simply stores the
    time of the last event popped from the heap.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock must start at >= 0, got {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def advance_to(self, time: float) -> float:
        """Move the clock forward to ``time`` (never backwards)."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"virtual time cannot run backwards: at {self._now!r}, "
                f"event at {time!r}"
            )
        self._now = max(self._now, float(time))
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:g})"


class TaskState(enum.Enum):
    """Lifecycle of one task inside a simulation run."""

    WAITING = "waiting"
    """At least one predecessor has not finished yet."""

    READY = "ready"
    """All predecessors finished; eligible for the scheduler."""

    RUNNING = "running"
    """Currently executing on the processing element."""

    FINISHED = "finished"
    """Completed successfully."""


@dataclass(order=True)
class SimEvent:
    """One scheduled wakeup in the simulation heap.

    Ordered by ``(time, seq)``: ``seq`` is a monotonically increasing
    tie-breaker assigned by the simulator, so simultaneous events pop in
    creation order and the whole run is deterministic.
    """

    time: float
    seq: int
    kind: str = field(compare=False)
    """Event type: ``"task-end"`` is the only kind the single-PE loop emits
    today; the field exists so multi-resource extensions can add their own
    without changing the heap discipline."""

    task: str = field(compare=False)
    """Name of the task the event concerns."""


@dataclass
class TaskRuntimeInfo:
    """Mutable per-task bookkeeping of one simulation run (estee-style)."""

    state: TaskState = TaskState.WAITING
    unfinished_inputs: int = 0
    """Predecessors not yet finished; 0 makes the task ready."""

    column: Optional[int] = None
    """Design-point column the scheduler chose (once assigned)."""

    ready_time: Optional[float] = None
    start_time: Optional[float] = None
    """Start of the most recent attempt."""

    end_time: Optional[float] = None
    """Successful completion time."""

    attempts: int = 0
    """Execution attempts so far (> 1 means the task failed and retried)."""

    @property
    def is_ready(self) -> bool:
        return self.state is TaskState.READY

    @property
    def is_finished(self) -> bool:
        return self.state is TaskState.FINISHED
