"""Event-driven runtime simulation of schedules under uncertainty.

Everything below :mod:`repro.sim` in the stack evaluates **static offline**
schedules: a (sequence, assignment) candidate is costed as if every task
ran for exactly its modeled execution time.  This package asks the
complementary *online* question — what actually happens at runtime when
durations jitter, tasks fail and retry, and the scheduler has to decide
on the fly — by executing a task graph forward in virtual time on the
modeled single-processing-element platform while tracking battery state
through the same chemistry kernels the offline cost stack uses.

The pieces (estee-style discrete-event shape):

* :class:`Simulator` (:mod:`repro.sim.runtime`) — the event loop: a
  :class:`VirtualClock`, a heap of :class:`SimEvent` wakeups, per-task
  :class:`TaskRuntimeInfo`, and a scheduler wakeup protocol
  (``schedule(new_ready, new_finished)``).
* :class:`Scheduler` policies (:mod:`repro.sim.schedulers`) —
  :class:`StaticReplayScheduler` (replays an offline schedule: the bridge
  to every existing result), :class:`GreedyEnergyScheduler`,
  :class:`DeadlineSlackScheduler` and :class:`BatteryReactiveScheduler`
  (queries live state-of-charge).
* :class:`PerturbationModel` (:mod:`repro.sim.perturbation`) — seeded
  multiplicative duration jitter (lognormal/uniform) and task
  failure + retry, driven by explicit :class:`numpy.random.Generator`
  streams so every run is reproducible and engine-cacheable.
* :class:`SimulationResult` (:mod:`repro.sim.result`) — the executed
  timeline plus the final sigma, computed through the model's
  ``schedule_charge`` so that replaying an offline schedule with zero
  perturbation reproduces the offline evaluator's cost **bitwise** (the
  conformance anchor, gated by the golden-fixture tests).

Orchestration at scale lives in :mod:`repro.engine`
(:class:`~repro.engine.SimulationJob` — content-hashed, parallel,
resumable) and :mod:`repro.experiments.simulate`
(:func:`~repro.experiments.run_simulation_suite`); the CLI entry point is
``python -m repro.cli simulate``.

>>> from repro.sim import Simulator, StaticReplayScheduler
>>> from repro.scheduling import DesignPointAssignment, SchedulingProblem
>>> from repro.taskgraph import build_g3
>>> problem = SchedulingProblem(graph=build_g3(), deadline=230.0)
>>> sequence = problem.graph.topological_order()
>>> columns = {name: 0 for name in sequence}
>>> result = Simulator(problem, StaticReplayScheduler(sequence, columns)).run()
>>> result.feasible and result.retries == 0
True
"""

from .batch import BatchSimulator, LaneOutcome
from .events import SimEvent, TaskRuntimeInfo, TaskState, VirtualClock
from .imode import (
    INFORMATION_MODES,
    GraphBeliefs,
    InformationMode,
    resolve_beliefs,
)
from .perturbation import JITTER_MODELS, PerturbationModel, rng_for_seed
from .result import SimulatedInterval, SimulationResult
from .runtime import Simulator
from .schedulers import (
    POLICIES,
    BatteryReactiveScheduler,
    DeadlineSlackScheduler,
    GreedyEnergyScheduler,
    Scheduler,
    StaticReplayScheduler,
    make_policy,
    policy_names,
    register_policy,
)

__all__ = [
    "VirtualClock",
    "SimEvent",
    "TaskState",
    "TaskRuntimeInfo",
    "PerturbationModel",
    "JITTER_MODELS",
    "rng_for_seed",
    "INFORMATION_MODES",
    "InformationMode",
    "GraphBeliefs",
    "resolve_beliefs",
    "SimulatedInterval",
    "SimulationResult",
    "Simulator",
    "BatchSimulator",
    "LaneOutcome",
    "Scheduler",
    "StaticReplayScheduler",
    "GreedyEnergyScheduler",
    "DeadlineSlackScheduler",
    "BatteryReactiveScheduler",
    "POLICIES",
    "register_policy",
    "policy_names",
    "make_policy",
]
