"""Export of experiment results to CSV and JSON.

The experiment drivers return :class:`~repro.analysis.TextTable` objects and
structured result dataclasses; these helpers turn them into files that
spreadsheets and plotting scripts can consume, so reproduction runs can be
archived and diffed.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Optional, Sequence, Union

from .comparison import ComparisonRow
from .tables import TextTable

__all__ = [
    "table_to_csv",
    "save_table_csv",
    "table_to_records",
    "comparison_rows_to_records",
    "save_json_records",
]

_PathLike = Union[str, Path]


def table_to_csv(table: TextTable) -> str:
    """Serialise a :class:`TextTable` to CSV text (headers + raw cell values)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(table.headers))
    for row in table.rows:
        writer.writerow(["" if cell is None else cell for cell in row])
    return buffer.getvalue()


def save_table_csv(table: TextTable, path: _PathLike) -> Path:
    """Write a table to ``path`` as CSV; returns the path written."""
    path = Path(path)
    path.write_text(table_to_csv(table), encoding="utf-8")
    return path


def table_to_records(table: TextTable) -> list:
    """A table as a list of per-row dictionaries (JSON-friendly)."""
    headers = [str(header) for header in table.headers]
    return [dict(zip(headers, row)) for row in table.rows]


def comparison_rows_to_records(
    rows: Sequence[ComparisonRow],
    baseline: Optional[str] = None,
    ours: Optional[str] = None,
) -> list:
    """Comparison rows as flat dictionaries, optionally with a % difference."""
    records = []
    for row in rows:
        record = {
            "problem": row.problem.name or row.problem.graph.name,
            "deadline": row.problem.deadline,
            "beta": row.problem.battery.beta,
        }
        for outcome in row.outcomes:
            record[f"{outcome.algorithm}.cost"] = outcome.cost
            record[f"{outcome.algorithm}.makespan"] = outcome.makespan
            record[f"{outcome.algorithm}.feasible"] = outcome.feasible
        if baseline is not None and ours is not None:
            record["percent_difference"] = row.percent_difference(baseline, ours)
        records.append(record)
    return records


def save_json_records(records: list, path: _PathLike, indent: int = 2) -> Path:
    """Write a list of records to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(records, indent=indent, default=_jsonify), encoding="utf-8")
    return path


def _jsonify(value):
    """Fallback encoder for numpy scalars and other simple objects."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, float):
        return value
    return str(value)
