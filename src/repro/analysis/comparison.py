"""Uniform comparison of schedulers across problem instances.

The Table 4 reproduction, the sweeps and the ablation study all need the
same thing: run several algorithms on the same problems and tabulate their
battery costs side by side.  :func:`compare_algorithms` does that once, so
every experiment shares one code path (and one set of tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..scheduling import SchedulingProblem
from .metrics import percent_difference
from .tables import TextTable

__all__ = ["AlgorithmOutcome", "ComparisonRow", "compare_algorithms", "comparison_table"]

#: An algorithm for comparison purposes: takes a problem, returns an object
#: with ``cost`` and ``makespan`` attributes (SchedulingSolution and
#: BaselineResult both qualify).
Algorithm = Callable[[SchedulingProblem], object]


@dataclass(frozen=True)
class AlgorithmOutcome:
    """Cost and makespan one algorithm achieved on one problem."""

    algorithm: str
    cost: float
    makespan: float
    feasible: bool


@dataclass(frozen=True)
class ComparisonRow:
    """All algorithms' outcomes on one problem instance."""

    problem: SchedulingProblem
    outcomes: Tuple[AlgorithmOutcome, ...]

    def outcome(self, algorithm: str) -> AlgorithmOutcome:
        """Look up one algorithm's outcome by name."""
        for outcome in self.outcomes:
            if outcome.algorithm == algorithm:
                return outcome
        raise KeyError(f"no outcome recorded for algorithm {algorithm!r}")

    def percent_difference(self, baseline: str, ours: str) -> float:
        """The paper's "% Diff" between two named algorithms on this problem."""
        return percent_difference(self.outcome(baseline).cost, self.outcome(ours).cost)


def compare_algorithms(
    problems: Sequence[SchedulingProblem],
    algorithms: Mapping[str, Algorithm],
) -> List[ComparisonRow]:
    """Run every algorithm on every problem and collect the outcomes.

    Algorithms that raise (e.g. an infeasible deadline for a baseline that
    cannot trade speed for energy) are recorded with ``cost = inf`` and
    ``feasible = False`` rather than aborting the whole comparison.
    """
    rows: List[ComparisonRow] = []
    for problem in problems:
        outcomes = []
        for name, algorithm in algorithms.items():
            try:
                result = algorithm(problem)
                cost = float(result.cost)
                makespan = float(result.makespan)
                feasible = bool(getattr(result, "feasible", makespan <= problem.deadline + 1e-9))
            except Exception:
                cost, makespan, feasible = float("inf"), float("inf"), False
            outcomes.append(
                AlgorithmOutcome(
                    algorithm=name, cost=cost, makespan=makespan, feasible=feasible
                )
            )
        rows.append(ComparisonRow(problem=problem, outcomes=tuple(outcomes)))
    return rows


def comparison_table(
    rows: Sequence[ComparisonRow],
    title: str = "Algorithm comparison",
    baseline: Optional[str] = None,
    ours: Optional[str] = None,
) -> TextTable:
    """Tabulate comparison rows; optionally add the paper-style "% Diff" column."""
    if not rows:
        return TextTable(title=title, headers=("problem",))
    algorithm_names = [outcome.algorithm for outcome in rows[0].outcomes]
    headers: List[str] = ["problem", "deadline"] + [f"{name} sigma" for name in algorithm_names]
    include_diff = baseline is not None and ours is not None
    if include_diff:
        headers.append("% diff")
    table = TextTable(title=title, headers=headers)
    for row in rows:
        cells: List = [row.problem.name or row.problem.graph.name, row.problem.deadline]
        cells.extend(row.outcome(name).cost for name in algorithm_names)
        if include_diff:
            cells.append(row.percent_difference(baseline, ours))
        table.add_row(*cells)
    return table
