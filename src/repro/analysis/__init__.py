"""Analysis helpers: metrics, text tables, comparisons, visualisation, export."""

from .comparison import (
    AlgorithmOutcome,
    ComparisonRow,
    compare_algorithms,
    comparison_table,
)
from .export import (
    comparison_rows_to_records,
    save_json_records,
    save_table_csv,
    table_to_csv,
    table_to_records,
)
from .leaderboard import LeaderboardEntry, compute_leaderboard, leaderboard_table
from .robustness import (
    PolicyStanding,
    RobustnessRow,
    compute_robustness,
    degradation_leaderboard,
    degradation_table,
    robustness_table,
)
from .metrics import (
    ScheduleMetrics,
    percent_difference,
    percent_saving,
    schedule_metrics,
)
from .tournament import (
    TournamentRow,
    TournamentStanding,
    compute_tournament,
    tournament_leaderboard,
    tournament_standings_table,
    tournament_table,
)
from .tables import TextTable, format_value
from .visualize import current_profile_chart, gantt_chart

__all__ = [
    "ScheduleMetrics",
    "schedule_metrics",
    "percent_difference",
    "percent_saving",
    "TextTable",
    "format_value",
    "AlgorithmOutcome",
    "ComparisonRow",
    "compare_algorithms",
    "comparison_table",
    "LeaderboardEntry",
    "compute_leaderboard",
    "leaderboard_table",
    "RobustnessRow",
    "PolicyStanding",
    "compute_robustness",
    "robustness_table",
    "degradation_leaderboard",
    "degradation_table",
    "TournamentRow",
    "TournamentStanding",
    "compute_tournament",
    "tournament_table",
    "tournament_leaderboard",
    "tournament_standings_table",
    "gantt_chart",
    "current_profile_chart",
    "table_to_csv",
    "save_table_csv",
    "table_to_records",
    "comparison_rows_to_records",
    "save_json_records",
]
