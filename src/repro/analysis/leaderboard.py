"""Suite leaderboard: per-algorithm aggregates over many problem instances.

The scenario suite produces one (problem, algorithm) result grid; this
module reduces it to a ranking.  The metrics deliberately avoid averaging
raw sigma across problems (scales differ by orders of magnitude between a
9-task G2 and a 45-task G3x3); instead each algorithm is scored *relative
to the best algorithm on the same problem*:

* **wins** — problems where the algorithm achieved the (possibly tied)
  lowest *feasible* sigma;
* **mean excess %** — mean over problems of ``(sigma / best_sigma - 1) *
  100`` (0 means it always matched the winner);
* **worst excess %** — the largest such gap;
* **feasible** / **errors** — deadline-respecting runs and captured
  failures;
* **time** — summed per-job execution time.

Only feasible results compete: a deadline-missing schedule can post an
arbitrarily low sigma simply by running everything slow, so infeasible
results neither set the per-problem best nor accrue wins or excess
statistics — they surface through the ``feasible`` count (and errors
through ``errors``).

>>> entries = compute_leaderboard([
...     ("p1", "a", 10.0, True, 0.1), ("p1", "b", 12.0, True, 0.1),
...     ("p2", "a", 5.0, True, 0.1), ("p2", "b", 5.0, True, 0.1),
... ])
>>> [(entry.algorithm, entry.wins) for entry in entries]
[('a', 2), ('b', 1)]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .tables import TextTable

__all__ = ["LeaderboardEntry", "compute_leaderboard", "leaderboard_table"]

#: One result cell: (problem name, algorithm, cost or None, feasible or
#: None, elapsed seconds).  ``cost is None`` marks a failed job.
ResultCell = Tuple[str, str, Optional[float], Optional[bool], float]

#: Relative tolerance under which two sigmas count as a tied win.
_WIN_RTOL = 1e-9


@dataclass(frozen=True)
class LeaderboardEntry:
    """One algorithm's aggregate standing across the suite."""

    algorithm: str
    problems: int
    wins: int
    mean_excess_pct: float
    worst_excess_pct: float
    feasible: int
    errors: int
    total_time_s: float


def compute_leaderboard(cells: Iterable[ResultCell]) -> List[LeaderboardEntry]:
    """Rank algorithms by mean excess over the per-problem best feasible sigma.

    Ties in sigma (within relative tolerance) count as wins for every tied
    algorithm.  Failed cells (``cost is None``) are excluded from the
    excess statistics but counted in ``errors``; infeasible cells
    (``feasible`` falsy) are likewise excluded from best/wins/excess — a
    deadline-missing schedule must not out-rank schedules that met the
    deadline.  The returned list is sorted best first (mean excess
    ascending, wins descending as the tiebreak).
    """
    by_problem: Dict[str, List[ResultCell]] = {}
    algorithms: List[str] = []
    for cell in cells:
        by_problem.setdefault(cell[0], []).append(cell)
        if cell[1] not in algorithms:
            algorithms.append(cell[1])

    stats = {
        name: {"wins": 0, "excesses": [], "feasible": 0, "errors": 0,
               "time": 0.0, "problems": 0}
        for name in algorithms
    }
    for problem, problem_cells in by_problem.items():
        costs = [
            cell[2] for cell in problem_cells if cell[2] is not None and cell[3]
        ]
        best = min(costs) if costs else None
        for _, algorithm, cost, feasible, elapsed in problem_cells:
            entry = stats[algorithm]
            entry["problems"] += 1
            entry["time"] += elapsed
            if cost is None:
                entry["errors"] += 1
                continue
            if feasible:
                entry["feasible"] += 1
            if best is not None and best > 0 and feasible:
                excess = (cost / best - 1.0) * 100.0
                entry["excesses"].append(excess)
                if cost <= best * (1.0 + _WIN_RTOL):
                    entry["wins"] += 1

    entries = []
    unscored = set()
    for algorithm in algorithms:
        entry = stats[algorithm]
        excesses = entry["excesses"]
        if not excesses:
            # No feasible, costed result ever competed: rank after every
            # algorithm with real standings instead of riding an empty 0.0%.
            unscored.add(algorithm)
        entries.append(
            LeaderboardEntry(
                algorithm=algorithm,
                problems=entry["problems"],
                wins=entry["wins"],
                mean_excess_pct=sum(excesses) / len(excesses) if excesses else 0.0,
                worst_excess_pct=max(excesses) if excesses else 0.0,
                feasible=entry["feasible"],
                errors=entry["errors"],
                total_time_s=entry["time"],
            )
        )
    entries.sort(
        key=lambda e: (
            e.algorithm in unscored,
            e.mean_excess_pct,
            -e.wins,
            e.algorithm,
        )
    )
    return entries


def leaderboard_table(entries: Iterable[LeaderboardEntry]) -> TextTable:
    """Render leaderboard entries as the suite report table.

    Timing stays off the table on purpose: the rendered output is part of
    the engine's "parallel runs are byte-identical to serial" contract, and
    wall-clock never is.  ``LeaderboardEntry.total_time_s`` keeps the
    number for programmatic use.
    """
    table = TextTable(
        title="Suite leaderboard (ranked by mean excess over per-problem best sigma)",
        headers=(
            "algorithm",
            "problems",
            "wins",
            "mean excess %",
            "worst excess %",
            "feasible",
            "errors",
        ),
        precision=2,
    )
    for entry in entries:
        table.add_row(
            entry.algorithm,
            entry.problems,
            entry.wins,
            entry.mean_excess_pct,
            entry.worst_excess_pct,
            entry.feasible,
            entry.errors,
        )
    return table
