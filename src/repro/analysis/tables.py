"""Plain-text table rendering for experiment reports.

Every experiment in :mod:`repro.experiments` returns its results as a
:class:`TextTable` so that benchmarks, examples and the CLI can all print
the same paper-style rows without duplicating formatting logic.  The output
is monospace-aligned text (also valid Markdown when ``markdown=True``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["TextTable", "format_value"]

Cell = Union[str, float, int, None]


def format_value(value: Cell, precision: int = 1) -> str:
    """Render one cell: floats with fixed precision, None as a dash."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class TextTable:
    """A titled table of rows, renderable as aligned text or Markdown."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Cell]] = field(default_factory=list)
    precision: int = 1

    def add_row(self, *cells: Cell) -> None:
        """Append a row; must have exactly one cell per header."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but the table has {len(self.headers)} columns"
            )
        self.rows.append(tuple(cells))

    def column(self, name: str) -> List[Cell]:
        """All raw values of the named column."""
        index = list(self.headers).index(name)
        return [row[index] for row in self.rows]

    def to_text(self, markdown: bool = False) -> str:
        """Render the table as aligned monospace text (or a Markdown table)."""
        rendered = [
            [format_value(cell, self.precision) for cell in row] for row in self.rows
        ]
        headers = [str(h) for h in self.headers]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
            for i in range(len(headers))
        ]

        def fmt_row(cells: Iterable[str]) -> str:
            padded = [cell.ljust(width) for cell, width in zip(cells, widths)]
            if markdown:
                return "| " + " | ".join(padded) + " |"
            return "  ".join(padded)

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_row(headers))
        if markdown:
            lines.append("|" + "|".join("-" * (width + 2) for width in widths) + "|")
        else:
            lines.append("  ".join("-" * width for width in widths))
        lines.extend(fmt_row(row) for row in rendered)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()
