"""Tournament analysis: policy robustness across information modes.

The robustness module reduces simulation records per (scenario, policy)
cell against the offline anchor; the tournament adds the axes the
``tour-*`` catalogue grid varies — DAG family, battery chemistry, jitter
level and, centrally, the **information mode** (what the policy believed
about durations, :mod:`repro.sim.imode`) — and ranks every policy's sigma
degradation *per mode*:

* :func:`compute_tournament` — :class:`TournamentRow` per cell: the
  robustness statistics annotated with the scenario's tournament axes;
* :func:`tournament_leaderboard` — one :class:`TournamentStanding` per
  (information mode, policy), ranked within each mode by mean degradation
  vs. the offline anchor (how much does taking a policy's duration
  information away actually cost?);
* table renderers for both, timing-free and fsum-reduced like the rest of
  the analysis layer, so a tournament report is a pure function of the
  records that feed it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from .robustness import RobustnessRow, compute_robustness
from .tables import TextTable

__all__ = [
    "TournamentRow",
    "TournamentStanding",
    "compute_tournament",
    "tournament_table",
    "tournament_leaderboard",
    "tournament_standings_table",
]

#: Presentation order of the information-mode kinds: decreasing knowledge.
_MODE_ORDER: Dict[str, int] = {"exact": 0, "noisy": 1, "mean": 2, "blind": 3}


def _mode_rank(label: str) -> Tuple[int, str]:
    """Sort key of a mode label (``noisy(0.3,101)`` sorts under ``noisy``)."""
    kind = label.split("(", 1)[0]
    return (_MODE_ORDER.get(kind, len(_MODE_ORDER)), label)


@dataclass(frozen=True)
class TournamentRow(RobustnessRow):
    """One (scenario, policy) cell annotated with its tournament axes."""

    family: str
    chemistry: str
    jitter: float
    imode: str
    """The information-mode label (``exact`` / ``blind`` / ``mean`` /
    ``noisy(rel_error,seed)``)."""

    @property
    def imode_kind(self) -> str:
        """The bare mode kind (``noisy(0.3,101)`` -> ``noisy``)."""
        return self.imode.split("(", 1)[0]


@dataclass(frozen=True)
class TournamentStanding:
    """One policy's aggregate standing under one information mode."""

    imode: str
    policy: str
    cells: int
    """Cells with an offline anchor that fed the degradation statistics."""

    mean_degradation_percent: float
    worst_degradation_percent: float
    feasible_rate: float
    """Deadline-hit rate pooled over every replication in the group."""


def _spec_label(spec) -> str:
    """The spec's information-mode label (duck-typed on ScenarioSpec)."""
    if spec.imode == "noisy":
        return f"noisy({spec.imode_rel_error:g},{spec.imode_seed})"
    return spec.imode


def compute_tournament(
    records: Iterable,
    specs: Mapping[str, object],
    offline_costs: Mapping[str, float],
) -> List[TournamentRow]:
    """Reduce simulation records into axis-annotated tournament rows.

    ``records`` and ``offline_costs`` are as in
    :func:`~repro.analysis.compute_robustness`; ``specs`` maps each
    scenario name to its :class:`~repro.scenarios.ScenarioSpec` (cells
    whose scenario is absent are dropped — they are not tournament
    entrants).  Rows come back ordered by (mode, scenario, policy), mode
    in decreasing-knowledge order, so reports are reproducible.
    """
    rows: List[TournamentRow] = []
    for row in compute_robustness(records, offline_costs):
        spec = specs.get(row.scenario)
        if spec is None:
            continue
        rows.append(
            TournamentRow(
                scenario=row.scenario,
                policy=row.policy,
                offline_cost=row.offline_cost,
                replications=row.replications,
                mean_cost=row.mean_cost,
                std_cost=row.std_cost,
                min_cost=row.min_cost,
                max_cost=row.max_cost,
                feasible_rate=row.feasible_rate,
                mean_retries=row.mean_retries,
                family=spec.family,
                chemistry=spec.chemistry,
                jitter=spec.jitter,
                imode=_spec_label(spec),
            )
        )
    rows.sort(key=lambda row: (_mode_rank(row.imode), row.scenario, row.policy))
    return rows


def tournament_table(rows: Sequence[TournamentRow]) -> TextTable:
    """Per-cell tournament table (mode-major, scenario/policy-minor)."""
    table = TextTable(
        title="Information-mode tournament (realised sigma vs. offline anchor)",
        headers=(
            "imode",
            "scenario",
            "policy",
            "chemistry",
            "jitter",
            "offline",
            "mean",
            "degr %",
            "feas %",
        ),
        precision=2,
    )
    for row in rows:
        table.add_row(
            row.imode,
            row.scenario,
            row.policy,
            row.chemistry,
            row.jitter,
            row.offline_cost if row.offline_cost is not None else "-",
            row.mean_cost,
            row.degradation_percent if row.degradation_percent is not None else "-",
            row.feasible_rate * 100.0,
        )
    return table


def tournament_leaderboard(
    rows: Sequence[TournamentRow],
) -> List[TournamentStanding]:
    """Policies ranked per information mode by mean degradation.

    Within each mode the ranking mirrors
    :func:`~repro.analysis.degradation_leaderboard`: cells without an
    offline anchor are excluded from the statistics and the cell count,
    ties break by pooled deadline-hit rate then policy name, so the
    ordering is total and the leaderboard reproducible.  Modes appear in
    decreasing-knowledge order (exact, noisy, mean, blind).
    """
    groups: Dict[Tuple[str, str], List[TournamentRow]] = {}
    for row in rows:
        groups.setdefault((row.imode, row.policy), []).append(row)
    standings: List[TournamentStanding] = []
    for (imode, policy), group in groups.items():
        anchored = [row for row in group if row.degradation_percent is not None]
        if not anchored:
            continue
        degradations = [row.degradation_percent for row in anchored]
        total_reps = sum(row.replications for row in anchored)
        feasible = math.fsum(
            row.feasible_rate * row.replications for row in anchored
        )
        standings.append(
            TournamentStanding(
                imode=imode,
                policy=policy,
                cells=len(anchored),
                mean_degradation_percent=math.fsum(degradations) / len(degradations),
                worst_degradation_percent=max(degradations),
                feasible_rate=feasible / total_reps if total_reps else 0.0,
            )
        )
    standings.sort(
        key=lambda standing: (
            _mode_rank(standing.imode),
            standing.mean_degradation_percent,
            -standing.feasible_rate,
            standing.policy,
        )
    )
    return standings


def tournament_standings_table(
    standings: Sequence[TournamentStanding],
) -> TextTable:
    """The per-mode leaderboard as a report table (rank resets per mode)."""
    table = TextTable(
        title="Tournament leaderboard per information mode (lower is better)",
        headers=(
            "imode",
            "rank",
            "policy",
            "cells",
            "mean degr %",
            "worst degr %",
            "feas %",
        ),
        precision=2,
    )
    rank = 0
    current = None
    for standing in standings:
        if standing.imode != current:
            current = standing.imode
            rank = 0
        rank += 1
        table.add_row(
            standing.imode,
            rank,
            standing.policy,
            standing.cells,
            standing.mean_degradation_percent,
            standing.worst_degradation_percent,
            standing.feasible_rate * 100.0,
        )
    return table
