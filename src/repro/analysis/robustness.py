"""Robustness analysis: simulated-lifetime distributions vs. offline sigma.

The runtime simulator turns each (scenario, policy) cell into a
*distribution* of outcomes — one realised sigma/makespan per seeded
replication.  This module reduces those distributions against the offline
prediction:

* :func:`compute_robustness` — one :class:`RobustnessRow` per cell:
  mean/min/max realised sigma, its spread, the **degradation** relative to
  the offline-predicted sigma of the same scenario, deadline-hit rate and
  retry accounting;
* :func:`degradation_leaderboard` — policies ranked across scenarios by
  mean degradation (an online policy beating the static replay under
  jitter is exactly the effect the simulation layer exists to measure);
* table renderers for both, timing-free so engine runs stay
  byte-reproducible.

All statistics reduce with ``math.fsum`` over deterministic orderings, so
a report is a pure function of the records that feed it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .tables import TextTable

__all__ = [
    "RobustnessRow",
    "PolicyStanding",
    "compute_robustness",
    "robustness_table",
    "degradation_leaderboard",
    "degradation_table",
]


@dataclass(frozen=True)
class RobustnessRow:
    """Distribution summary of one (scenario, policy) simulation cell."""

    scenario: str
    policy: str
    offline_cost: Optional[float]
    """The offline evaluator's sigma prediction for the scenario, or
    ``None`` when no anchor is available (the offline run failed)."""

    replications: int
    mean_cost: float
    std_cost: float
    """Population standard deviation of the realised sigmas."""

    min_cost: float
    max_cost: float
    feasible_rate: float
    """Fraction of replications that met the deadline."""

    mean_retries: float

    @property
    def degradation_percent(self) -> Optional[float]:
        """Mean realised sigma relative to the offline prediction (%).

        Positive: runtime uncertainty cost battery life beyond the model;
        negative: the (online) policy beat the offline plan at runtime.
        ``None`` when the scenario has no offline anchor — a missing
        anchor must surface as missing, never as a fake-perfect 0%.
        """
        if self.offline_cost is None or self.offline_cost == 0:
            return None
        return (self.mean_cost - self.offline_cost) / self.offline_cost * 100.0

    @property
    def spread_percent(self) -> float:
        """Relative spread of the distribution (std / mean, %)."""
        if self.mean_cost == 0:
            return 0.0
        return self.std_cost / self.mean_cost * 100.0


@dataclass(frozen=True)
class PolicyStanding:
    """One policy's aggregate standing across all scenarios."""

    policy: str
    scenarios: int
    mean_degradation_percent: float
    """Mean of the per-scenario degradations (the leaderboard key)."""

    worst_degradation_percent: float
    feasible_rate: float
    """Deadline-hit rate pooled over every replication of the policy."""


def compute_robustness(
    records: Iterable,
    offline_costs: Mapping[str, float],
) -> List[RobustnessRow]:
    """Reduce simulation records into per-(scenario, policy) rows.

    ``records`` are :class:`~repro.engine.SimulationRecord`-shaped objects
    (``scenario``/``policy``/``cost``/``feasible``/``retries``; failed
    records are skipped — their error is the engine run's concern).
    ``offline_costs`` maps each scenario name to the offline-predicted
    sigma; scenarios absent from it get ``offline_cost=None`` rows (shown
    as missing, excluded from the degradation leaderboard).  Rows come
    back sorted by (scenario, policy) for reproducible reports.
    """
    cells: Dict[Tuple[str, str], List] = {}
    for record in records:
        if getattr(record, "ok", True) and record.cost is not None:
            cells.setdefault((record.scenario, record.policy), []).append(record)
    rows: List[RobustnessRow] = []
    for (scenario, policy) in sorted(cells):
        group = cells[(scenario, policy)]
        costs = [record.cost for record in group]
        n = len(costs)
        mean = math.fsum(costs) / n
        variance = math.fsum((cost - mean) ** 2 for cost in costs) / n
        anchor = offline_costs.get(scenario)
        rows.append(
            RobustnessRow(
                scenario=scenario,
                policy=policy,
                offline_cost=float(anchor) if anchor is not None else None,
                replications=n,
                mean_cost=mean,
                std_cost=math.sqrt(variance),
                min_cost=min(costs),
                max_cost=max(costs),
                feasible_rate=sum(
                    1 for record in group if record.feasible
                ) / n,
                mean_retries=math.fsum(record.retries for record in group) / n,
            )
        )
    return rows


def robustness_table(rows: Sequence[RobustnessRow]) -> TextTable:
    """Per-cell distribution table (scenario-major, policy-minor)."""
    table = TextTable(
        title="Simulated robustness (realised sigma vs. offline prediction)",
        headers=(
            "scenario",
            "policy",
            "offline",
            "mean",
            "spread %",
            "degr %",
            "feas %",
            "retries",
        ),
        precision=2,
    )
    for row in rows:
        table.add_row(
            row.scenario,
            row.policy,
            row.offline_cost if row.offline_cost is not None else "-",
            row.mean_cost,
            row.spread_percent,
            row.degradation_percent if row.degradation_percent is not None else "-",
            row.feasible_rate * 100.0,
            row.mean_retries,
        )
    return table


def degradation_leaderboard(
    rows: Sequence[RobustnessRow],
) -> List[PolicyStanding]:
    """Policies ranked by mean degradation across scenarios (best first).

    Rows without an offline anchor (``degradation_percent is None``) are
    excluded from the degradation statistics — and from the ``scenarios``
    count — so a failed anchor can never inflate a policy's standing.
    Ties break by pooled deadline-hit rate (higher first), then by name —
    the ordering is total, so leaderboards are reproducible.
    """
    by_policy: Dict[str, List[RobustnessRow]] = {}
    for row in rows:
        by_policy.setdefault(row.policy, []).append(row)
    standings: List[PolicyStanding] = []
    for policy in sorted(by_policy):
        group = [
            row for row in by_policy[policy]
            if row.degradation_percent is not None
        ]
        if not group:
            continue
        degradations = [row.degradation_percent for row in group]
        total_reps = sum(row.replications for row in group)
        feasible = math.fsum(
            row.feasible_rate * row.replications for row in group
        )
        standings.append(
            PolicyStanding(
                policy=policy,
                scenarios=len(group),
                mean_degradation_percent=math.fsum(degradations) / len(degradations),
                worst_degradation_percent=max(degradations),
                feasible_rate=feasible / total_reps if total_reps else 0.0,
            )
        )
    standings.sort(
        key=lambda standing: (
            standing.mean_degradation_percent,
            -standing.feasible_rate,
            standing.policy,
        )
    )
    return standings


def degradation_table(standings: Sequence[PolicyStanding]) -> TextTable:
    """The degradation leaderboard as a report table."""
    table = TextTable(
        title="Policy degradation leaderboard (lower is better)",
        headers=(
            "rank",
            "policy",
            "scenarios",
            "mean degr %",
            "worst degr %",
            "feas %",
        ),
        precision=2,
    )
    for rank, standing in enumerate(standings, start=1):
        table.add_row(
            rank,
            standing.policy,
            standing.scenarios,
            standing.mean_degradation_percent,
            standing.worst_degradation_percent,
            standing.feasible_rate * 100.0,
        )
    return table
