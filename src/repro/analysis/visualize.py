"""Plain-text visualisation of schedules and discharge profiles.

The library targets head-less and embedded-ish environments, so the
visualisations are deliberately terminal friendly: an ASCII Gantt chart of a
schedule (one row per task, bar length proportional to execution time and a
design-point label inside the bar) and an ASCII step chart of the current
profile a schedule induces.  Both are used by the examples and the CLI and
are easy to paste into issues or lab notebooks.
"""

from __future__ import annotations

from typing import Optional

from ..battery import LoadProfile
from ..errors import ConfigurationError
from ..scheduling import Schedule

__all__ = ["gantt_chart", "current_profile_chart"]


def gantt_chart(schedule: Schedule, width: int = 72, deadline: Optional[float] = None) -> str:
    """Render a schedule as an ASCII Gantt chart.

    Parameters
    ----------
    schedule:
        The schedule to draw (single processing element, so one bar per row).
    width:
        Number of character cells representing the full time axis.
    deadline:
        When given, a ``|`` marker row showing the deadline position is
        appended (and the axis extends to the deadline if it lies beyond the
        makespan).
    """
    if width < 10:
        raise ConfigurationError("width must be >= 10")
    slots = schedule.slots
    if not slots:
        return "(empty schedule)"
    horizon = max(schedule.makespan, deadline or 0.0)
    if horizon <= 0:
        return "(empty schedule)"
    scale = width / horizon
    name_width = max(len(slot.name) for slot in slots)

    lines = []
    for slot in slots:
        start_col = int(round(slot.start * scale))
        end_col = max(start_col + 1, int(round(slot.finish * scale)))
        bar_length = end_col - start_col
        label = f"P{slot.design_point_column + 1}"
        if bar_length >= len(label) + 2:
            body = label.center(bar_length, "=")
        else:
            body = "=" * bar_length
        line = (
            f"{slot.name:<{name_width}} |"
            + " " * start_col
            + "[" + body + "]"
        )
        lines.append(line)

    axis = f"{'':<{name_width}} |" + "-" * width
    lines.append(axis)
    legend = (
        f"{'':<{name_width}} |0{'':{width - 12}}{horizon:>10.1f}"
        if width > 12
        else axis
    )
    lines.append(legend)
    if deadline is not None:
        marker_col = int(round(min(deadline, horizon) * scale))
        lines.append(
            f"{'deadline':<{name_width}} |" + " " * marker_col + "|" + f" {deadline:g}"
        )
    return "\n".join(lines)


def current_profile_chart(
    profile: LoadProfile, width: int = 72, height: int = 10
) -> str:
    """Render a discharge profile as an ASCII step chart of current vs. time."""
    if width < 10 or height < 3:
        raise ConfigurationError("width must be >= 10 and height >= 3")
    if profile.is_empty:
        return "(empty profile)"
    horizon = profile.end_time
    peak = profile.peak_current
    if peak <= 0:
        return "(zero-current profile)"
    columns = []
    for col in range(width):
        t = horizon * (col + 0.5) / width
        columns.append(profile.current_at(t))

    lines = []
    for row in range(height, 0, -1):
        threshold = peak * (row - 0.5) / height
        line = "".join("#" if current >= threshold else " " for current in columns)
        lines.append(f"{peak * row / height:8.0f} |{line}")
    lines.append(" " * 8 + " +" + "-" * width)
    lines.append(" " * 8 + f"  0{'':{width - 12}}{horizon:>10.1f}")
    lines.append(" " * 8 + "  current (mA) over time")
    return "\n".join(lines)
