"""Schedule metrics used by reports, experiments and tests.

These helpers compute the quantities the paper reports (battery capacity
sigma, schedule duration Delta, percentage difference between algorithms)
plus a few derived measures that make the extension experiments easier to
read (slack usage, current-profile shape, recovery credit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..battery import BatteryModel, RakhmatovVrudhulaModel
from ..core.factors import current_increase_fraction
from ..errors import ConfigurationError
from ..scheduling import Schedule

__all__ = ["ScheduleMetrics", "schedule_metrics", "percent_difference", "percent_saving"]


@dataclass(frozen=True)
class ScheduleMetrics:
    """Summary measurements of one schedule under one battery model."""

    makespan: float
    """Completion time of the schedule (the paper's Delta)."""

    slack: float
    """Deadline minus makespan (negative when the deadline is missed)."""

    total_energy: float
    """Nominal energy of the chosen design points (battery-agnostic)."""

    apparent_charge: float
    """Battery cost sigma at completion (mA·min)."""

    peak_current: float
    """Largest design-point current in the schedule (mA)."""

    average_current: float
    """Charge-weighted mean current over the busy time (mA)."""

    current_increase_fraction: float
    """Fraction of adjacent slots whose current increases (the CIF shape metric)."""

    rate_capacity_overhead: float
    """``sigma - nominal charge``: the extra apparent charge caused by the
    battery's rate-capacity effect (0 for an ideal battery)."""

    @property
    def meets_deadline(self) -> bool:
        """True when the schedule finished within its deadline."""
        return self.slack >= -1e-9


def schedule_metrics(
    schedule: Schedule,
    model: BatteryModel,
    deadline: Optional[float] = None,
) -> ScheduleMetrics:
    """Measure a schedule under a battery model.

    ``deadline`` defaults to the makespan itself (zero slack) when omitted.
    """
    profile = schedule.to_profile()
    makespan = schedule.makespan
    sigma = model.apparent_charge(profile, at_time=makespan)
    nominal = profile.total_charge
    deadline_value = makespan if deadline is None else float(deadline)
    currents = [slot.current for slot in schedule]
    return ScheduleMetrics(
        makespan=makespan,
        slack=deadline_value - makespan,
        total_energy=schedule.total_energy,
        apparent_charge=sigma,
        peak_current=schedule.peak_current,
        average_current=profile.average_current(),
        current_increase_fraction=current_increase_fraction(currents),
        rate_capacity_overhead=sigma - nominal,
    )


def percent_difference(baseline_cost: float, our_cost: float) -> float:
    """The paper's "% Diff": how much *more* the baseline costs, relative to ours.

    ``percent_difference(22686, 13737)`` is about 65.1, matching the last
    column of Table 4.
    """
    if our_cost <= 0:
        raise ConfigurationError("our_cost must be > 0 to compute a percentage difference")
    return (baseline_cost - our_cost) / our_cost * 100.0


def percent_saving(baseline_cost: float, our_cost: float) -> float:
    """Relative saving of ours versus the baseline, in percent of the baseline."""
    if baseline_cost <= 0:
        raise ConfigurationError("baseline_cost must be > 0 to compute a saving")
    return (baseline_cost - our_cost) / baseline_cost * 100.0
