"""Common interface for battery models.

Every model answers two questions about a :class:`~repro.battery.LoadProfile`:

* :meth:`BatteryModel.apparent_charge` — how much of the battery's capacity
  has effectively been consumed by time ``T`` (the paper's sigma); and
* :meth:`BatteryModel.lifetime` — the first time at which the apparent
  charge reaches the available capacity ``alpha`` (the battery is then
  considered exhausted).

The scheduling algorithms only ever minimise the apparent charge at the end
of the schedule, so any object implementing this interface can be plugged in
as the cost function (the ideal and Peukert models exist precisely to show
how the ranking of schedules changes with the battery abstraction).
"""

from __future__ import annotations

import abc
import math
from typing import Optional

from ..errors import BatteryModelError
from .profile import LoadProfile

__all__ = ["BatteryModel"]


class BatteryModel(abc.ABC):
    """Abstract base class for battery charge/lifetime models."""

    #: Number of bisection refinement steps used by the generic lifetime search.
    _BISECTION_STEPS = 80

    @abc.abstractmethod
    def apparent_charge(self, profile: LoadProfile, at_time: Optional[float] = None) -> float:
        """Apparent charge consumed by ``at_time`` (defaults to the profile end).

        For the analytical model this is Equation 1's sigma(T); for the ideal
        model it is the plain coulomb count of the load applied before
        ``at_time``.
        """

    # ------------------------------------------------------------------
    # derived functionality shared by all models
    # ------------------------------------------------------------------
    def apparent_charge_reference(
        self, profile: LoadProfile, at_time: Optional[float] = None
    ) -> float:
        """The scalar conformance oracle for this model's fast paths.

        For models whose ``apparent_charge`` *is* the retained scalar loop
        (Peukert, KiBaM, ideal) this is the same computation; models that
        vectorized ``apparent_charge`` override it with the original
        per-interval implementation (the Rakhmatov–Vrudhula model).
        """
        return self.apparent_charge(profile, at_time)

    def cost(self, profile: LoadProfile) -> float:
        """Scheduling cost of a profile: apparent charge at its completion time."""
        return self.apparent_charge(profile, at_time=profile.end_time)

    def schedule_charge(self, durations, currents, rest: float = 0.0) -> float:
        """Apparent charge of a gap-free back-to-back schedule.

        The schedule runs ``durations[k]`` at ``currents[k]`` consecutively
        from time zero; sigma is evaluated ``rest`` time units after the
        makespan (``rest > 0`` credits post-completion recovery, for models
        that have any).  This generic fallback materialises the
        :class:`LoadProfile`; models with an analytical per-interval
        structure (the Rakhmatov–Vrudhula model) override it with a
        vectorized array path that the scheduling evaluator uses directly.
        """
        if rest < 0:
            raise BatteryModelError(f"rest must be >= 0, got {rest!r}")
        pairs = [
            (float(duration), float(current))
            for duration, current in zip(durations, currents)
            if duration > 0.0
        ]
        if not pairs:
            return 0.0
        profile = LoadProfile.from_back_to_back(
            durations=[duration for duration, _ in pairs],
            currents=[current for _, current in pairs],
        )
        return self.apparent_charge(profile, at_time=profile.end_time + rest)

    def supports(self, profile: LoadProfile, capacity: float) -> bool:
        """True when the battery of capacity ``capacity`` survives the whole profile."""
        return self.lifetime(profile, capacity) is None

    def lifetime(self, profile: LoadProfile, capacity: float) -> Optional[float]:
        """First time at which the apparent charge reaches ``capacity``.

        Returns ``None`` when the battery survives the entire profile (the
        paper's assumption for its examples: "the amount of battery capacity
        available was sufficiently large").  The search exploits the fact
        that the apparent charge can only cross the capacity threshold while
        current is being drawn, i.e. inside a discharge interval, so it scans
        intervals in order and bisects inside the first interval whose end
        value exceeds the capacity.
        """
        if capacity <= 0 or not math.isfinite(capacity):
            raise BatteryModelError(f"capacity must be finite and > 0, got {capacity!r}")
        if profile.is_empty:
            return None
        for interval in profile:
            if self.apparent_charge(profile, at_time=interval.end) >= capacity:
                return self._bisect_crossing(profile, interval.start, interval.end, capacity)
        return None

    def _bisect_crossing(
        self, profile: LoadProfile, low: float, high: float, capacity: float
    ) -> float:
        """Locate the capacity crossing inside ``[low, high]`` by bisection."""
        for _ in range(self._BISECTION_STEPS):
            mid = 0.5 * (low + high)
            if self.apparent_charge(profile, at_time=mid) >= capacity:
                high = mid
            else:
                low = mid
        return high
