"""Kinetic Battery Model (KiBaM).

The KiBaM of Manwell and McGowan splits the battery charge into an
*available* well (fraction ``c`` of the capacity) that feeds the load
directly and a *bound* well that replenishes the available well at a rate
proportional to the height difference between the two.  It captures the same
two non-idealities as the Rakhmatov–Vrudhula diffusion model — rate-capacity
and recovery — with different mathematics, and the two are known to agree
closely for realistic loads, which makes KiBaM a useful cross-check on the
cost function the scheduler optimises.

To fit the library's :class:`~repro.battery.BatteryModel` interface the
model is expressed through its *apparent charge*: with ``delta(t)`` the
height difference between the bound and available wells,

    sigma_KiBaM(t) = charge delivered by t  +  (1 - c) * delta(t)

The second term is the charge temporarily stranded in the bound well; it
grows while current flows (rate-capacity effect) and decays exponentially
during rest (recovery effect), and the battery is empty exactly when
``sigma_KiBaM`` reaches the capacity — the same convention as Equation 1 of
the paper.  ``delta`` obeys a linear first-order ODE with a closed-form
solution per constant-current interval, so no numerical integration is
needed.

Vectorized schedule kernel (superposition)
------------------------------------------
At first sight the two-well state forces *sequential* evaluation: ``delta``
at interval ``k`` depends on the whole prefix, so an incremental evaluator
would seem to need per-position state checkpoints and a suffix recompute per
move — the opposite of the Rakhmatov–Vrudhula model's suffix-reusing prefix
recompute.  But the ODE ``delta' = I(t)/c - k' delta`` is *linear* with
``delta(0) = 0``, so its solution superposes over the load's intervals::

    delta(T) = sum_k  I_k / (c k') * ( e^{-k' tte_k} - e^{-k' (tte_k + Delta_k)} )

where ``tte_k = T - t_k - Delta_k`` is interval ``k``'s **time-to-end**.
Substituting into sigma gives an exact per-interval decomposition::

    sigma(T) = sum_k  I_k Delta_k
             + (1-c)/(c k') * I_k * ( e^{-k' tte_k} - e^{-k' (tte_k + Delta_k)} )

— structurally the Rakhmatov–Vrudhula bracket with a single exponential
mode.  KiBaM therefore plugs into the chemistry-generic
:class:`~repro.battery.kernels.ScheduleKernelMixin` exactly like the
diffusion model: contributions depend only on ``(Delta_k, I_k, tte_k)``,
moves invalidate only the prefix whose time-to-ends changed, and no state
checkpoints are needed.  The sequential closed-form pass
(:meth:`KineticBatteryModel.apparent_charge`, which also handles idle gaps
and mid-interval truncation) is retained as the conformance reference for
the superposed kernel; the two agree to floating-point roundoff (the
conformance suite pins <= 1e-9).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..errors import BatteryModelError
from .base import BatteryModel
from .kernels import ScheduleKernelMixin
from .profile import LoadProfile

__all__ = ["KineticBatteryModel"]


class KineticBatteryModel(ScheduleKernelMixin, BatteryModel):
    """Two-well kinetic battery model with closed-form per-interval updates.

    Parameters
    ----------
    c:
        Fraction of the capacity held in the available well (0 < c < 1).
        Typical lead-acid and Li-ion fits land between 0.2 and 0.7.
    k:
        Rate constant (1/time unit) governing how quickly charge flows from
        the bound to the available well.  Larger values mean a battery that
        recovers faster and suffers less from high discharge rates.
    """

    #: Compiled-kernel registry name (see :mod:`repro.battery.backends`).
    KERNEL_NAME = "kibam"

    def __init__(self, c: float = 0.625, k: float = 0.05) -> None:
        if not (0.0 < c < 1.0):
            raise BatteryModelError(f"c must be strictly between 0 and 1, got {c!r}")
        if k <= 0 or not math.isfinite(k):
            raise BatteryModelError(f"k must be finite and > 0, got {k!r}")
        self.c = float(c)
        self.k = float(k)
        # delta' = I / c - k_prime * delta   with
        self._k_prime = k * (1.0 / c + 1.0 / (1.0 - c))
        # Folded constants of the superposed kernel (hot path).
        self._neg_k_prime = -self._k_prime
        self._stranded_scale = (1.0 - self.c) / (self.c * self._k_prime)

    # ------------------------------------------------------------------
    def apparent_charge(self, profile: LoadProfile, at_time: Optional[float] = None) -> float:
        """Delivered charge plus the charge stranded in the bound well at ``at_time``.

        Sequential closed-form integration of the well dynamics — the
        retained reference implementation the vectorized schedule kernel is
        gated against.
        """
        if at_time is None:
            at_time = profile.end_time
        if at_time < 0:
            raise BatteryModelError(f"evaluation time must be >= 0, got {at_time!r}")
        delivered, delta = self._advance(profile, at_time)
        return delivered + (1.0 - self.c) * delta

    # ------------------------------------------------------------------
    # canonical schedule kernel (superposed closed form)
    # ------------------------------------------------------------------
    def _kernel_args(self) -> tuple:
        """Folded constants forwarded to the compiled kernel."""
        return (self._neg_k_prime, self._stranded_scale)

    def interval_contributions(
        self,
        durations: np.ndarray,
        currents: np.ndarray,
        time_to_end: np.ndarray,
    ) -> np.ndarray:
        """Per-interval sigma contributions, parametrised by time-to-end.

        The superposition decomposition from the module docstring: delivered
        charge ``I_k Delta_k`` plus the stranded-charge mode
        ``(1-c)/(c k') I_k (e^{-k' tte} - e^{-k' (tte + Delta)})``, which is
        >= 0 and decays towards zero as the interval recedes into the past
        (the recovery effect).
        """
        durations = np.asarray(durations, dtype=float)
        currents = np.asarray(currents, dtype=float)
        time_to_end = np.asarray(time_to_end, dtype=float)
        decay_since_end = np.exp(self._neg_k_prime * time_to_end)
        decay_since_start = np.exp(self._neg_k_prime * (time_to_end + durations))
        stranded = (self._stranded_scale * currents) * (
            decay_since_end - decay_since_start
        )
        return currents * durations + stranded

    def contribution_floor(
        self, durations: np.ndarray, currents: np.ndarray
    ) -> np.ndarray:
        """Nominal charge ``I * Delta`` per interval.

        A valid pruning floor: the stranded-charge mode is non-negative for
        every time-to-end, so a contribution never drops below the plain
        coulomb count.
        """
        return np.asarray(currents, dtype=float) * np.asarray(durations, dtype=float)

    def signature(self) -> Tuple:
        """Exact-parameter cache fingerprint (see :func:`repro.engine.model_signature`)."""
        return (type(self).__name__, self.c, self.k)

    def unavailable_charge(self, profile: LoadProfile, at_time: Optional[float] = None) -> float:
        """Only the stranded (recoverable) part of the apparent charge."""
        if at_time is None:
            at_time = profile.end_time
        _, delta = self._advance(profile, at_time)
        return (1.0 - self.c) * delta

    # ------------------------------------------------------------------
    def _advance(self, profile: LoadProfile, at_time: float):
        """Integrate the well dynamics up to ``at_time``.

        Returns ``(delivered_charge, delta)``.  Piecewise-constant loads have
        the closed-form solution
        ``delta(t0 + dt) = delta(t0) e^{-k' dt} + I/(c k') (1 - e^{-k' dt})``.
        """
        delivered = 0.0
        delta = 0.0
        clock = 0.0
        for interval in profile:
            if at_time <= clock:
                break
            # idle gap before this interval
            gap = min(interval.start, at_time) - clock
            if gap > 0:
                delta = self._step(delta, 0.0, gap)
                clock += gap
            if at_time <= interval.start:
                break
            run = min(interval.duration, at_time - interval.start)
            if run > 0:
                delta = self._step(delta, interval.current, run)
                delivered += interval.current * run
                clock = interval.start + run
        if at_time > clock:
            delta = self._step(delta, 0.0, at_time - clock)
        return delivered, delta

    def _step(self, delta: float, current: float, duration: float) -> float:
        decay = math.exp(-self._k_prime * duration)
        steady_state = current / (self.c * self._k_prime)
        return delta * decay + steady_state * (1.0 - decay)

    def __repr__(self) -> str:
        return f"KineticBatteryModel(c={self.c:g}, k={self.k:g})"
