"""Kinetic Battery Model (KiBaM).

The KiBaM of Manwell and McGowan splits the battery charge into an
*available* well (fraction ``c`` of the capacity) that feeds the load
directly and a *bound* well that replenishes the available well at a rate
proportional to the height difference between the two.  It captures the same
two non-idealities as the Rakhmatov–Vrudhula diffusion model — rate-capacity
and recovery — with different mathematics, and the two are known to agree
closely for realistic loads, which makes KiBaM a useful cross-check on the
cost function the scheduler optimises.

To fit the library's :class:`~repro.battery.BatteryModel` interface the
model is expressed through its *apparent charge*: with ``delta(t)`` the
height difference between the bound and available wells,

    sigma_KiBaM(t) = charge delivered by t  +  (1 - c) * delta(t)

The second term is the charge temporarily stranded in the bound well; it
grows while current flows (rate-capacity effect) and decays exponentially
during rest (recovery effect), and the battery is empty exactly when
``sigma_KiBaM`` reaches the capacity — the same convention as Equation 1 of
the paper.  ``delta`` obeys a linear first-order ODE with a closed-form
solution per constant-current interval, so no numerical integration is
needed.
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import BatteryModelError
from .base import BatteryModel
from .profile import LoadProfile

__all__ = ["KineticBatteryModel"]


class KineticBatteryModel(BatteryModel):
    """Two-well kinetic battery model with closed-form per-interval updates.

    Parameters
    ----------
    c:
        Fraction of the capacity held in the available well (0 < c < 1).
        Typical lead-acid and Li-ion fits land between 0.2 and 0.7.
    k:
        Rate constant (1/time unit) governing how quickly charge flows from
        the bound to the available well.  Larger values mean a battery that
        recovers faster and suffers less from high discharge rates.
    """

    def __init__(self, c: float = 0.625, k: float = 0.05) -> None:
        if not (0.0 < c < 1.0):
            raise BatteryModelError(f"c must be strictly between 0 and 1, got {c!r}")
        if k <= 0 or not math.isfinite(k):
            raise BatteryModelError(f"k must be finite and > 0, got {k!r}")
        self.c = float(c)
        self.k = float(k)
        # delta' = I / c - k_prime * delta   with
        self._k_prime = k * (1.0 / c + 1.0 / (1.0 - c))

    # ------------------------------------------------------------------
    def apparent_charge(self, profile: LoadProfile, at_time: Optional[float] = None) -> float:
        """Delivered charge plus the charge stranded in the bound well at ``at_time``."""
        if at_time is None:
            at_time = profile.end_time
        if at_time < 0:
            raise BatteryModelError(f"evaluation time must be >= 0, got {at_time!r}")
        delivered, delta = self._advance(profile, at_time)
        return delivered + (1.0 - self.c) * delta

    def unavailable_charge(self, profile: LoadProfile, at_time: Optional[float] = None) -> float:
        """Only the stranded (recoverable) part of the apparent charge."""
        if at_time is None:
            at_time = profile.end_time
        _, delta = self._advance(profile, at_time)
        return (1.0 - self.c) * delta

    # ------------------------------------------------------------------
    def _advance(self, profile: LoadProfile, at_time: float):
        """Integrate the well dynamics up to ``at_time``.

        Returns ``(delivered_charge, delta)``.  Piecewise-constant loads have
        the closed-form solution
        ``delta(t0 + dt) = delta(t0) e^{-k' dt} + I/(c k') (1 - e^{-k' dt})``.
        """
        delivered = 0.0
        delta = 0.0
        clock = 0.0
        for interval in profile:
            if at_time <= clock:
                break
            # idle gap before this interval
            gap = min(interval.start, at_time) - clock
            if gap > 0:
                delta = self._step(delta, 0.0, gap)
                clock += gap
            if at_time <= interval.start:
                break
            run = min(interval.duration, at_time - interval.start)
            if run > 0:
                delta = self._step(delta, interval.current, run)
                delivered += interval.current * run
                clock = interval.start + run
        if at_time > clock:
            delta = self._step(delta, 0.0, at_time - clock)
        return delivered, delta

    def _step(self, delta: float, current: float, duration: float) -> float:
        decay = math.exp(-self._k_prime * duration)
        steady_state = current / (self.c * self._k_prime)
        return delta * decay + steady_state * (1.0 - decay)

    def __repr__(self) -> str:
        return f"KineticBatteryModel(c={self.c:g}, k={self.k:g})"
