"""Piecewise-constant battery discharge profiles.

The battery model of Rakhmatov and Vrudhula (Equation 1 of the paper)
operates on a *load profile*: a sequence of ``n`` discharge intervals, the
``k``-th drawing a constant current ``I_k`` from time ``t_k`` for a duration
``Delta_k``.  Intervals may be separated by idle (zero-current) gaps during
which the battery recovers part of its apparent lost charge.

On the paper's single-processing-element platform a schedule maps directly
onto such a profile: tasks execute back-to-back in sequence order, each
contributing one interval whose current is that of its chosen design point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ProfileError

__all__ = ["LoadInterval", "LoadProfile"]

_TIME_EPS = 1e-9


@dataclass(frozen=True)
class LoadInterval:
    """One constant-current discharge interval.

    Attributes
    ----------
    start:
        Interval start time ``t_k`` (same unit as the rest of the problem;
        the paper uses minutes).
    duration:
        Interval length ``Delta_k``; must be strictly positive.
    current:
        Constant current ``I_k`` drawn during the interval (mA); must be
        non-negative (a zero-current interval models an explicit idle slot).
    label:
        Optional annotation, e.g. the task name that produced the interval.
    """

    start: float
    duration: float
    current: float
    label: str = ""

    def __post_init__(self) -> None:
        if not math.isfinite(self.start) or self.start < 0:
            raise ProfileError(f"interval start must be finite and >= 0, got {self.start!r}")
        if not math.isfinite(self.duration) or self.duration <= 0:
            raise ProfileError(
                f"interval duration must be finite and > 0, got {self.duration!r}"
            )
        if not math.isfinite(self.current) or self.current < 0:
            raise ProfileError(
                f"interval current must be finite and >= 0, got {self.current!r}"
            )

    @property
    def end(self) -> float:
        """Interval end time ``t_k + Delta_k``."""
        return self.start + self.duration

    @property
    def charge(self) -> float:
        """Nominal charge drawn, ``I_k * Delta_k`` (mA·min)."""
        return self.current * self.duration

    def clipped(self, at_time: float) -> Optional["LoadInterval"]:
        """The portion of this interval before ``at_time`` (or None if empty)."""
        if at_time <= self.start + _TIME_EPS:
            return None
        if at_time >= self.end:
            return self
        return LoadInterval(
            start=self.start,
            duration=at_time - self.start,
            current=self.current,
            label=self.label,
        )


class LoadProfile:
    """An ordered, non-overlapping sequence of :class:`LoadInterval` objects.

    Instances are immutable once constructed; use the alternative
    constructors to build them:

    * :meth:`from_intervals` — explicit ``(start, duration, current)`` data;
    * :meth:`from_back_to_back` — tasks executing consecutively starting at
      time 0, which is how schedules are converted to profiles;
    * :meth:`concatenate` — join profiles in time.
    """

    def __init__(self, intervals: Iterable[LoadInterval] = ()) -> None:
        items: List[LoadInterval] = sorted(intervals, key=lambda iv: iv.start)
        for earlier, later in zip(items, items[1:]):
            if later.start < earlier.end - _TIME_EPS:
                raise ProfileError(
                    f"intervals overlap: {earlier} and {later}"
                )
        self._intervals: Tuple[LoadInterval, ...] = tuple(items)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_intervals(
        cls, triples: Iterable[Tuple[float, float, float]]
    ) -> "LoadProfile":
        """Build from ``(start, duration, current)`` triples."""
        return cls(LoadInterval(start, duration, current) for start, duration, current in triples)

    @classmethod
    def from_back_to_back(
        cls,
        durations: Sequence[float],
        currents: Sequence[float],
        labels: Optional[Sequence[str]] = None,
        start_time: float = 0.0,
    ) -> "LoadProfile":
        """Build a gap-free profile of consecutive intervals starting at ``start_time``.

        This is the schedule-to-profile conversion used throughout the
        library: ``durations[i]`` / ``currents[i]`` are the execution time and
        current of the ``i``-th task in the sequence.
        """
        if len(durations) != len(currents):
            raise ProfileError("durations and currents must have the same length")
        if labels is not None and len(labels) != len(durations):
            raise ProfileError("labels, when given, must match durations in length")
        intervals = []
        clock = float(start_time)
        for index, (duration, current) in enumerate(zip(durations, currents)):
            label = labels[index] if labels is not None else ""
            intervals.append(
                LoadInterval(start=clock, duration=float(duration), current=float(current), label=label)
            )
            clock += float(duration)
        return cls(intervals)

    def concatenate(self, other: "LoadProfile", gap: float = 0.0) -> "LoadProfile":
        """Append ``other`` after this profile, optionally separated by an idle gap."""
        if gap < 0:
            raise ProfileError("gap must be non-negative")
        offset = self.end_time + gap
        shifted = [
            LoadInterval(iv.start + offset, iv.duration, iv.current, iv.label)
            for iv in other
        ]
        return LoadProfile(list(self._intervals) + shifted)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[LoadInterval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __getitem__(self, index: int) -> LoadInterval:
        return self._intervals[index]

    @property
    def intervals(self) -> Tuple[LoadInterval, ...]:
        """All intervals in chronological order."""
        return self._intervals

    @property
    def is_empty(self) -> bool:
        """True when the profile has no intervals."""
        return not self._intervals

    @property
    def start_time(self) -> float:
        """Start time of the first interval (0.0 for an empty profile)."""
        return self._intervals[0].start if self._intervals else 0.0

    @property
    def end_time(self) -> float:
        """End time of the last interval (0.0 for an empty profile)."""
        return self._intervals[-1].end if self._intervals else 0.0

    @property
    def busy_time(self) -> float:
        """Total time spent discharging (sum of interval durations)."""
        return sum(iv.duration for iv in self._intervals)

    @property
    def total_charge(self) -> float:
        """Nominal charge drawn, ignoring battery non-linearities (mA·min)."""
        return sum(iv.charge for iv in self._intervals)

    @property
    def peak_current(self) -> float:
        """Largest interval current (0.0 for an empty profile)."""
        return max((iv.current for iv in self._intervals), default=0.0)

    def average_current(self) -> float:
        """Charge-weighted average current over the busy time (0 if empty)."""
        busy = self.busy_time
        return self.total_charge / busy if busy > 0 else 0.0

    def current_at(self, time: float) -> float:
        """Instantaneous current at ``time`` (0 during gaps / outside the profile)."""
        for interval in self._intervals:
            if interval.start - _TIME_EPS <= time < interval.end - _TIME_EPS:
                return interval.current
        return 0.0

    def clipped(self, at_time: float) -> "LoadProfile":
        """The sub-profile containing only load applied strictly before ``at_time``."""
        clipped = []
        for interval in self._intervals:
            piece = interval.clipped(at_time)
            if piece is not None:
                clipped.append(piece)
        return LoadProfile(clipped)

    def merged(self) -> "LoadProfile":
        """Coalesce adjacent intervals that share the same current.

        Useful for compacting schedule-derived profiles where consecutive
        tasks happen to use the same design-point current; the battery model
        result is unchanged (verified by a property test).
        """
        merged: List[LoadInterval] = []
        for interval in self._intervals:
            if (
                merged
                and abs(merged[-1].end - interval.start) <= _TIME_EPS
                and abs(merged[-1].current - interval.current) <= 1e-12
            ):
                last = merged.pop()
                merged.append(
                    LoadInterval(
                        start=last.start,
                        duration=last.duration + interval.duration,
                        current=last.current,
                        label=last.label,
                    )
                )
            else:
                merged.append(interval)
        return LoadProfile(merged)

    def to_dict(self) -> dict:
        """Serialise to a plain dictionary (JSON-friendly)."""
        return {
            "intervals": [
                {
                    "start": iv.start,
                    "duration": iv.duration,
                    "current": iv.current,
                    "label": iv.label,
                }
                for iv in self._intervals
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LoadProfile":
        """Inverse of :meth:`to_dict`."""
        return cls(
            LoadInterval(
                start=float(item["start"]),
                duration=float(item["duration"]),
                current=float(item["current"]),
                label=str(item.get("label", "")),
            )
            for item in data["intervals"]
        )

    def __repr__(self) -> str:
        return (
            f"LoadProfile({len(self._intervals)} intervals, "
            f"end={self.end_time:g}, charge={self.total_charge:g})"
        )
