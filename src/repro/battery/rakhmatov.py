"""Rakhmatov–Vrudhula analytical battery model (Equation 1 of the paper).

The model, derived from the one-dimensional diffusion of the electro-active
species in the cell, predicts the *apparent charge* sigma(T) lost by time
``T`` under a piecewise-constant load::

    sigma(T) = sum_k I_k * [ Delta_k
               + 2 * sum_{m=1..M} ( exp(-beta^2 m^2 (T - t_k - Delta_k))
                                    - exp(-beta^2 m^2 (T - t_k)) )
                                  / (beta^2 m^2) ]

where interval ``k`` draws current ``I_k`` from ``t_k`` for ``Delta_k`` time
units, and ``beta`` captures how quickly the concentration gradient inside
the cell relaxes (an ideal battery corresponds to ``beta -> infinity``).  The
paper truncates the infinite series at ``M = 10`` terms, which is also the
default here.

Two battery non-idealities fall out of the formula:

* **rate-capacity effect** — while an interval is in progress its term
  exceeds the nominal ``I_k * Delta_k``, so high currents "cost" more than
  their coulomb count; and
* **recovery effect** — after the interval ends (``T`` grows past
  ``t_k + Delta_k``) the bracketed term decays back towards
  ``I_k * Delta_k``, modelling the charge the battery appears to recover
  during rest periods.

The battery lifetime is the first ``T`` with ``sigma(T) = alpha`` where
``alpha`` is the battery's charge capacity.

The value ``sigma`` evaluated at the completion time of a schedule is the
cost the paper's algorithm minimises (``CalculateBatteryCost``).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import BatteryModelError
from .base import BatteryModel
from .profile import LoadProfile

__all__ = ["RakhmatovVrudhulaModel"]

#: Truncation order of the infinite series used by the paper.
DEFAULT_SERIES_TERMS = 10


class RakhmatovVrudhulaModel(BatteryModel):
    """Analytical high-level battery model with rate-capacity and recovery effects.

    Parameters
    ----------
    beta:
        Diffusion parameter in ``1/sqrt(time unit)``.  The paper's G3
        example uses ``beta = 0.273`` with time in minutes; smaller values
        mean a "less ideal" battery with stronger rate/recovery effects.
    series_terms:
        Number of terms ``M`` kept from the infinite series (paper: 10).
    """

    def __init__(self, beta: float, series_terms: int = DEFAULT_SERIES_TERMS) -> None:
        if not math.isfinite(beta) or beta <= 0:
            raise BatteryModelError(f"beta must be finite and > 0, got {beta!r}")
        if series_terms < 1:
            raise BatteryModelError(f"series_terms must be >= 1, got {series_terms!r}")
        self.beta = float(beta)
        self.series_terms = int(series_terms)
        # Precompute beta^2 * m^2 for m = 1..M once; reused for every interval.
        m = np.arange(1, self.series_terms + 1, dtype=float)
        self._beta2m2 = (self.beta**2) * (m**2)

    # ------------------------------------------------------------------
    # the model proper
    # ------------------------------------------------------------------
    def apparent_charge(self, profile: LoadProfile, at_time: Optional[float] = None) -> float:
        """Equation 1: apparent charge sigma(T) lost by ``at_time``.

        Intervals that have not started by ``at_time`` contribute nothing;
        an interval still in progress at ``at_time`` is truncated to the
        portion already executed (equivalently, the running task is assumed
        to keep drawing its current up to ``at_time``).
        """
        if at_time is None:
            at_time = profile.end_time
        if at_time < 0:
            raise BatteryModelError(f"evaluation time must be >= 0, got {at_time!r}")
        total = 0.0
        for interval in profile:
            if interval.current == 0.0:
                continue
            total += interval.current * self._interval_factor(
                start=interval.start,
                duration=interval.duration,
                at_time=at_time,
            )
        return total

    def _interval_factor(self, start: float, duration: float, at_time: float) -> float:
        """The bracketed factor of Equation 1 for one interval, truncated at ``at_time``."""
        if at_time <= start:
            return 0.0
        effective_duration = min(duration, at_time - start)
        # exponents are always <= 0: at_time >= start + effective_duration >= start
        since_end = at_time - start - effective_duration
        since_start = at_time - start
        decay_end = np.exp(-self._beta2m2 * since_end)
        decay_start = np.exp(-self._beta2m2 * since_start)
        series = float(np.sum((decay_end - decay_start) / self._beta2m2))
        return effective_duration + 2.0 * series

    # ------------------------------------------------------------------
    # convenience closed forms
    # ------------------------------------------------------------------
    def constant_load_charge(self, current: float, duration: float) -> float:
        """sigma at the end of a single constant-current discharge of ``duration``.

        Closed form ``I * (Delta + 2 * sum (1 - exp(-beta^2 m^2 Delta)) / (beta^2 m^2))``;
        exceeds ``I * Delta`` (rate-capacity effect) and approaches it as
        ``beta`` grows (ideal battery limit).
        """
        if current < 0 or duration < 0:
            raise BatteryModelError("current and duration must be non-negative")
        if current == 0.0 or duration == 0.0:
            return 0.0
        series = float(np.sum((1.0 - np.exp(-self._beta2m2 * duration)) / self._beta2m2))
        return current * (duration + 2.0 * series)

    def constant_load_lifetime(self, current: float, capacity: float) -> float:
        """Lifetime under a never-ending constant current ``current``.

        Solved numerically from the closed form above (treating the load as
        one interval of growing duration evaluated at its own end time).
        """
        if current <= 0:
            raise BatteryModelError("current must be > 0 for a lifetime estimate")
        if capacity <= 0:
            raise BatteryModelError("capacity must be > 0")
        # The apparent charge at time T of a constant load started at 0 is
        # strictly increasing in T, so exponential search + bisection works.
        low, high = 0.0, 1.0
        while self.constant_load_charge(current, high) < capacity:
            high *= 2.0
            if high > 1e12:
                raise BatteryModelError("constant load never exhausts the battery (numeric overflow)")
        for _ in range(self._BISECTION_STEPS):
            mid = 0.5 * (low + high)
            if self.constant_load_charge(current, mid) >= capacity:
                high = mid
            else:
                low = mid
        return high

    def recovery_gain(self, profile: LoadProfile, rest: float) -> float:
        """Apparent charge recovered by resting ``rest`` time units after the profile.

        Returns ``sigma(end) - sigma(end + rest)``, a non-negative quantity
        quantifying the recovery effect (zero for an ideal battery).
        """
        if rest < 0:
            raise BatteryModelError("rest duration must be non-negative")
        end = profile.end_time
        return self.apparent_charge(profile, end) - self.apparent_charge(profile, end + rest)

    def __repr__(self) -> str:
        return f"RakhmatovVrudhulaModel(beta={self.beta:g}, series_terms={self.series_terms})"
