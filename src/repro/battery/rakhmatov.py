"""Rakhmatov–Vrudhula analytical battery model (Equation 1 of the paper).

The model, derived from the one-dimensional diffusion of the electro-active
species in the cell, predicts the *apparent charge* sigma(T) lost by time
``T`` under a piecewise-constant load::

    sigma(T) = sum_k I_k * [ Delta_k
               + 2 * sum_{m=1..M} ( exp(-beta^2 m^2 (T - t_k - Delta_k))
                                    - exp(-beta^2 m^2 (T - t_k)) )
                                  / (beta^2 m^2) ]

where interval ``k`` draws current ``I_k`` from ``t_k`` for ``Delta_k`` time
units, and ``beta`` captures how quickly the concentration gradient inside
the cell relaxes (an ideal battery corresponds to ``beta -> infinity``).  The
paper truncates the infinite series at ``M = 10`` terms, which is also the
default here.

Two battery non-idealities fall out of the formula:

* **rate-capacity effect** — while an interval is in progress its term
  exceeds the nominal ``I_k * Delta_k``, so high currents "cost" more than
  their coulomb count; and
* **recovery effect** — after the interval ends (``T`` grows past
  ``t_k + Delta_k``) the bracketed term decays back towards
  ``I_k * Delta_k``, modelling the charge the battery appears to recover
  during rest periods.

The battery lifetime is the first ``T`` with ``sigma(T) = alpha`` where
``alpha`` is the battery's charge capacity.

The value ``sigma`` evaluated at the completion time of a schedule is the
cost the paper's algorithm minimises (``CalculateBatteryCost``).

Evaluation strategies
---------------------
All entry points share one vectorized kernel that evaluates the Equation-1
bracket for many intervals at once (intervals x series terms, a single pair
of ``np.exp`` calls):

* :meth:`RakhmatovVrudhulaModel.apparent_charge` — sigma of an arbitrary
  :class:`~repro.battery.LoadProfile` at an arbitrary time, bit-identical to
  the original per-interval scalar loop (kept as a reference implementation
  for the golden tests);
* :meth:`RakhmatovVrudhulaModel.interval_contributions` — the Equation-1
  bracket parametrised by each interval's **time-to-end** (makespan minus
  interval end), which depends only on the durations *after* the interval —
  the property the incremental evaluator exploits to re-cost single-move
  neighbours without touching unaffected intervals.  The chemistry-generic
  :class:`~repro.battery.kernels.ScheduleKernelMixin` derives the canonical
  schedule path (``schedule_contributions`` / ``schedule_charge`` /
  ``schedule_charge_batch``) from this kernel, exactly as it does for the
  other chemistries.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import BatteryModelError
from .base import BatteryModel
from .kernels import ScheduleKernelMixin, suffix_durations
from .profile import LoadProfile

__all__ = ["RakhmatovVrudhulaModel", "suffix_durations"]

#: Truncation order of the infinite series used by the paper.
DEFAULT_SERIES_TERMS = 10


class RakhmatovVrudhulaModel(ScheduleKernelMixin, BatteryModel):
    """Analytical high-level battery model with rate-capacity and recovery effects.

    Parameters
    ----------
    beta:
        Diffusion parameter in ``1/sqrt(time unit)``.  The paper's G3
        example uses ``beta = 0.273`` with time in minutes; smaller values
        mean a "less ideal" battery with stronger rate/recovery effects.
    series_terms:
        Number of terms ``M`` kept from the infinite series (paper: 10).
    """

    #: Compiled-kernel registry name (see :mod:`repro.battery.backends`).
    KERNEL_NAME = "rakhmatov"

    def __init__(self, beta: float, series_terms: int = DEFAULT_SERIES_TERMS) -> None:
        if not math.isfinite(beta) or beta <= 0:
            raise BatteryModelError(f"beta must be finite and > 0, got {beta!r}")
        if series_terms < 1:
            raise BatteryModelError(f"series_terms must be >= 1, got {series_terms!r}")
        self.beta = float(beta)
        self.series_terms = int(series_terms)
        # Precompute beta^2 * m^2 for m = 1..M once; reused for every interval.
        m = np.arange(1, self.series_terms + 1, dtype=float)
        self._beta2m2 = (self.beta**2) * (m**2)

    # ------------------------------------------------------------------
    # the model proper
    # ------------------------------------------------------------------
    def apparent_charge(self, profile: LoadProfile, at_time: Optional[float] = None) -> float:
        """Equation 1: apparent charge sigma(T) lost by ``at_time``.

        Intervals that have not started by ``at_time`` contribute nothing;
        an interval still in progress at ``at_time`` is truncated to the
        portion already executed (equivalently, the running task is assumed
        to keep drawing its current up to ``at_time``).

        The computation is vectorized over (intervals x series terms) but
        returns bit-identical values to the per-interval scalar loop kept in
        :meth:`apparent_charge_reference`.
        """
        if at_time is None:
            at_time = profile.end_time
        if at_time < 0:
            raise BatteryModelError(f"evaluation time must be >= 0, got {at_time!r}")
        if profile.is_empty:
            return 0.0
        starts = np.array([iv.start for iv in profile], dtype=float)
        durations = np.array([iv.duration for iv in profile], dtype=float)
        currents = np.array([iv.current for iv in profile], dtype=float)
        # Clamping elapsed time to zero makes not-yet-started intervals fall
        # out of the bracket exactly (eff = since_end = since_start = 0), so
        # no masking is needed and active intervals see the same arithmetic
        # as the scalar reference.
        time_in = np.maximum(at_time - starts, 0.0)
        effective = np.minimum(durations, time_in)
        factors = self._bracket(since_end=time_in - effective, since_start=time_in)
        contributions = currents * (effective + 2.0 * factors)
        # Sequential accumulation over non-zero-current intervals preserves
        # the reference implementation's rounding exactly.
        total = 0.0
        for index in range(len(contributions)):
            if currents[index] != 0.0:
                total += contributions[index]
        return float(total)

    def apparent_charge_reference(
        self, profile: LoadProfile, at_time: Optional[float] = None
    ) -> float:
        """Scalar per-interval reference implementation of :meth:`apparent_charge`.

        Kept as the oracle for the golden tests pinning the vectorized path;
        it is the original (pre-vectorization) loop, unchanged.
        """
        if at_time is None:
            at_time = profile.end_time
        if at_time < 0:
            raise BatteryModelError(f"evaluation time must be >= 0, got {at_time!r}")
        total = 0.0
        for interval in profile:
            if interval.current == 0.0:
                continue
            total += interval.current * self._interval_factor(
                start=interval.start,
                duration=interval.duration,
                at_time=at_time,
            )
        return total

    def _bracket(self, since_end: np.ndarray, since_start: np.ndarray) -> np.ndarray:
        """Vectorized series sum of Equation 1's bracket for many intervals.

        ``since_end`` / ``since_start`` are per-interval times elapsed between
        the (truncated) interval end / interval start and the evaluation
        time; both must be >= 0.  Returns the per-interval series sums (the
        bracket is ``effective_duration + 2 * bracket``).
        """
        decay_end = np.exp(-self._beta2m2[None, :] * since_end[:, None])
        decay_start = np.exp(-self._beta2m2[None, :] * since_start[:, None])
        return np.sum((decay_end - decay_start) / self._beta2m2[None, :], axis=1)

    def _interval_factor(self, start: float, duration: float, at_time: float) -> float:
        """The bracketed factor of Equation 1 for one interval, truncated at ``at_time``."""
        if at_time <= start:
            return 0.0
        effective_duration = min(duration, at_time - start)
        # exponents are always <= 0: at_time >= start + effective_duration >= start
        since_end = at_time - start - effective_duration
        since_start = at_time - start
        decay_end = np.exp(-self._beta2m2 * since_end)
        decay_start = np.exp(-self._beta2m2 * since_start)
        series = float(np.sum((decay_end - decay_start) / self._beta2m2))
        return effective_duration + 2.0 * series

    # ------------------------------------------------------------------
    # canonical schedule kernel (gap-free back-to-back intervals)
    # ------------------------------------------------------------------
    def _kernel_args(self) -> tuple:
        """Folded constants forwarded to the compiled kernel."""
        return (self._beta2m2,)

    def interval_contributions(
        self,
        durations: np.ndarray,
        currents: np.ndarray,
        time_to_end: np.ndarray,
    ) -> np.ndarray:
        """Per-interval sigma contributions, parametrised by time-to-end.

        ``time_to_end[k]`` is the time between interval ``k``'s end and the
        evaluation time (>= 0: every interval has completed).  Because it
        depends only on what runs *after* the interval, a contribution is
        unchanged by any edit to the schedule at or before its position —
        the invariant behind the incremental evaluator's partial updates.
        """
        durations = np.asarray(durations, dtype=float)
        currents = np.asarray(currents, dtype=float)
        time_to_end = np.asarray(time_to_end, dtype=float)
        series = self._bracket(since_end=time_to_end, since_start=time_to_end + durations)
        return currents * (durations + 2.0 * series)

    def contribution_floor(
        self, durations: np.ndarray, currents: np.ndarray
    ) -> np.ndarray:
        """Nominal charge ``I * Delta`` per interval.

        A valid pruning floor: the Equation-1 bracket never drops below the
        interval's duration once the interval has completed (the recovery
        decay only sheds the rate-capacity *excess*), so every contribution
        is at least the plain coulomb count.
        """
        return np.asarray(currents, dtype=float) * np.asarray(durations, dtype=float)

    # ------------------------------------------------------------------
    # convenience closed forms
    # ------------------------------------------------------------------
    def constant_load_charge(self, current: float, duration: float) -> float:
        """sigma at the end of a single constant-current discharge of ``duration``.

        Closed form ``I * (Delta + 2 * sum (1 - exp(-beta^2 m^2 Delta)) / (beta^2 m^2))``;
        exceeds ``I * Delta`` (rate-capacity effect) and approaches it as
        ``beta`` grows (ideal battery limit).
        """
        if current < 0 or duration < 0:
            raise BatteryModelError("current and duration must be non-negative")
        if current == 0.0 or duration == 0.0:
            return 0.0
        series = float(np.sum((1.0 - np.exp(-self._beta2m2 * duration)) / self._beta2m2))
        return current * (duration + 2.0 * series)

    def constant_load_lifetime(self, current: float, capacity: float) -> float:
        """Lifetime under a never-ending constant current ``current``.

        Solved numerically from the closed form above (treating the load as
        one interval of growing duration evaluated at its own end time).
        """
        if current <= 0:
            raise BatteryModelError("current must be > 0 for a lifetime estimate")
        if capacity <= 0:
            raise BatteryModelError("capacity must be > 0")
        # The apparent charge at time T of a constant load started at 0 is
        # strictly increasing in T, so exponential search + bisection works.
        low, high = 0.0, 1.0
        while self.constant_load_charge(current, high) < capacity:
            high *= 2.0
            if high > 1e12:
                raise BatteryModelError("constant load never exhausts the battery (numeric overflow)")
        for _ in range(self._BISECTION_STEPS):
            mid = 0.5 * (low + high)
            if self.constant_load_charge(current, mid) >= capacity:
                high = mid
            else:
                low = mid
        return high

    def recovery_gain(self, profile: LoadProfile, rest: float) -> float:
        """Apparent charge recovered by resting ``rest`` time units after the profile.

        Returns ``sigma(end) - sigma(end + rest)``, a non-negative quantity
        quantifying the recovery effect (zero for an ideal battery).
        """
        if rest < 0:
            raise BatteryModelError("rest duration must be non-negative")
        end = profile.end_time
        return self.apparent_charge(profile, end) - self.apparent_charge(profile, end + rest)

    def signature(self) -> tuple:
        """Exact-parameter cache fingerprint (see :func:`repro.engine.model_signature`)."""
        return (type(self).__name__, self.beta, self.series_terms)

    def __repr__(self) -> str:
        return f"RakhmatovVrudhulaModel(beta={self.beta:g}, series_terms={self.series_terms})"
