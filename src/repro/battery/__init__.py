"""Battery substrate: discharge profiles and charge/lifetime models.

Implements the paper's cost function — the Rakhmatov–Vrudhula analytical
model of Equation 1, with its rate-capacity and recovery effects — alongside
an ideal coulomb counter and a Peukert's-law model used as comparators, plus
the :class:`LoadProfile` structure all of them consume.
"""

from .base import BatteryModel
from .ideal import IdealBatteryModel
from .kibam import KineticBatteryModel
from .parameters import (
    BETA_PRESETS,
    CHEMISTRIES,
    PAPER_BETA,
    BatterySpec,
    battery_from_preset,
)
from .peukert import PeukertModel
from .profile import LoadInterval, LoadProfile
from .rakhmatov import DEFAULT_SERIES_TERMS, RakhmatovVrudhulaModel, suffix_durations
from .simulate import DischargeTrace, simulate_discharge

__all__ = [
    "BatteryModel",
    "IdealBatteryModel",
    "PeukertModel",
    "KineticBatteryModel",
    "RakhmatovVrudhulaModel",
    "LoadInterval",
    "LoadProfile",
    "BatterySpec",
    "battery_from_preset",
    "BETA_PRESETS",
    "CHEMISTRIES",
    "PAPER_BETA",
    "DEFAULT_SERIES_TERMS",
    "suffix_durations",
    "DischargeTrace",
    "simulate_discharge",
]
