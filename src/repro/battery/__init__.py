"""Battery substrate: discharge profiles and charge/lifetime models.

Implements the paper's cost function — the Rakhmatov–Vrudhula analytical
model of Equation 1, with its rate-capacity and recovery effects — alongside
an ideal coulomb counter, a Peukert's-law model and the kinetic battery
model (KiBaM) as alternative chemistries, plus the :class:`LoadProfile`
structure all of them consume.  Every chemistry shares the vectorized
schedule kernel of :class:`ScheduleKernelMixin` (per-interval contributions
parametrised by time-to-end), so the whole evaluator stack — full,
incremental and batch — is chemistry-generic.
"""

from .backends import (
    KERNEL_BACKENDS,
    available_backends,
    default_backend,
    numba_available,
)
from .base import BatteryModel
from .ideal import IdealBatteryModel
from .kernels import ScheduleKernelMixin, suffix_durations
from .kibam import KineticBatteryModel
from .parameters import (
    BETA_PRESETS,
    CHEMISTRIES,
    PAPER_BETA,
    BatterySpec,
    battery_from_preset,
)
from .peukert import PeukertModel
from .profile import LoadInterval, LoadProfile
from .rakhmatov import DEFAULT_SERIES_TERMS, RakhmatovVrudhulaModel
from .simulate import DischargeTrace, simulate_discharge

__all__ = [
    "BatteryModel",
    "ScheduleKernelMixin",
    "IdealBatteryModel",
    "PeukertModel",
    "KineticBatteryModel",
    "RakhmatovVrudhulaModel",
    "LoadInterval",
    "LoadProfile",
    "BatterySpec",
    "battery_from_preset",
    "BETA_PRESETS",
    "CHEMISTRIES",
    "PAPER_BETA",
    "DEFAULT_SERIES_TERMS",
    "suffix_durations",
    "DischargeTrace",
    "simulate_discharge",
    "KERNEL_BACKENDS",
    "available_backends",
    "default_backend",
    "numba_available",
]
