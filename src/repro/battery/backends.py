"""Opt-in compiled implementations of the chemistry schedule kernels.

Every battery chemistry funnels its schedule evaluation through one
elementwise kernel (``ScheduleKernelMixin._contributions``); this module
holds the optional *compiled* implementations of those kernels and the
backend-selection logic:

* the default backend is ``"numpy"`` — the reference implementations in
  the chemistry modules themselves;
* setting the environment variable ``REPRO_KERNEL_BACKEND=numba`` (or a
  model's ``kernel_backend`` attribute) requests the numba-compiled
  kernels below.  When numba is not installed — it is an **optional**
  dependency, never required — the request silently falls back to numpy,
  so the same configuration runs everywhere;
* the compiled kernels are conformance-gated against the numpy reference
  (bitwise or <=1e-12 per element) by ``tests/battery/test_backends.py``,
  which skips cleanly when numba is absent and runs in CI's
  optional-dependency job when it is present.

The kernels are registered by name (:data:`KERNEL_NAMES`); a chemistry
advertises its kernel through ``KERNEL_NAME`` and passes its folded
constants through ``_kernel_args()``.  Compilation is lazy and happens at
most once per kernel per process (the first call pays the JIT cost; CI's
numba job exists precisely to keep that path exercised).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

__all__ = [
    "KERNEL_BACKENDS",
    "KERNEL_NAMES",
    "available_backends",
    "default_backend",
    "numba_available",
    "resolve_kernel",
]

#: Environment variable selecting the process-wide default backend.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Recognised backend names.  Anything else falls back to numpy (the
#: selection is a performance hint, never a correctness switch).
KERNEL_BACKENDS = ("numpy", "numba")

#: Chemistry kernels with a compiled implementation.
KERNEL_NAMES = ("rakhmatov", "kibam", "peukert", "ideal")

_NUMBA_KERNELS: Optional[Dict[str, Callable]] = None
_NUMBA_CHECKED = False


def numba_available() -> bool:
    """True when the optional numba dependency can be imported."""
    try:
        import numba  # noqa: F401
    except Exception:  # pragma: no cover - exercised only without numba
        return False
    return True


def available_backends() -> tuple:
    """The backends usable in this process (numpy always; numba if importable)."""
    return ("numpy", "numba") if numba_available() else ("numpy",)


def default_backend() -> str:
    """The process-wide backend implied by :data:`BACKEND_ENV_VAR`."""
    return os.environ.get(BACKEND_ENV_VAR, "numpy").strip().lower() or "numpy"


def _build_numba_kernels() -> Dict[str, Callable]:
    """Compile (lazily) the per-chemistry elementwise kernels.

    Each kernel takes the three per-interval arrays plus the chemistry's
    folded constants, and returns the per-interval contributions — the
    exact contract of ``ScheduleKernelMixin._contributions``.  The loops
    mirror the numpy reference expressions operation for operation, which
    is what keeps them inside the <=1e-12 conformance envelope.
    """
    import numpy as np
    from numba import njit

    @njit(cache=True)
    def _rakhmatov(durations, currents, time_to_end, beta2m2):
        n = durations.shape[0]
        modes = beta2m2.shape[0]
        out = np.empty(n)
        for i in range(n):
            series = 0.0
            for m in range(modes):
                decay_end = np.exp(-beta2m2[m] * time_to_end[i])
                decay_start = np.exp(-beta2m2[m] * (time_to_end[i] + durations[i]))
                series += (decay_end - decay_start) / beta2m2[m]
            out[i] = currents[i] * (durations[i] + 2.0 * series)
        return out

    @njit(cache=True)
    def _kibam(durations, currents, time_to_end, neg_k_prime, stranded_scale):
        n = durations.shape[0]
        out = np.empty(n)
        for i in range(n):
            decay_end = np.exp(neg_k_prime * time_to_end[i])
            decay_start = np.exp(neg_k_prime * (time_to_end[i] + durations[i]))
            out[i] = currents[i] * durations[i] + (stranded_scale * currents[i]) * (
                decay_end - decay_start
            )
        return out

    @njit(cache=True)
    def _peukert(durations, currents, time_to_end, reference_current, exponent):
        n = durations.shape[0]
        out = np.empty(n)
        for i in range(n):
            ratio = currents[i] / reference_current
            out[i] = reference_current * durations[i] * ratio**exponent
        return out

    @njit(cache=True)
    def _ideal(durations, currents, time_to_end):
        n = durations.shape[0]
        out = np.empty(n)
        for i in range(n):
            out[i] = currents[i] * durations[i]
        return out

    return {
        "rakhmatov": _rakhmatov,
        "kibam": _kibam,
        "peukert": _peukert,
        "ideal": _ideal,
    }


def _numba_kernels() -> Optional[Dict[str, Callable]]:
    global _NUMBA_KERNELS, _NUMBA_CHECKED
    if not _NUMBA_CHECKED:
        _NUMBA_CHECKED = True
        try:
            _NUMBA_KERNELS = _build_numba_kernels()
        except Exception:  # numba missing (or broken): silent numpy fallback
            _NUMBA_KERNELS = None
    return _NUMBA_KERNELS


def resolve_kernel(name: str, override: Optional[str] = None) -> Optional[Callable]:
    """The compiled kernel for ``name`` under the active backend, or ``None``.

    ``None`` means "use the numpy reference" — the caller's fallback path.
    ``override`` (a model's ``kernel_backend`` attribute) wins over the
    :data:`BACKEND_ENV_VAR` environment variable; any value other than
    ``"numba"``, and any environment where numba is unavailable, resolves
    to the numpy path without raising.
    """
    backend = (override or default_backend()).strip().lower()
    if backend != "numba":
        return None
    kernels = _numba_kernels()
    if kernels is None:
        return None
    return kernels.get(name)
