"""Time-domain simulation of a battery under a discharge profile.

The analytical models answer point questions ("what is sigma at T?").  For
plots, intuition and validation it is often more useful to have the whole
trajectory: how the apparent charge, the recoverable part and the remaining
state of charge evolve over the profile.  :func:`simulate_discharge` samples
any :class:`~repro.battery.BatteryModel` on a uniform time grid and returns
a :class:`DischargeTrace` with exactly that, plus helpers to locate the
depletion time and render a quick ASCII plot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import BatteryModelError
from .base import BatteryModel
from .ideal import IdealBatteryModel
from .profile import LoadProfile

__all__ = ["DischargeTrace", "simulate_discharge"]


@dataclass(frozen=True)
class DischargeTrace:
    """Sampled battery state over a discharge profile."""

    times: Tuple[float, ...]
    """Sample instants (time units)."""

    apparent_charge: Tuple[float, ...]
    """Model sigma at each sample (mA·min)."""

    delivered_charge: Tuple[float, ...]
    """Plain coulomb count at each sample (mA·min)."""

    current: Tuple[float, ...]
    """Instantaneous load current at each sample (mA)."""

    capacity: Optional[float] = None
    """Battery capacity used for state-of-charge, when given."""

    @property
    def unavailable_charge(self) -> Tuple[float, ...]:
        """The recoverable part: apparent minus delivered charge at each sample."""
        return tuple(a - d for a, d in zip(self.apparent_charge, self.delivered_charge))

    def state_of_charge(self) -> Tuple[float, ...]:
        """Remaining fraction of the capacity (requires ``capacity``)."""
        if self.capacity is None:
            raise BatteryModelError("state_of_charge requires a capacity")
        return tuple(
            max(0.0, 1.0 - sigma / self.capacity) for sigma in self.apparent_charge
        )

    def depletion_time(self) -> Optional[float]:
        """First sample at which the apparent charge reaches the capacity."""
        if self.capacity is None:
            raise BatteryModelError("depletion_time requires a capacity")
        for time, sigma in zip(self.times, self.apparent_charge):
            if sigma >= self.capacity:
                return time
        return None

    def peak_unavailable_charge(self) -> float:
        """Largest recoverable charge observed along the trace."""
        return max(self.unavailable_charge, default=0.0)

    # ------------------------------------------------------------------
    # serialisation (sim result records embed traces through these)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (inverse of :meth:`from_dict`)."""
        return {
            "times": list(self.times),
            "apparent_charge": list(self.apparent_charge),
            "delivered_charge": list(self.delivered_charge),
            "current": list(self.current),
            "capacity": self.capacity,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DischargeTrace":
        """Rebuild a trace from its :meth:`to_dict` form.

        The four sample series must have equal lengths; ``capacity`` is
        optional (``None`` disables the capacity-dependent queries, exactly
        as at construction time).
        """
        times = tuple(float(value) for value in data.get("times", ()))
        sigmas = tuple(float(value) for value in data.get("apparent_charge", ()))
        delivered = tuple(float(value) for value in data.get("delivered_charge", ()))
        currents = tuple(float(value) for value in data.get("current", ()))
        if not (len(times) == len(sigmas) == len(delivered) == len(currents)):
            raise BatteryModelError(
                "trace sample series must have equal lengths, got "
                f"{len(times)}/{len(sigmas)}/{len(delivered)}/{len(currents)}"
            )
        capacity = data.get("capacity")
        return cls(
            times=times,
            apparent_charge=sigmas,
            delivered_charge=delivered,
            current=currents,
            capacity=float(capacity) if capacity is not None else None,
        )

    def ascii_plot(self, width: int = 60, height: int = 12) -> str:
        """Coarse ASCII plot of sigma (``*``) and delivered charge (``.``) over time."""
        if not self.times:
            return "(empty trace)"
        top = max(self.apparent_charge) or 1.0
        columns = min(width, len(self.times))
        step = max(1, len(self.times) // columns)
        sampled = list(zip(self.times, self.apparent_charge, self.delivered_charge))[::step]
        grid = [[" "] * len(sampled) for _ in range(height)]
        for col, (_, sigma, delivered) in enumerate(sampled):
            sigma_row = height - 1 - int((height - 1) * sigma / top)
            delivered_row = height - 1 - int((height - 1) * delivered / top)
            grid[delivered_row][col] = "."
            grid[sigma_row][col] = "*"
        lines = ["".join(row) for row in grid]
        lines.append("-" * len(sampled))
        lines.append(
            f"0 .. {self.times[-1]:g} time units | '*' apparent charge, '.' delivered "
            f"(max {top:.0f} mA·min)"
        )
        return "\n".join(lines)


def simulate_discharge(
    model: BatteryModel,
    profile: LoadProfile,
    capacity: Optional[float] = None,
    num_samples: int = 200,
    horizon: Optional[float] = None,
) -> DischargeTrace:
    """Sample a battery model over a profile on a uniform time grid.

    Parameters
    ----------
    model:
        Any battery model (analytical, ideal, Peukert, KiBaM...).
    profile:
        The discharge profile to simulate.
    capacity:
        Optional battery capacity (mA·min) enabling state-of-charge and
        depletion queries on the returned trace.
    num_samples:
        Number of evenly spaced samples (minimum 2).
    horizon:
        End of the simulated window; defaults to the profile end, and may be
        set beyond it to observe post-completion recovery.
    """
    if num_samples < 2:
        raise BatteryModelError("num_samples must be >= 2")
    if capacity is not None and capacity <= 0:
        raise BatteryModelError("capacity must be > 0 when given")
    end = float(horizon) if horizon is not None else profile.end_time
    if end <= 0:
        end = 1.0
    ideal = IdealBatteryModel()
    times: List[float] = []
    sigmas: List[float] = []
    delivered: List[float] = []
    currents: List[float] = []
    for index in range(num_samples):
        t = end * index / (num_samples - 1)
        times.append(t)
        sigmas.append(model.apparent_charge(profile, at_time=t))
        delivered.append(ideal.apparent_charge(profile, at_time=t))
        currents.append(profile.current_at(t))
    return DischargeTrace(
        times=tuple(times),
        apparent_charge=tuple(sigmas),
        delivered_charge=tuple(delivered),
        current=tuple(currents),
        capacity=capacity,
    )
