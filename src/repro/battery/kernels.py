"""Shared vectorized schedule-evaluation kernel for all battery chemistries.

The scheduling stack (:mod:`repro.scheduling.evaluator`) costs candidates as
gap-free back-to-back schedules: ``durations[k]`` at ``currents[k]``
consecutively from time zero, with sigma evaluated ``rest`` time units after
the makespan.  Every chemistry in the library expresses that cost the same
way — as a sum of **per-interval contributions parametrised by time-to-end**
(the time between the interval's end and the evaluation point)::

    sigma = fsum_k  contribution(duration_k, current_k, time_to_end_k)

Because an interval's time-to-end depends only on what runs *after* it, a
contribution is unchanged by any edit at or before its position — the
invariant the incremental evaluator exploits to re-cost single-move
neighbours without touching unaffected intervals, for any chemistry.

:class:`ScheduleKernelMixin` turns one model-specific method
(:meth:`~ScheduleKernelMixin.interval_contributions`) into the complete
canonical schedule API:

* :meth:`~ScheduleKernelMixin.schedule_contributions` /
  :meth:`~ScheduleKernelMixin.schedule_charge` — one schedule, exact
  (``math.fsum``) reduction;
* :meth:`~ScheduleKernelMixin.schedule_charge_batch` — many equal-length
  schedules in one vectorized computation, bit-identical to evaluating each
  row individually; and
* :meth:`~ScheduleKernelMixin.contribution_floor` — the per-interval lower
  bound that makes branch-and-bound pruning (the exhaustive baseline's DFS)
  valid for the chemistry.

Two class attributes describe the chemistry to the evaluator stack:

* ``TIME_SENSITIVE`` — whether contributions actually depend on time-to-end.
  The diffusion-style chemistries (Rakhmatov–Vrudhula, KiBaM) are sensitive:
  a move changes the time-to-end — and hence the contribution — of every
  interval before it.  Per-interval energy laws (Peukert, ideal) are not:
  the incremental evaluator then reuses contributions on *both* sides of a
  move and re-costs only the changed segment.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

import numpy as np

from ..errors import BatteryModelError

__all__ = ["ScheduleKernelMixin", "suffix_durations"]


def suffix_durations(durations: "np.ndarray") -> "np.ndarray":
    """Suffix sums ``tail[k] = sum(durations[k+1:])``, accumulated back-to-front.

    ``tail[k]`` is interval ``k``'s time-to-end when sigma is evaluated at
    the makespan of a back-to-back schedule.  The accumulation order (last
    interval first, one addition per step) is part of the scheduling stack's
    bit-level contract: the incremental evaluator re-extends exactly this
    chain when it recomputes the prefix affected by a move, which keeps
    partial updates bit-identical to a full re-evaluation.
    """
    durations = np.asarray(durations, dtype=float)
    n = durations.shape[0]
    if n == 0:
        return np.zeros(0)
    reverse = np.cumsum(durations[::-1])
    return np.concatenate((reverse[::-1][1:], [0.0]))


class ScheduleKernelMixin:
    """Canonical schedule-evaluation API derived from ``interval_contributions``.

    Mix into a :class:`~repro.battery.BatteryModel` *before* the base class
    so the derived ``schedule_charge`` overrides the profile-materialising
    fallback::

        class MyModel(ScheduleKernelMixin, BatteryModel): ...

    The only required method is :meth:`interval_contributions`; it must be a
    pure elementwise kernel (same-shape array in, array out) so that the
    single-schedule and batch paths reduce the exact same per-interval
    values.
    """

    #: Whether per-interval contributions depend on the time-to-end argument.
    #: ``False`` lets the incremental evaluator reuse contributions on both
    #: sides of a move and ignore evaluation-point (rest) changes.
    TIME_SENSITIVE: bool = True

    #: Registry name of this chemistry's elementwise kernel in
    #: :mod:`repro.battery.backends`; ``None`` means the chemistry has no
    #: compiled implementation and always evaluates through numpy.
    KERNEL_NAME: Optional[str] = None

    #: Per-instance backend override: ``None`` defers to the
    #: ``REPRO_KERNEL_BACKEND`` environment variable, ``"numpy"`` forces the
    #: reference path, ``"numba"`` requests the compiled path (silently
    #: falling back to numpy when numba is unavailable).
    kernel_backend: Optional[str] = None

    def _kernel_args(self) -> tuple:
        """Chemistry constants forwarded to the compiled kernel (if any)."""
        return ()

    def _contributions(
        self,
        durations: "np.ndarray",
        currents: "np.ndarray",
        time_to_end: "np.ndarray",
    ) -> "np.ndarray":
        """Backend-dispatched elementwise kernel (the single seam).

        Every derived schedule path reduces the values this method returns;
        the compiled backend therefore needs to match the numpy reference
        only here (conformance-gated bitwise-or-<=1e-12 per chemistry).
        """
        if self.KERNEL_NAME is not None:
            from .backends import resolve_kernel

            kernel = resolve_kernel(self.KERNEL_NAME, self.kernel_backend)
            if kernel is not None:
                return kernel(
                    np.ascontiguousarray(durations, dtype=float),
                    np.ascontiguousarray(currents, dtype=float),
                    np.ascontiguousarray(time_to_end, dtype=float),
                    *self._kernel_args(),
                )
        return self.interval_contributions(durations, currents, time_to_end)

    def interval_contributions(
        self,
        durations: "np.ndarray",
        currents: "np.ndarray",
        time_to_end: "np.ndarray",
    ) -> "np.ndarray":
        """Per-interval sigma contributions, parametrised by time-to-end.

        ``time_to_end[k]`` is the time between interval ``k``'s end and the
        evaluation time (>= 0: every interval has completed).  Implemented by
        each chemistry; must be elementwise (no cross-interval coupling).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the vectorized "
            "schedule kernel"
        )

    def contribution_floor(
        self, durations: "np.ndarray", currents: "np.ndarray"
    ) -> "np.ndarray":
        """Per-interval lower bound on the contribution over all time-to-ends.

        Branch-and-bound searches (the exhaustive baseline) prune with
        ``prefix sigma + sum of remaining floors``; the bound is valid
        because no placement can push an interval's contribution below its
        floor.  Time-insensitive chemistries get the exact contribution for
        free; time-sensitive ones must override with their own bound.
        """
        if self.TIME_SENSITIVE:
            raise NotImplementedError(
                f"{type(self).__name__} must supply its own contribution floor"
            )
        durations = np.asarray(durations, dtype=float)
        return self.interval_contributions(
            durations, currents, np.zeros(durations.shape)
        )

    # ------------------------------------------------------------------
    # derived canonical schedule API
    # ------------------------------------------------------------------
    def schedule_contributions(
        self,
        durations: Sequence[float],
        currents: Sequence[float],
        rest: float = 0.0,
    ) -> "np.ndarray":
        """Per-interval contributions of a back-to-back schedule.

        The schedule runs ``durations[k]`` at ``currents[k]`` consecutively
        from time zero and sigma is evaluated ``rest`` time units after the
        makespan (``rest > 0`` credits post-completion recovery, for
        chemistries that have any).
        """
        if rest < 0:
            raise BatteryModelError(f"rest must be >= 0, got {rest!r}")
        durations = np.asarray(durations, dtype=float)
        currents = np.asarray(currents, dtype=float)
        if durations.shape != currents.shape:
            raise BatteryModelError("durations and currents must have the same shape")
        tail = suffix_durations(durations)
        return self._contributions(durations, currents, tail + rest)

    def schedule_charge(
        self,
        durations: Sequence[float],
        currents: Sequence[float],
        rest: float = 0.0,
    ) -> float:
        """sigma of a back-to-back schedule, evaluated ``rest`` after the makespan.

        This is the canonical cost of the scheduling stack: exact (fsum)
        reduction of :meth:`schedule_contributions`, so full, incremental and
        batch evaluation of the same schedule return bit-identical values.
        """
        return float(math.fsum(self.schedule_contributions(durations, currents, rest)))

    def schedule_charge_batch(
        self,
        durations: Sequence[Sequence[float]],
        currents: Sequence[Sequence[float]],
        rest: Union[float, Sequence[float]] = 0.0,
    ) -> "np.ndarray":
        """sigma of many equal-length back-to-back schedules at once.

        ``durations`` / ``currents`` are (profiles x intervals) arrays; the
        result is one sigma per profile, bit-identical to calling
        :meth:`schedule_charge` per row: the per-row suffix sums accumulate
        back-to-front exactly like the 1-D chain, and the elementwise kernel
        sees the same values whatever the array shape.

        ``rest`` may be a scalar (shared by every profile) or a length-
        ``profiles`` vector giving each row its own post-completion rest —
        the batch simulator's final costing evaluates many realised
        timelines whose makespans (and hence deadline-clamped rests)
        differ.  ``tail + rest[row]`` is the same scalar addition the 1-D
        path performs, so per-row rests keep the bit-identity guarantee.
        """
        durations = np.asarray(durations, dtype=float)
        currents = np.asarray(currents, dtype=float)
        if durations.ndim != 2 or durations.shape != currents.shape:
            raise BatteryModelError(
                "durations and currents must be 2-D arrays of identical shape"
            )
        rest_arr = np.asarray(rest, dtype=float)
        if rest_arr.ndim == 0:
            offset = rest_arr[()]
        elif rest_arr.shape == (durations.shape[0],):
            offset = rest_arr[:, None]
        else:
            raise BatteryModelError(
                "rest must be a scalar or a vector with one entry per profile"
            )
        if np.any(rest_arr < 0):
            raise BatteryModelError(f"rest must be >= 0, got {rest!r}")
        if durations.shape[1] == 0:
            return np.zeros(durations.shape[0])
        reverse = np.cumsum(durations[:, ::-1], axis=1)
        tail = np.concatenate(
            (reverse[:, ::-1][:, 1:], np.zeros((durations.shape[0], 1))), axis=1
        )
        contributions = self._contributions(
            durations.ravel(), currents.ravel(), (tail + offset).ravel()
        ).reshape(durations.shape)
        # fsum over plain floats (tolist) — bit-identical, and much faster
        # than iterating the boxed numpy elements row by row.
        return np.array([math.fsum(row) for row in contributions.tolist()])
