"""Ideal (coulomb-counting) battery model.

An ideal battery delivers exactly its rated charge regardless of how fast it
is discharged: the apparent charge lost by time ``T`` is simply the integral
of the current drawn up to ``T``.  It is the ``beta -> infinity`` limit of
the Rakhmatov–Vrudhula model and serves two purposes in this library:

* a lower bound / sanity check on the analytical model (sigma_ideal <=
  sigma_analytical for any profile, with equality only for zero load), and
* a cost function under which task *ordering* is irrelevant, which isolates
  how much of the paper's benefit comes from battery-awareness rather than
  from plain energy minimisation.

Like the Peukert model it is time-**insensitive** in the sense of
:class:`~repro.battery.kernels.ScheduleKernelMixin`: each interval's
contribution is its own coulomb count, independent of when it runs, so the
vectorized schedule kernel ignores time-to-end and the contribution is its
own exact pruning floor.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .base import BatteryModel
from .kernels import ScheduleKernelMixin
from .profile import LoadProfile

__all__ = ["IdealBatteryModel"]


class IdealBatteryModel(ScheduleKernelMixin, BatteryModel):
    """Coulomb counter: apparent charge equals the nominal charge drawn."""

    #: Contributions ignore time-to-end entirely (pure coulomb counting).
    TIME_SENSITIVE = False

    #: Compiled-kernel registry name (see :mod:`repro.battery.backends`).
    KERNEL_NAME = "ideal"

    def apparent_charge(self, profile: LoadProfile, at_time: Optional[float] = None) -> float:
        """Charge drawn before ``at_time`` (defaults to the end of the profile).

        This scalar per-interval loop is the retained reference
        implementation; the scheduling stack evaluates through the
        vectorized :meth:`interval_contributions` kernel instead.
        """
        if at_time is None:
            at_time = profile.end_time
        total = 0.0
        for interval in profile:
            if at_time <= interval.start:
                continue
            effective = min(interval.duration, at_time - interval.start)
            total += interval.current * effective
        return total

    # ------------------------------------------------------------------
    # canonical schedule kernel
    # ------------------------------------------------------------------
    def interval_contributions(
        self,
        durations: np.ndarray,
        currents: np.ndarray,
        time_to_end: np.ndarray,
    ) -> np.ndarray:
        """Per-interval coulomb counts (``time_to_end`` is ignored)."""
        return np.asarray(currents, dtype=float) * np.asarray(durations, dtype=float)

    def signature(self) -> Tuple:
        """Exact-parameter cache fingerprint (see :func:`repro.engine.model_signature`)."""
        return (type(self).__name__,)

    def __repr__(self) -> str:
        return "IdealBatteryModel()"
