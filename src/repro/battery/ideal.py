"""Ideal (coulomb-counting) battery model.

An ideal battery delivers exactly its rated charge regardless of how fast it
is discharged: the apparent charge lost by time ``T`` is simply the integral
of the current drawn up to ``T``.  It is the ``beta -> infinity`` limit of
the Rakhmatov–Vrudhula model and serves two purposes in this library:

* a lower bound / sanity check on the analytical model (sigma_ideal <=
  sigma_analytical for any profile, with equality only for zero load), and
* a cost function under which task *ordering* is irrelevant, which isolates
  how much of the paper's benefit comes from battery-awareness rather than
  from plain energy minimisation.
"""

from __future__ import annotations

from typing import Optional

from .base import BatteryModel
from .profile import LoadProfile

__all__ = ["IdealBatteryModel"]


class IdealBatteryModel(BatteryModel):
    """Coulomb counter: apparent charge equals the nominal charge drawn."""

    def apparent_charge(self, profile: LoadProfile, at_time: Optional[float] = None) -> float:
        """Charge drawn before ``at_time`` (defaults to the end of the profile)."""
        if at_time is None:
            at_time = profile.end_time
        total = 0.0
        for interval in profile:
            if at_time <= interval.start:
                continue
            effective = min(interval.duration, at_time - interval.start)
            total += interval.current * effective
        return total

    def __repr__(self) -> str:
        return "IdealBatteryModel()"
