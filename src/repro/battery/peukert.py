"""Peukert's-law battery model.

Peukert's empirical law states that the deliverable capacity of a battery
shrinks as the discharge current grows: a constant current ``I`` exhausts a
battery of rated capacity ``C`` (rated at current ``I_ref``) after

    t = C / I_ref * (I_ref / I) ** k

where ``k >= 1`` is the Peukert exponent (k = 1 is the ideal battery;
lead-acid cells are around 1.2-1.4, lithium-ion closer to 1.05).

For scheduling purposes the law is applied per interval: interval ``k`` with
current ``I_k`` and duration ``Delta_k`` consumes an *effective* charge of
``I_ref * Delta_k * (I_k / I_ref) ** k``, i.e. high-current intervals are
penalised superlinearly.  This is the battery abstraction used by some of
the related work cited in the paper (Luo & Jha; Pedram & Wu) and is provided
here as an alternative cost function and as an ablation anchor.  Unlike the
Rakhmatov–Vrudhula model it has no recovery effect, so idle time never
reduces the apparent charge.

Because each interval's effective charge depends only on its own duration
and current — never on *when* the interval runs — the model is
time-**insensitive** in the sense of
:class:`~repro.battery.kernels.ScheduleKernelMixin`: its vectorized
schedule kernel ignores the time-to-end parameter, the incremental
evaluator re-costs only the intervals a move actually touches, and the
per-interval contribution is its own exact pruning floor.  The scalar
per-profile loop in :meth:`PeukertModel.apparent_charge` is retained as the
conformance reference for the vectorized kernel.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..errors import BatteryModelError
from .base import BatteryModel
from .kernels import ScheduleKernelMixin
from .profile import LoadProfile

__all__ = ["PeukertModel"]


class PeukertModel(ScheduleKernelMixin, BatteryModel):
    """Per-interval Peukert's-law effective-charge model.

    Parameters
    ----------
    exponent:
        Peukert exponent ``k`` (>= 1).
    reference_current:
        Current at which the battery capacity is rated (mA).  Effective
        charge equals nominal charge for intervals drawing exactly this
        current.
    """

    def __init__(self, exponent: float = 1.2, reference_current: float = 1.0) -> None:
        if not math.isfinite(exponent) or exponent < 1.0:
            raise BatteryModelError(f"Peukert exponent must be >= 1, got {exponent!r}")
        if not math.isfinite(reference_current) or reference_current <= 0:
            raise BatteryModelError(
                f"reference current must be finite and > 0, got {reference_current!r}"
            )
        self.exponent = float(exponent)
        self.reference_current = float(reference_current)

    #: Contributions ignore time-to-end entirely (no recovery, no history).
    TIME_SENSITIVE = False

    #: Compiled-kernel registry name (see :mod:`repro.battery.backends`).
    KERNEL_NAME = "peukert"

    def _kernel_args(self) -> tuple:
        """Folded constants forwarded to the compiled kernel."""
        return (self.reference_current, self.exponent)

    def apparent_charge(self, profile: LoadProfile, at_time: Optional[float] = None) -> float:
        """Sum of per-interval effective charges applied before ``at_time``.

        This scalar per-interval loop is the retained reference
        implementation; the scheduling stack evaluates through the
        vectorized :meth:`interval_contributions` kernel instead.
        """
        if at_time is None:
            at_time = profile.end_time
        total = 0.0
        for interval in profile:
            if at_time <= interval.start or interval.current == 0.0:
                continue
            effective_duration = min(interval.duration, at_time - interval.start)
            ratio = interval.current / self.reference_current
            total += self.reference_current * effective_duration * ratio**self.exponent
        return total

    # ------------------------------------------------------------------
    # canonical schedule kernel
    # ------------------------------------------------------------------
    def interval_contributions(
        self,
        durations: np.ndarray,
        currents: np.ndarray,
        time_to_end: np.ndarray,
    ) -> np.ndarray:
        """Per-interval effective charges (``time_to_end`` is ignored).

        Elementwise the same arithmetic as the scalar loop in
        :meth:`apparent_charge`, so each contribution is bit-identical to
        the retained reference.
        """
        durations = np.asarray(durations, dtype=float)
        currents = np.asarray(currents, dtype=float)
        ratio = currents / self.reference_current
        return self.reference_current * durations * ratio**self.exponent

    def signature(self) -> Tuple:
        """Exact-parameter cache fingerprint (see :func:`repro.engine.model_signature`)."""
        return (type(self).__name__, self.exponent, self.reference_current)

    def __repr__(self) -> str:
        return (
            f"PeukertModel(exponent={self.exponent:g}, "
            f"reference_current={self.reference_current:g})"
        )
