"""Peukert's-law battery model.

Peukert's empirical law states that the deliverable capacity of a battery
shrinks as the discharge current grows: a constant current ``I`` exhausts a
battery of rated capacity ``C`` (rated at current ``I_ref``) after

    t = C / I_ref * (I_ref / I) ** k

where ``k >= 1`` is the Peukert exponent (k = 1 is the ideal battery;
lead-acid cells are around 1.2-1.4, lithium-ion closer to 1.05).

For scheduling purposes the law is applied per interval: interval ``k`` with
current ``I_k`` and duration ``Delta_k`` consumes an *effective* charge of
``I_ref * Delta_k * (I_k / I_ref) ** k``, i.e. high-current intervals are
penalised superlinearly.  This is the battery abstraction used by some of
the related work cited in the paper (Luo & Jha; Pedram & Wu) and is provided
here as an alternative cost function and as an ablation anchor.  Unlike the
Rakhmatov–Vrudhula model it has no recovery effect, so idle time never
reduces the apparent charge.
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import BatteryModelError
from .base import BatteryModel
from .profile import LoadProfile

__all__ = ["PeukertModel"]


class PeukertModel(BatteryModel):
    """Per-interval Peukert's-law effective-charge model.

    Parameters
    ----------
    exponent:
        Peukert exponent ``k`` (>= 1).
    reference_current:
        Current at which the battery capacity is rated (mA).  Effective
        charge equals nominal charge for intervals drawing exactly this
        current.
    """

    def __init__(self, exponent: float = 1.2, reference_current: float = 1.0) -> None:
        if not math.isfinite(exponent) or exponent < 1.0:
            raise BatteryModelError(f"Peukert exponent must be >= 1, got {exponent!r}")
        if not math.isfinite(reference_current) or reference_current <= 0:
            raise BatteryModelError(
                f"reference current must be finite and > 0, got {reference_current!r}"
            )
        self.exponent = float(exponent)
        self.reference_current = float(reference_current)

    def apparent_charge(self, profile: LoadProfile, at_time: Optional[float] = None) -> float:
        """Sum of per-interval effective charges applied before ``at_time``."""
        if at_time is None:
            at_time = profile.end_time
        total = 0.0
        for interval in profile:
            if at_time <= interval.start or interval.current == 0.0:
                continue
            effective_duration = min(interval.duration, at_time - interval.start)
            ratio = interval.current / self.reference_current
            total += self.reference_current * effective_duration * ratio**self.exponent
        return total

    def __repr__(self) -> str:
        return (
            f"PeukertModel(exponent={self.exponent:g}, "
            f"reference_current={self.reference_current:g})"
        )
