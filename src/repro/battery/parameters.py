"""Named battery parameter sets and the problem-level battery specification.

The paper reports only the diffusion parameter used in its G3 example
(``beta = 0.273`` with time in minutes) and otherwise assumes the capacity
``alpha`` is "sufficiently large".  This module collects that value, a few
additional presets spanning weak to nearly ideal cells (useful for
sensitivity sweeps), and a small dataclass bundling ``alpha``/``beta`` so
problem instances can carry their battery description around explicitly.

Beyond the paper's Rakhmatov–Vrudhula cost function, a :class:`BatterySpec`
can name any of the library's battery *chemistries* — the abstraction under
which sigma is computed — so that problem instances (and the scenario
catalogue built on them) can ask how the ranking of schedules changes with
the battery model:

>>> BatterySpec(chemistry="peukert", chemistry_params=(("exponent", 1.3),)).model()
PeukertModel(exponent=1.3, reference_current=1)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple, Union

from ..errors import BatteryModelError
from .base import BatteryModel
from .ideal import IdealBatteryModel
from .kibam import KineticBatteryModel
from .peukert import PeukertModel
from .rakhmatov import RakhmatovVrudhulaModel

__all__ = [
    "BatterySpec",
    "PAPER_BETA",
    "BETA_PRESETS",
    "CHEMISTRIES",
    "battery_from_preset",
]

#: The beta value used for the paper's illustrative example (Section 4.2).
PAPER_BETA: float = 0.273

#: Representative diffusion parameters (1/sqrt(minute)).  Smaller beta means a
#: battery whose capacity is more sensitive to the discharge rate.
BETA_PRESETS: Dict[str, float] = {
    "paper": PAPER_BETA,
    "weak": 0.15,
    "typical": 0.273,
    "strong": 0.6,
    "near-ideal": 5.0,
}


def _build_rakhmatov(spec: "BatterySpec", params: Dict[str, Any]) -> BatteryModel:
    return RakhmatovVrudhulaModel(beta=spec.beta, series_terms=spec.series_terms)


def _build_peukert(spec: "BatterySpec", params: Dict[str, Any]) -> BatteryModel:
    return PeukertModel(
        exponent=float(params.get("exponent", 1.2)),
        reference_current=float(params.get("reference_current", 1.0)),
    )


def _build_kibam(spec: "BatterySpec", params: Dict[str, Any]) -> BatteryModel:
    return KineticBatteryModel(
        c=float(params.get("c", 0.625)), k=float(params.get("k", 0.05))
    )


def _build_ideal(spec: "BatterySpec", params: Dict[str, Any]) -> BatteryModel:
    return IdealBatteryModel()


#: Battery chemistries a :class:`BatterySpec` can name, and the per-chemistry
#: parameters its ``chemistry_params`` field accepts.  ``"rakhmatov"`` (the
#: paper's analytical diffusion model) is the default and reads its
#: parameters from the spec's own ``beta``/``series_terms`` fields.
CHEMISTRIES: Dict[str, Any] = {
    "rakhmatov": _build_rakhmatov,
    "peukert": _build_peukert,
    "kibam": _build_kibam,
    "ideal": _build_ideal,
}


def _freeze_value(value: Any) -> Any:
    """Recursively convert mappings/sequences to hashable tuples."""
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _freeze_value(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    return value


def freeze_params(
    params: Union[Mapping[str, Any], Tuple[Tuple[str, Any], ...]],
) -> Tuple[Tuple[str, Any], ...]:
    """Normalise a parameter mapping to a sorted, hashable tuple of pairs.

    Values are frozen recursively (nested mappings become pair tuples,
    sequences become tuples), so frozen specs stay hashable whatever shape
    their parameters take.  Shared by :class:`BatterySpec` and the scenario
    specs in :mod:`repro.scenarios`.
    """
    if isinstance(params, Mapping):
        items = params.items()
    else:
        items = tuple(params)
    return tuple(sorted((str(key), _freeze_value(value)) for key, value in items))


@dataclass(frozen=True)
class BatterySpec:
    """Battery description attached to a scheduling problem.

    Attributes
    ----------
    beta:
        Rakhmatov–Vrudhula diffusion parameter.
    capacity:
        Available charge ``alpha`` in mA·min; ``math.inf`` reproduces the
        paper's "sufficiently large" assumption (lifetime checks are skipped).
    series_terms:
        Series truncation order handed to the analytical model.
    chemistry:
        Which battery abstraction computes sigma — one of
        :data:`CHEMISTRIES` (default ``"rakhmatov"``, the paper's model).
    chemistry_params:
        Extra parameters of non-default chemistries (e.g. the Peukert
        ``exponent`` or the KiBaM ``c``/``k``), stored as a sorted tuple of
        ``(name, value)`` pairs so the spec stays hashable; a plain dict is
        accepted and normalised.
    """

    beta: float = PAPER_BETA
    capacity: float = math.inf
    series_terms: int = 10
    chemistry: str = "rakhmatov"
    chemistry_params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.beta <= 0 or not math.isfinite(self.beta):
            raise BatteryModelError(f"beta must be finite and > 0, got {self.beta!r}")
        if self.capacity <= 0:
            raise BatteryModelError(f"capacity must be > 0, got {self.capacity!r}")
        if self.series_terms < 1:
            raise BatteryModelError(f"series_terms must be >= 1, got {self.series_terms!r}")
        if self.chemistry not in CHEMISTRIES:
            raise BatteryModelError(
                f"unknown battery chemistry {self.chemistry!r}; "
                f"choose from {sorted(CHEMISTRIES)}"
            )
        object.__setattr__(
            self, "chemistry_params", freeze_params(self.chemistry_params)
        )

    def model(self) -> BatteryModel:
        """Instantiate the battery model for this specification.

        The default chemistry returns the paper's analytical
        :class:`~repro.battery.RakhmatovVrudhulaModel`; other chemistries
        build their model from ``chemistry_params``:

        >>> BatterySpec(beta=0.273).model()
        RakhmatovVrudhulaModel(beta=0.273, series_terms=10)
        >>> BatterySpec(chemistry="ideal").model()
        IdealBatteryModel()
        """
        return CHEMISTRIES[self.chemistry](self, dict(self.chemistry_params))

    @property
    def has_finite_capacity(self) -> bool:
        """True when a real capacity (not the "sufficiently large" default) was given."""
        return math.isfinite(self.capacity)


def battery_from_preset(name: str, capacity: float = math.inf) -> BatterySpec:
    """Build a :class:`BatterySpec` from one of the named beta presets."""
    try:
        beta = BETA_PRESETS[name]
    except KeyError:
        raise BatteryModelError(
            f"unknown battery preset {name!r}; choose from {sorted(BETA_PRESETS)}"
        ) from None
    return BatterySpec(beta=beta, capacity=capacity)
