"""Named battery parameter sets and the problem-level battery specification.

The paper reports only the diffusion parameter used in its G3 example
(``beta = 0.273`` with time in minutes) and otherwise assumes the capacity
``alpha`` is "sufficiently large".  This module collects that value, a few
additional presets spanning weak to nearly ideal cells (useful for
sensitivity sweeps), and a small dataclass bundling ``alpha``/``beta`` so
problem instances can carry their battery description around explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..errors import BatteryModelError
from .rakhmatov import RakhmatovVrudhulaModel

__all__ = ["BatterySpec", "PAPER_BETA", "BETA_PRESETS", "battery_from_preset"]

#: The beta value used for the paper's illustrative example (Section 4.2).
PAPER_BETA: float = 0.273

#: Representative diffusion parameters (1/sqrt(minute)).  Smaller beta means a
#: battery whose capacity is more sensitive to the discharge rate.
BETA_PRESETS: Dict[str, float] = {
    "paper": PAPER_BETA,
    "weak": 0.15,
    "typical": 0.273,
    "strong": 0.6,
    "near-ideal": 5.0,
}


@dataclass(frozen=True)
class BatterySpec:
    """Battery description attached to a scheduling problem.

    Attributes
    ----------
    beta:
        Rakhmatov–Vrudhula diffusion parameter.
    capacity:
        Available charge ``alpha`` in mA·min; ``math.inf`` reproduces the
        paper's "sufficiently large" assumption (lifetime checks are skipped).
    series_terms:
        Series truncation order handed to the analytical model.
    """

    beta: float = PAPER_BETA
    capacity: float = math.inf
    series_terms: int = 10

    def __post_init__(self) -> None:
        if self.beta <= 0 or not math.isfinite(self.beta):
            raise BatteryModelError(f"beta must be finite and > 0, got {self.beta!r}")
        if self.capacity <= 0:
            raise BatteryModelError(f"capacity must be > 0, got {self.capacity!r}")
        if self.series_terms < 1:
            raise BatteryModelError(f"series_terms must be >= 1, got {self.series_terms!r}")

    def model(self) -> RakhmatovVrudhulaModel:
        """Instantiate the analytical model for this specification."""
        return RakhmatovVrudhulaModel(beta=self.beta, series_terms=self.series_terms)

    @property
    def has_finite_capacity(self) -> bool:
        """True when a real capacity (not the "sufficiently large" default) was given."""
        return math.isfinite(self.capacity)


def battery_from_preset(name: str, capacity: float = math.inf) -> BatterySpec:
    """Build a :class:`BatterySpec` from one of the named beta presets."""
    try:
        beta = BETA_PRESETS[name]
    except KeyError:
        raise BatteryModelError(
            f"unknown battery preset {name!r}; choose from {sorted(BETA_PRESETS)}"
        ) from None
    return BatterySpec(beta=beta, capacity=capacity)
