"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by the library derive from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TaskGraphError",
    "CyclicGraphError",
    "UnknownTaskError",
    "DesignPointError",
    "ScheduleError",
    "PrecedenceViolationError",
    "DeadlineError",
    "InfeasibleDeadlineError",
    "BatteryModelError",
    "ProfileError",
    "AlgorithmError",
    "ConfigurationError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for all exceptions raised by the library."""


class TaskGraphError(ReproError):
    """A task graph is malformed or an operation on it is invalid."""


class CyclicGraphError(TaskGraphError):
    """The task graph contains a dependency cycle."""


class UnknownTaskError(TaskGraphError, KeyError):
    """A task name was referenced that does not exist in the graph."""

    def __str__(self) -> str:  # KeyError quotes its message; keep it readable.
        return Exception.__str__(self)


class DesignPointError(TaskGraphError):
    """A design point is malformed (non-positive time, negative current...)."""


class ScheduleError(ReproError):
    """A schedule or task sequence is invalid."""


class PrecedenceViolationError(ScheduleError):
    """A sequence orders a task before one of its predecessors."""


class DeadlineError(ScheduleError):
    """A schedule misses the task-graph deadline."""


class InfeasibleDeadlineError(DeadlineError):
    """No design-point assignment can meet the deadline.

    Raised by :func:`repro.core.windows.evaluate_windows` when even the
    fastest (highest-power) design points cannot finish before the deadline,
    mirroring the "Exit with error" branch of the paper's
    ``EvaluateWindows`` pseudocode.
    """


class BatteryModelError(ReproError):
    """A battery model received invalid parameters or inputs."""


class ProfileError(BatteryModelError):
    """A discharge profile is malformed (overlapping or negative intervals)."""


class AlgorithmError(ReproError):
    """An optimisation algorithm failed to produce a valid result."""


class ConfigurationError(ReproError):
    """Invalid configuration supplied to an algorithm or experiment."""


class SimulationError(ReproError):
    """The runtime simulator hit an inconsistent or unrecoverable state.

    Covers protocol violations (a scheduler assigning a non-ready or
    already-finished task, virtual time running backwards) as well as
    runs abandoned after a task exhausted its retry budget.
    """
