"""Voltage/frequency-scalable processor models.

The paper assumes that "performance and total power consumption estimates
for each design-point are available".  For processor-based platforms those
estimates come from a DVS (dynamic voltage and frequency scaling) model;
this module provides the standard first-order one so that users can derive
design points from a physical description of their processor instead of
typing current/duration tables by hand:

* the maximum stable clock frequency at supply voltage ``V`` follows the
  alpha-power law ``f(V) = k * (V - V_t)^alpha / V``;
* dynamic power is ``P_dyn = C_eff * V^2 * f`` and grows cubically with the
  voltage once frequency tracks it (this is exactly why the paper generates
  its design-point currents as the cube of the scaling factor);
* static/platform power (leakage, memory, display, radio) is a constant
  added on top, and is what limits how much slowing down can ever save;
* a task needing ``cycles`` clock cycles runs for ``cycles / f`` and draws
  ``(P_dyn + P_static) / V_supply`` of current from the battery rail.

The resulting :class:`~repro.taskgraph.DesignPoint` objects carry the
operating voltage, so energy computations automatically include it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence, Tuple

from ..errors import ConfigurationError, DesignPointError
from ..taskgraph import DesignPoint, Task

__all__ = ["OperatingPoint", "DvsProcessor"]


@dataclass(frozen=True)
class OperatingPoint:
    """One (voltage, frequency) pair a DVS processor can run at."""

    voltage: float
    """Supply voltage in volts."""

    frequency: float
    """Clock frequency in MHz at this voltage."""

    name: str = ""

    def __post_init__(self) -> None:
        if self.voltage <= 0 or not math.isfinite(self.voltage):
            raise DesignPointError(f"voltage must be finite and > 0, got {self.voltage!r}")
        if self.frequency <= 0 or not math.isfinite(self.frequency):
            raise DesignPointError(f"frequency must be finite and > 0, got {self.frequency!r}")


@dataclass(frozen=True)
class DvsProcessor:
    """A voltage/frequency-scalable processor plus its platform overheads.

    Attributes
    ----------
    effective_capacitance:
        Switched capacitance ``C_eff`` in nF; dynamic power is
        ``C_eff * V^2 * f`` (V in volts, f in MHz, power in mW).
    threshold_voltage:
        Transistor threshold ``V_t`` in volts, used by the alpha-power law.
    alpha:
        Velocity-saturation exponent of the alpha-power law (1.3-2.0 for
        modern processes; 2.0 reproduces the classic quadratic model).
    frequency_constant:
        ``k`` in ``f = k (V - V_t)^alpha / V`` (MHz·V^(1-alpha)); calibrate it
        so the fastest operating point hits the processor's rated frequency.
    static_power:
        Constant platform power in mW (leakage plus memory, display and other
        peripherals) drawn whenever a task executes — the paper's "total
        power consumption ... including the peripheral components".
    battery_voltage:
        Voltage of the battery rail the current is drawn from, in volts.
        Platform current (mA) = total power (mW) / battery voltage (V).
    """

    effective_capacitance: float = 1.0
    threshold_voltage: float = 0.4
    alpha: float = 2.0
    frequency_constant: float = 250.0
    static_power: float = 50.0
    battery_voltage: float = 3.7

    def __post_init__(self) -> None:
        if self.effective_capacitance <= 0:
            raise ConfigurationError("effective_capacitance must be > 0")
        if self.threshold_voltage < 0:
            raise ConfigurationError("threshold_voltage must be >= 0")
        if self.alpha < 1.0:
            raise ConfigurationError("alpha must be >= 1")
        if self.frequency_constant <= 0:
            raise ConfigurationError("frequency_constant must be > 0")
        if self.static_power < 0:
            raise ConfigurationError("static_power must be >= 0")
        if self.battery_voltage <= 0:
            raise ConfigurationError("battery_voltage must be > 0")

    # ------------------------------------------------------------------
    # physics
    # ------------------------------------------------------------------
    def max_frequency(self, voltage: float) -> float:
        """Alpha-power-law maximum frequency (MHz) at ``voltage`` volts."""
        if voltage <= self.threshold_voltage:
            raise DesignPointError(
                f"voltage {voltage:g} V is at or below the threshold voltage "
                f"{self.threshold_voltage:g} V"
            )
        return (
            self.frequency_constant
            * (voltage - self.threshold_voltage) ** self.alpha
            / voltage
        )

    def dynamic_power(self, voltage: float, frequency: float) -> float:
        """Dynamic power (mW) at the given operating point."""
        return self.effective_capacitance * voltage**2 * frequency

    def platform_current(self, voltage: float, frequency: float) -> float:
        """Total platform current (mA) drawn from the battery rail."""
        total_power = self.dynamic_power(voltage, frequency) + self.static_power
        return total_power / self.battery_voltage

    def operating_point(self, voltage: float, name: str = "") -> OperatingPoint:
        """The operating point running at the maximum frequency for ``voltage``."""
        return OperatingPoint(voltage=voltage, frequency=self.max_frequency(voltage), name=name)

    # ------------------------------------------------------------------
    # design-point synthesis
    # ------------------------------------------------------------------
    def design_points(
        self,
        cycles: float,
        voltages: Sequence[float],
        time_unit: float = 60.0,
    ) -> Tuple[DesignPoint, ...]:
        """Design points for a task of ``cycles`` mega-cycles across supply voltages.

        Parameters
        ----------
        cycles:
            Worst-case execution requirement in mega-cycles.
        voltages:
            Supply voltages to evaluate; they are sorted descending so that
            the result follows the paper's canonical "fastest first" order.
        time_unit:
            Seconds per schedule time unit (default 60, i.e. design-point
            execution times are expressed in minutes as in the paper).

        Returns
        -------
        tuple of :class:`DesignPoint`
            One per voltage, carrying the operating voltage in
            ``DesignPoint.voltage`` and the operating point in its metadata.
        """
        if cycles <= 0:
            raise DesignPointError("cycles must be > 0")
        if not voltages:
            raise ConfigurationError("at least one supply voltage is required")
        points = []
        for index, voltage in enumerate(sorted(voltages, reverse=True)):
            frequency = self.max_frequency(voltage)
            seconds = cycles / frequency  # mega-cycles / MHz = seconds
            execution_time = seconds / time_unit
            current = self.platform_current(voltage, frequency)
            points.append(
                DesignPoint(
                    execution_time=execution_time,
                    current=current,
                    voltage=voltage,
                    name=f"{voltage:g}V@{frequency:.0f}MHz",
                    metadata={"frequency_mhz": frequency, "mega_cycles": cycles},
                )
            )
        return tuple(points)

    def make_task(
        self,
        name: str,
        cycles: float,
        voltages: Sequence[float],
        time_unit: float = 60.0,
    ) -> Task:
        """Convenience wrapper building a :class:`Task` from a cycle count."""
        return Task(name, self.design_points(cycles, voltages, time_unit=time_unit))
