"""Platform models: where design-point estimates come from.

The paper takes per-design-point execution time and current as given inputs.
This subpackage provides the two standard ways of producing them — a
DVS-processor model (alpha-power frequency law, cubic dynamic power,
constant platform overhead) and an FPGA implementation-alternative model
(Amdahl-limited parallelism versus active-area power) — so that realistic
problem instances can be generated from physical platform descriptions.
"""

from .dvs import DvsProcessor, OperatingPoint
from .fpga import FpgaFabric

__all__ = ["DvsProcessor", "OperatingPoint", "FpgaFabric"]
