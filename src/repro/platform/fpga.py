"""FPGA implementation-alternative models.

On an FPGA-based platform (the paper's other target), the design points of a
task are distinct hardware implementations downloaded as bitstreams: a wide,
heavily parallel datapath finishes quickly but toggles a lot of logic, while
a narrow, resource-shared one takes longer at much lower power.  This module
captures that trade-off with a simple area/parallelism model so synthetic
FPGA-style platforms can be generated:

* an implementation with parallelism ``p`` (relative to the baseline
  ``p = 1``) finishes in ``base_time / speedup(p)`` where the speedup
  saturates according to Amdahl's law with a configurable serial fraction;
* its dynamic power grows essentially linearly with the active area
  (``p`` times the baseline) plus a static platform floor;
* a reconfiguration overhead (time and charge to load the bitstream) can be
  folded into each design point, which is how per-task bitstream switching
  costs enter the schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import ConfigurationError, DesignPointError
from ..taskgraph import DesignPoint, Task

__all__ = ["FpgaFabric"]


@dataclass(frozen=True)
class FpgaFabric:
    """A reconfigurable fabric and its power/performance scaling behaviour.

    Attributes
    ----------
    base_dynamic_power:
        Dynamic power (mW) of the ``parallelism = 1`` implementation.
    static_power:
        Platform power floor (mW): configuration SRAM, clock tree, memory,
        display — drawn regardless of the implementation choice.
    serial_fraction:
        Amdahl serial fraction of the task; limits how much extra
        parallelism can shorten the execution time.
    power_exponent:
        How dynamic power grows with parallelism (1.0 = linear in active
        area; values slightly above 1 model routing/clock overheads).
    battery_voltage:
        Battery rail voltage (V) used to convert power to current.
    reconfiguration_time:
        Time (in schedule time units) needed to load a bitstream before the
        task runs; added to every design point's execution time.
    reconfiguration_power:
        Power (mW) drawn while reconfiguring; folded into the design point's
        average current.
    """

    base_dynamic_power: float = 400.0
    static_power: float = 80.0
    serial_fraction: float = 0.1
    power_exponent: float = 1.05
    battery_voltage: float = 3.7
    reconfiguration_time: float = 0.0
    reconfiguration_power: float = 0.0

    def __post_init__(self) -> None:
        if self.base_dynamic_power <= 0:
            raise ConfigurationError("base_dynamic_power must be > 0")
        if self.static_power < 0:
            raise ConfigurationError("static_power must be >= 0")
        if not (0.0 <= self.serial_fraction < 1.0):
            raise ConfigurationError("serial_fraction must be in [0, 1)")
        if self.power_exponent < 1.0:
            raise ConfigurationError("power_exponent must be >= 1")
        if self.battery_voltage <= 0:
            raise ConfigurationError("battery_voltage must be > 0")
        if self.reconfiguration_time < 0 or self.reconfiguration_power < 0:
            raise ConfigurationError("reconfiguration overheads must be >= 0")

    # ------------------------------------------------------------------
    # scaling laws
    # ------------------------------------------------------------------
    def speedup(self, parallelism: float) -> float:
        """Amdahl's-law speedup of a ``parallelism``-wide implementation."""
        if parallelism < 1.0:
            raise DesignPointError("parallelism must be >= 1")
        return 1.0 / (self.serial_fraction + (1.0 - self.serial_fraction) / parallelism)

    def implementation_power(self, parallelism: float) -> float:
        """Total power (mW) of a ``parallelism``-wide implementation."""
        return (
            self.base_dynamic_power * parallelism**self.power_exponent
            + self.static_power
        )

    # ------------------------------------------------------------------
    # design-point synthesis
    # ------------------------------------------------------------------
    def design_points(
        self,
        base_time: float,
        parallelism_options: Sequence[float] = (8.0, 4.0, 2.0, 1.0),
    ) -> Tuple[DesignPoint, ...]:
        """Design points of a task whose ``parallelism = 1`` time is ``base_time``.

        Options are sorted by decreasing parallelism so the fastest (and most
        power-hungry) implementation comes first, matching the paper's column
        convention.  Each point's current averages the execution and
        reconfiguration phases.
        """
        if base_time <= 0:
            raise DesignPointError("base_time must be > 0")
        if not parallelism_options:
            raise ConfigurationError("at least one parallelism option is required")
        points = []
        for parallelism in sorted(parallelism_options, reverse=True):
            execution = base_time / self.speedup(parallelism)
            run_power = self.implementation_power(parallelism)
            total_time = execution + self.reconfiguration_time
            # Charge-weighted average power over (reconfigure + run).
            average_power = (
                run_power * execution
                + self.reconfiguration_power * self.reconfiguration_time
            ) / total_time
            current = average_power / self.battery_voltage
            points.append(
                DesignPoint(
                    execution_time=total_time,
                    current=current,
                    name=f"x{parallelism:g}",
                    metadata={"parallelism": parallelism, "run_power_mw": run_power},
                )
            )
        return tuple(points)

    def make_task(
        self,
        name: str,
        base_time: float,
        parallelism_options: Sequence[float] = (8.0, 4.0, 2.0, 1.0),
    ) -> Task:
        """Convenience wrapper building a :class:`Task` from a baseline runtime."""
        return Task(name, self.design_points(base_time, parallelism_options))
