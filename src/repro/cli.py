"""Command-line interface for the reproduction.

Examples
--------
Regenerate the paper's tables::

    python -m repro.cli table2
    python -m repro.cli table3
    python -m repro.cli table4

Regenerate the figure artefacts and the scaling check::

    python -m repro.cli figures

Schedule an arbitrary task graph stored as JSON::

    python -m repro.cli schedule my_graph.json --deadline 120 --beta 0.273

Run the extension experiments (optionally fanned out over worker processes
through the experiment engine, with a resumable result store)::

    python -m repro.cli ablation
    python -m repro.cli sweep --graph g3 --points 6
    python -m repro.cli sweep --jobs 4 --results-dir results
    python -m repro.cli sweep --jobs 4 --results-dir results --resume

Browse and run the scenario catalogue (DAG families x chemistries x
platforms x deadline tiers), and regenerate the docs pages from it::

    python -m repro.cli suite --list
    python -m repro.cli suite --run --jobs 4 --resume
    python -m repro.cli suite --run --scenarios g3 g3-kibam --algorithms iterative
    python -m repro.cli docs              # rewrite docs/scenarios.md
    python -m repro.cli docs --check      # fail if the committed page drifted

Run the information-mode robustness tournament (what online policies
believe about durations vs. what the simulator draws)::

    python -m repro.cli tournament --report       # full grid + docs/tournament.md
    python -m repro.cli tournament --smoke        # exact-mode conformance gate

Trace and profile a run (repro.obs), then inspect the trace::

    python -m repro.cli suite --run --trace suite.jsonl --metrics
    python -m repro.cli stats suite.jsonl
    python -m repro.cli stats suite.jsonl --chrome suite-chrome.json --check

Diff two traces (determinism/overhead evidence) and drive the benchmark
observatory (run/check `benchmarks/bench_*.py` against committed baselines,
appending every run to BENCH_history.jsonl)::

    python -m repro.cli obs diff serial.jsonl parallel.jsonl --strict
    python -m repro.cli bench --list
    python -m repro.cli bench --run --smoke --check
    python -m repro.cli bench --run --check --render-docs
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .analysis import gantt_chart
from .battery import BatterySpec
from .core import SchedulerConfig, battery_aware_schedule, refine_solution
from .engine import ResultStore, default_executor
from .experiments import (
    deadline_sweep,
    figure3_windows,
    figure4_walkthrough,
    figure5_g2_table,
    run_ablation,
    run_table2,
    run_table3,
    run_table4,
    scaling_regeneration_report,
    table1_g3_table,
)
from .scheduling import SchedulingProblem
from .taskgraph import build_g2, build_g3, load_json

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="batsched",
        description="Battery-aware task sequencing and design-point assignment (DATE 2005 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_engine_arguments(subparser: argparse.ArgumentParser) -> None:
        """Experiment-engine controls shared by the batch commands."""
        subparser.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes for the experiment engine (1 = in-process)")
        subparser.add_argument(
            "--resume", action="store_true",
            help="skip jobs whose results are already in the result store")
        subparser.add_argument(
            "--results-dir", default=None, metavar="DIR",
            help="directory for the append-only JSONL result store "
                 "(default: %(default)s; --resume alone implies .repro-results)")

    def add_seed_argument(subparser: argparse.ArgumentParser) -> None:
        """--seed for commands whose jobs can carry a seed parameter."""
        subparser.add_argument(
            "--seed", type=int, default=None, metavar="N",
            help="seed recorded in every engine job (stochastic algorithms "
                 "consume it; two same-seed runs are byte-identical)")

    def add_obs_arguments(subparser: argparse.ArgumentParser) -> None:
        """Observability controls (repro.obs) for the batch commands."""
        subparser.add_argument(
            "--trace", default=None, metavar="FILE",
            help="record a JSONL event trace of the run (summarize or export "
                 "it later with the stats subcommand)")
        subparser.add_argument(
            "--trace-sync", action="store_true",
            help="fsync the trace after every line so a crashed run leaves a "
                 "salvageable file (see stats --salvage); slower")
        subparser.add_argument(
            "--metrics", action="store_true",
            help="print the recorded counter/timing summary after the run")

    subparsers.add_parser("table2", help="reproduce Table 2 (sequences per iteration)")
    subparsers.add_parser("table3", help="reproduce Table 3 (sigma/Delta per window)")
    table4 = subparsers.add_parser("table4", help="reproduce Table 4 (comparison with the [1]-style baseline)")
    table4.add_argument("--no-paper", action="store_true", help="omit the published reference columns")
    add_engine_arguments(table4)
    subparsers.add_parser("figures", help="reproduce Figures 3-5 and the Table 1 scaling check")
    ablation = subparsers.add_parser("ablation", help="factor ablation over the Table 4 instances")
    add_engine_arguments(ablation)
    add_seed_argument(ablation)
    add_obs_arguments(ablation)

    sweep = subparsers.add_parser("sweep", help="deadline sweep of ours vs. baselines")
    sweep.add_argument("--graph", choices=("g2", "g3"), default="g3")
    sweep.add_argument("--points", type=int, default=6)
    add_engine_arguments(sweep)
    add_seed_argument(sweep)
    add_obs_arguments(sweep)

    suite = subparsers.add_parser(
        "suite", help="list or run the scenario catalogue (repro.scenarios)"
    )
    suite_mode = suite.add_mutually_exclusive_group()
    suite_mode.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="enumerate the catalogue without running anything (default)")
    suite_mode.add_argument(
        "--run", action="store_true", dest="run_suite",
        help="run the selected scenarios and print the grid + leaderboard")
    suite.add_argument(
        "--scenarios", nargs="+", default=None, metavar="NAME",
        help="restrict to these catalogue scenarios (default: all)")
    suite.add_argument(
        "--algorithms", nargs="+", default=None, metavar="ALGO",
        help="algorithms to run (default: iterative + deterministic baselines)")
    suite.add_argument(
        "--optimize", default="", metavar="PASSES",
        help="apply the sigma-preserving optimize passes (e.g. fuse or "
             "cull+fuse; see repro.taskgraph.optimize) to every selected "
             "scenario before scheduling — job keys grow the pass list, so "
             "optimized and plain results never collide in a store")
    suite.add_argument(
        "--dedupe", action="store_true",
        help="execute one representative per group of structurally-"
             "isomorphic jobs and translate its result to the rest")
    add_engine_arguments(suite)
    add_seed_argument(suite)
    add_obs_arguments(suite)

    simulate = subparsers.add_parser(
        "simulate",
        help="event-driven runtime simulation of policies under uncertainty",
    )
    simulate.add_argument(
        "--scenarios", nargs="+", default=None, metavar="NAME",
        help="catalogue scenarios to simulate (default: the stochastic tier)")
    simulate.add_argument(
        "--policies", nargs="+", default=None, metavar="POLICY",
        help="simulation policies (default: static-replay + the online "
             "schedulers; see repro.sim.policy_names())")
    simulate.add_argument(
        "--replications", type=int, default=3, metavar="N",
        help="seeded perturbation replications per scenario/policy cell "
             "(default: %(default)s)")
    simulate.add_argument(
        "--no-batch", action="store_true",
        help="run replications one job at a time instead of batching each "
             "cell into lockstep simulator lanes (results are bit-identical "
             "either way)")
    add_engine_arguments(simulate)
    add_seed_argument(simulate)
    add_obs_arguments(simulate)

    tournament = subparsers.add_parser(
        "tournament",
        help="information-mode robustness tournament over the tour-* grid",
    )
    tournament.add_argument(
        "--scenarios", nargs="+", default=None, metavar="NAME",
        help="catalogue scenarios to enter (default: the whole tour-* grid)")
    tournament.add_argument(
        "--policies", nargs="+", default=None, metavar="POLICY",
        help="simulation policies (default: static-replay + the online "
             "schedulers)")
    tournament.add_argument(
        "--replications", type=int, default=3, metavar="N",
        help="seeded perturbation replications per scenario/policy cell "
             "(default: %(default)s)")
    tournament.add_argument(
        "--no-batch", action="store_true",
        help="run replications one job at a time instead of batching each "
             "cell into lockstep simulator lanes (results are bit-identical "
             "either way)")
    tournament.add_argument(
        "--smoke", action="store_true",
        help="conformance gate instead of a full run: simulate the "
             "exact-mode control cells scalar, batched and with the "
             "information-mode plumbing bypassed, and fail unless all "
             "three agree bitwise (ignores the engine/store flags)")
    tournament.add_argument(
        "--report", nargs="?", const="docs/tournament.md", default=None,
        metavar="FILE",
        help="also write the markdown tournament report "
             "(default target: %(const)s)")
    add_engine_arguments(tournament)
    add_seed_argument(tournament)
    add_obs_arguments(tournament)

    optimize = subparsers.add_parser(
        "optimize",
        help="apply task-graph rewrite passes (cull/fuse) to a graph "
             "and report what they changed",
    )
    optimize_source = optimize.add_mutually_exclusive_group(required=True)
    optimize_source.add_argument(
        "--graph", metavar="FILE",
        help="task-graph JSON file (see repro.taskgraph.io)")
    optimize_source.add_argument(
        "--scenario", metavar="NAME",
        help="catalogue scenario whose graph to build and optimize")
    optimize.add_argument(
        "--passes", default="cull+fuse", metavar="PASSES",
        help="pass list to apply, in order (default: %(default)s)")
    optimize.add_argument(
        "--sinks", nargs="+", default=None, metavar="TASK",
        help="sinks the cull pass keeps (default: every exit task)")
    optimize.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the optimized graph as JSON")
    optimize.add_argument(
        "--dot", default=None, metavar="FILE",
        help="write the optimized graph as Graphviz DOT")

    docs = subparsers.add_parser(
        "docs", help="regenerate docs/scenarios.md from the scenario registry"
    )
    docs.add_argument(
        "--check", action="store_true",
        help="verify the committed page matches the registry instead of writing")
    docs.add_argument(
        "--out", default="docs", metavar="DIR",
        help="docs directory to write to / check against (default: %(default)s)")

    stats = subparsers.add_parser(
        "stats", help="summarize or export a JSONL trace recorded with --trace"
    )
    stats.add_argument("trace_file", metavar="TRACE",
                       help="path to a JSONL trace written by --trace")
    stats.add_argument(
        "--chrome", default=None, metavar="FILE",
        help="also export the trace as Chrome-trace/Perfetto JSON "
             "(open in chrome://tracing or ui.perfetto.dev)")
    stats.add_argument(
        "--check", action="store_true",
        help="validate the trace file against the event schema "
             "(nonzero exit on any malformed line)")
    stats.add_argument(
        "--salvage", action="store_true",
        help="tolerate a truncated/corrupt tail (e.g. from a crashed run): "
             "summarize everything up to the first bad line")

    bench = subparsers.add_parser(
        "bench",
        help="the benchmark observatory: run/check the registered "
             "benchmarks/bench_*.py drivers against committed baselines",
    )
    bench.add_argument(
        "--list", action="store_true", dest="list_benches",
        help="enumerate the registered benches and their gated metrics")
    bench.add_argument(
        "--run", action="store_true", dest="run_benches",
        help="run the selected benches (fresh reports go to --reports-dir; "
             "every run is appended to the history file)")
    bench.add_argument(
        "--smoke", action="store_true",
        help="smoke mode: small workloads, driver-internal gates only "
             "(fresh reports are not numerically compared to full baselines)")
    bench.add_argument(
        "--check", action="store_true",
        help="gate the reports in --reports-dir against the committed "
             "BENCH_*.json baselines; nonzero exit on any regression")
    bench.add_argument(
        "--only", nargs="+", default=None, metavar="NAME",
        help="restrict to these registered benches (default: all)")
    bench.add_argument(
        "--history", default=None, metavar="FILE",
        help="observatory history file (default: BENCH_history.jsonl at the "
             "repo root)")
    bench.add_argument(
        "--reports-dir", default=None, metavar="DIR",
        help="where fresh reports are written/read (default: the repo root "
             "for --check alone; <root>/reports when running without "
             "--update-baselines)")
    bench.add_argument(
        "--update-baselines", action="store_true",
        help="write fresh full-mode reports over the committed BENCH_*.json "
             "baselines")
    bench.add_argument(
        "--render-docs", nargs="?", const="docs/benchmarks.md", default=None,
        metavar="FILE",
        help="render the history as the benchmark-trajectory page "
             "(default target: %(const)s)")

    obs = subparsers.add_parser(
        "obs", help="trace tooling beyond stats (currently: diff)"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_diff = obs_sub.add_parser(
        "diff", help="compare two JSONL traces: counter drift, histogram "
                     "shifts, span aggregates")
    obs_diff.add_argument("trace_a", metavar="A", help="baseline trace")
    obs_diff.add_argument("trace_b", metavar="B", help="candidate trace")
    obs_diff.add_argument(
        "--all", action="store_true", dest="show_all",
        help="show unchanged counters/histograms too")
    obs_diff.add_argument(
        "--strict", action="store_true",
        help="exit nonzero when any deterministic (non-rt.) counter drifts")
    obs_diff.add_argument(
        "--salvage", action="store_true",
        help="tolerate truncated/corrupt trace tails on either side")

    schedule = subparsers.add_parser("schedule", help="schedule a task graph stored as JSON")
    schedule.add_argument("graph", help="path to a task-graph JSON file (see repro.taskgraph.io)")
    schedule.add_argument("--deadline", type=float, required=True)
    schedule.add_argument("--beta", type=float, default=0.273)
    schedule.add_argument("--json", action="store_true", help="emit the solution as JSON")
    schedule.add_argument("--refine", action="store_true",
                          help="polish the result with the local-search refinement pass")
    schedule.add_argument("--gantt", action="store_true",
                          help="also print an ASCII Gantt chart of the schedule")

    return parser


def _tournament_smoke(args: argparse.Namespace, out: List[str]) -> int:
    """The exact-mode conformance gate behind ``tournament --smoke``.

    Three runs of the tournament grid's exact-mode control cells must
    agree **bitwise**: the scalar engine path, the lockstep batched path,
    and — per replication-0 cell — a direct simulator run with the
    information-mode plumbing bypassed entirely (no ``imode`` argument).
    Any divergence means the imode layer perturbed the conformance
    anchor, and the command exits nonzero for CI.
    """
    from .experiments import run_tournament
    from .scenarios import default_registry
    from .sim import Simulator, make_policy, rng_for_seed

    registry = default_registry()
    exact_names = [
        name for name in registry.names()
        if name.startswith("tour-") and name.endswith("-exact")
    ]
    seed = args.seed if getattr(args, "seed", None) is not None else 0
    replications = min(args.replications, 2)
    scalar = run_tournament(
        scenarios=exact_names, policies=args.policies,
        replications=replications, seed=seed, batch=False,
    )
    batched = run_tournament(
        scenarios=exact_names, policies=args.policies,
        replications=replications, seed=seed, batch="auto",
    )
    def _deterministic(record) -> dict:
        # Everything that is a pure function of the job: drop wall-clock
        # timing and tracebacks, keep every simulated quantity bitwise.
        row = record.to_dict()
        row.pop("elapsed_s", None)
        row.pop("traceback", None)
        return row

    scalar_rows = [_deterministic(record) for record in scalar.run.records]
    batched_rows = [_deterministic(record) for record in batched.run.records]
    if scalar_rows != batched_rows:
        diverged = sum(1 for a, b in zip(scalar_rows, batched_rows) if a != b)
        print(
            f"tournament smoke FAILED: {diverged} of {len(scalar_rows)} "
            "exact-mode records differ between the scalar and batched paths",
            file=sys.stderr,
        )
        return 1
    mismatches = 0
    checked = 0
    for job, record in zip(batched.run.jobs, batched.run.records):
        if job.replication != 0 or not record.ok:
            continue
        checked += 1
        problem = job.spec.build_problem()
        bare = Simulator(
            problem,
            make_policy(job.policy, problem, job.params),
            perturbation=job.spec.perturbation(),
            rng=rng_for_seed(job.seed, job.replication),
            evaluate_at=job.evaluate_at,
        ).run()
        if bare.cost != record.cost or bare.makespan != record.makespan:
            mismatches += 1
            print(
                f"tournament smoke FAILED: {job.label} diverges from the "
                f"imode-free simulator (cost {record.cost!r} vs "
                f"{bare.cost!r})",
                file=sys.stderr,
            )
    if mismatches:
        return 1
    out.append(
        f"tournament smoke OK: {len(scalar_rows)} exact-mode records "
        f"bitwise-equal scalar vs. batched; {checked} cells bitwise-equal "
        "to the imode-free simulator"
    )
    return 0


def _engine_options(args: argparse.Namespace, record_type=None) -> dict:
    """Executor/store/resume keyword arguments from the engine CLI flags."""
    results_dir = args.results_dir
    if results_dir is None and args.resume:
        results_dir = ".repro-results"
    store = None
    if results_dir is not None:
        path = Path(results_dir) / f"{args.command}.jsonl"
        store = (
            ResultStore(path, record_type=record_type)
            if record_type is not None
            else ResultStore(path)
        )
    options = {
        "executor": default_executor(args.jobs),
        "store": store,
        "resume": args.resume,
    }
    if getattr(args, "seed", None) is not None:
        options["seed"] = args.seed
    return options


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    ``--trace``/``--metrics`` wrap the whole command in a
    :func:`repro.obs.recording` session: spans and counters stream to the
    JSONL sink while the run itself stays byte-identical (instrumentation
    never reaches job keys or result stores).
    """
    args = build_parser().parse_args(argv)
    out: List[str] = []

    trace_path = getattr(args, "trace", None)
    show_metrics = bool(getattr(args, "metrics", False))
    session = None
    if trace_path is not None or show_metrics:
        from .obs import recording

        session = recording(
            trace=trace_path, fsync=bool(getattr(args, "trace_sync", False))
        )
        session.__enter__()
    try:
        code = _dispatch(args, out)
    except BaseException:
        if session is not None:
            session.__exit__(*sys.exc_info())
        raise
    if session is not None:
        from .obs import RECORDER

        if show_metrics and code == 0:
            out.append("")
            out.extend(RECORDER.summary_lines())
        session.__exit__(None, None, None)
        if trace_path is not None and code == 0:
            out.append(f"wrote trace {trace_path}")
    if code != 0:
        return code
    print("\n".join(out))
    return 0


def _dispatch(args: argparse.Namespace, out: List[str]) -> int:
    """Run one parsed command, appending its report lines to ``out``."""
    if args.command == "table2":
        out.append(run_table2().to_table().to_text())
    elif args.command == "table3":
        out.append(run_table3().to_table().to_text())
    elif args.command == "table4":
        result = run_table4(**_engine_options(args))
        out.append(result.to_table(include_paper=not args.no_paper).to_text())
    elif args.command == "figures":
        out.append(figure3_windows().to_text())
        out.append("")
        walkthrough = figure4_walkthrough()
        out.append(walkthrough.to_table().to_text())
        out.append(walkthrough.summary())
        out.append("")
        out.append(figure5_g2_table().to_text())
        out.append("")
        out.append(table1_g3_table().to_text())
        out.append("")
        out.append(scaling_regeneration_report().to_text())
    elif args.command == "ablation":
        result = run_ablation(**_engine_options(args))
        out.append(result.to_table().to_text())
        out.append("")
        out.append("mean cost change when dropping each factor (%):")
        for factor, change in result.mean_degradation().items():
            out.append(f"  {factor}: {change:+.2f}")
    elif args.command == "sweep":
        graph = build_g3() if args.graph == "g3" else build_g2()
        sweep_result = deadline_sweep(
            graph, num_points=args.points, **_engine_options(args)
        )
        out.append(sweep_result.to_table().to_text())
    elif args.command == "suite":
        from .experiments import run_suite
        from .scenarios import catalogue_table, default_registry

        if args.run_suite:
            suite_result = run_suite(
                scenarios=args.scenarios,
                algorithms=args.algorithms,
                optimize=args.optimize,
                dedupe=args.dedupe,
                **_engine_options(args),
            )
            out.append(suite_result.to_table().to_text())
            out.append("")
            out.append(suite_result.leaderboard_table().to_text())
            out.append("")
            out.append(suite_result.summary())
        else:
            registry = default_registry()
            if args.scenarios is not None:
                registry_view = registry.select(names=args.scenarios)
                from .scenarios import ScenarioRegistry

                registry = ScenarioRegistry(registry_view)
            out.append(catalogue_table(registry).to_text())
            out.append("")
            out.append(
                f"{len(registry)} scenarios, "
                f"{len(registry.families())} DAG families, "
                f"{len(registry.chemistries())} chemistries, "
                f"{len(registry.platforms())} platform models"
            )
    elif args.command == "simulate":
        from .engine import SimulationRecord
        from .experiments import run_simulation_suite

        options = _engine_options(args, record_type=SimulationRecord)
        seed = options.pop("seed", 0)
        simulation = run_simulation_suite(
            scenarios=args.scenarios,
            policies=args.policies,
            replications=args.replications,
            seed=seed,
            batch=False if args.no_batch else "auto",
            **options,
        )
        out.append(simulation.robustness_table().to_text())
        out.append("")
        out.append(simulation.leaderboard_table().to_text())
        out.append("")
        out.append(simulation.summary())
    elif args.command == "tournament":
        from .engine import SimulationRecord
        from .experiments import run_tournament, tournament_markdown

        if args.smoke:
            return _tournament_smoke(args, out)
        options = _engine_options(args, record_type=SimulationRecord)
        seed = options.pop("seed", 0)
        tournament_result = run_tournament(
            scenarios=args.scenarios,
            policies=args.policies,
            replications=args.replications,
            seed=seed,
            batch=False if args.no_batch else "auto",
            **options,
        )
        out.append(tournament_result.standings_table().to_text())
        out.append("")
        out.append(tournament_result.summary())
        if args.report:
            target = Path(args.report)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(
                tournament_markdown(tournament_result), encoding="utf-8"
            )
            out.append(f"wrote {target}")
    elif args.command == "optimize":
        from .taskgraph import graph_signature, optimize_graph, parse_passes
        from .taskgraph.io import save_json, to_dot

        if args.scenario:
            from .scenarios import default_registry

            graph = default_registry().get(args.scenario).build_graph()
        else:
            graph = load_json(args.graph)
        result = optimize_graph(graph, parse_passes(args.passes), sinks=args.sinks)
        optimized = result.graph
        out.append(
            f"passes {'+'.join(result.passes) or '(none)'}: "
            f"{graph.num_tasks} tasks / {graph.num_edges} edges -> "
            f"{optimized.num_tasks} tasks / {optimized.num_edges} edges"
        )
        if result.removed:
            out.append(f"culled {len(result.removed)}: {', '.join(result.removed)}")
        for compound, members in result.chains.items():
            out.append(f"fused {compound} <- {', '.join(members)}")
        out.append(f"signature before: {graph_signature(graph)}")
        out.append(f"signature after:  {graph_signature(optimized)}")
        if args.out:
            save_json(optimized, args.out)
            out.append(f"wrote {args.out}")
        if args.dot:
            Path(args.dot).write_text(to_dot(optimized), encoding="utf-8")
            out.append(f"wrote {args.dot}")
    elif args.command == "docs":
        from .scenarios import catalogue_markdown, leaderboard_markdown

        pages = {
            Path(args.out) / "scenarios.md": catalogue_markdown(),
            Path(args.out) / "leaderboard.md": leaderboard_markdown(),
        }
        if args.check:
            for target, page in pages.items():
                if not target.exists():
                    print(f"docs check FAILED: {target} does not exist "
                          "(run `python -m repro.cli docs`)", file=sys.stderr)
                    return 1
                if target.read_text(encoding="utf-8") != page:
                    print(f"docs check FAILED: {target} has drifted from the "
                          "scenario registry (run `python -m repro.cli docs`)",
                          file=sys.stderr)
                    return 1
                out.append(f"docs check OK: {target} matches the registry")
        else:
            for target, page in pages.items():
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_text(page, encoding="utf-8")
                out.append(f"wrote {target}")
    elif args.command == "stats":
        from .obs import report

        if args.check:
            problems = report.validate_trace(args.trace_file)
            if problems:
                for problem in problems:
                    print(f"trace check FAILED: {problem}", file=sys.stderr)
                return 1
            out.append(f"trace check OK: {args.trace_file}")
        trace = report.load_trace(args.trace_file, salvage=args.salvage)
        if args.chrome:
            report.write_chrome_trace(trace, args.chrome)
            out.append(f"wrote {args.chrome}")
        out.extend(report.trace_summary_lines(trace))
    elif args.command == "bench":
        from .obs import bench as obs_bench

        if args.list_benches or not (args.run_benches or args.check
                                     or args.render_docs):
            for spec in obs_bench.REGISTRY:
                out.append(f"{spec.name:<8} {spec.description}")
                out.append(f"{'':<8} script {spec.script}  baseline {spec.report}")
                for gate in spec.gates:
                    direction = "higher" if gate.higher_is_better else "lower"
                    out.append(
                        f"{'':<8} gate {gate.path} ({direction} is better, "
                        f"tolerance -{gate.threshold:.0%})"
                    )
            return 0
        return obs_bench.run_observatory(
            names=args.only,
            smoke=args.smoke,
            run=args.run_benches,
            check=args.check,
            history=args.history,
            reports_dir=args.reports_dir,
            update_baselines=args.update_baselines,
            render_docs=args.render_docs,
        )
    elif args.command == "obs":
        from .obs import report
        from .obs.diff import diff_summary_lines, diff_traces

        trace_a = report.load_trace(args.trace_a, salvage=args.salvage)
        trace_b = report.load_trace(args.trace_b, salvage=args.salvage)
        diff = diff_traces(
            trace_a, trace_b, a_label=args.trace_a, b_label=args.trace_b
        )
        out.extend(diff_summary_lines(diff, changed_only=not args.show_all))
        if args.strict and not diff.deterministic_match:
            print(
                f"obs diff FAILED: {len(diff.drift)} deterministic counter(s) "
                "drifted between the two traces",
                file=sys.stderr,
            )
            return 1
    elif args.command == "schedule":
        graph = load_json(args.graph)
        problem = SchedulingProblem(
            graph=graph, deadline=args.deadline, battery=BatterySpec(beta=args.beta)
        )
        solution = battery_aware_schedule(problem, config=SchedulerConfig())
        if args.refine:
            solution = refine_solution(problem, solution)
        if args.json:
            out.append(json.dumps(solution.to_dict(), indent=2))
        else:
            out.append(solution.summary())
            out.append("sequence: " + ",".join(solution.sequence))
            out.append("design points: " + ",".join(solution.design_point_labels()))
            if args.gantt:
                out.append("")
                out.append(gantt_chart(solution.schedule(), deadline=problem.deadline))
    else:  # pragma: no cover - argparse enforces the choices
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
