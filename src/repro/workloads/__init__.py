"""Synthetic workload generation: graph shapes, design-point synthesis, suites."""

from .generators import (
    chain_graph,
    crossbar_graph,
    diamond_graph,
    erdos_graph,
    fft_graph,
    fork_join_graph,
    gaussian_elimination_graph,
    layered_graph,
    map_reduce_graph,
    replicated_graph,
    series_parallel_graph,
    tree_graph,
)
from .suite import SuiteEntry, problem_with_tightness, standard_suite, suite_problems
from .synthesis import DesignPointSynthesis, default_synthesis

__all__ = [
    "chain_graph",
    "fork_join_graph",
    "layered_graph",
    "crossbar_graph",
    "map_reduce_graph",
    "series_parallel_graph",
    "erdos_graph",
    "tree_graph",
    "diamond_graph",
    "fft_graph",
    "gaussian_elimination_graph",
    "replicated_graph",
    "DesignPointSynthesis",
    "default_synthesis",
    "SuiteEntry",
    "standard_suite",
    "suite_problems",
    "problem_with_tightness",
]
