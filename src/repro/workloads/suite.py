"""A named suite of benchmark problem instances.

The sweep and ablation experiments need a stable, reproducible collection of
problems spanning graph shapes and deadline tightness.  Each suite entry
wraps a generated (or paper) task graph into a
:class:`~repro.scheduling.SchedulingProblem` whose deadline is expressed as a
*tightness* fraction between the all-fastest and all-slowest makespans, so
"0.3" always means a fairly tight deadline regardless of the graph's size.

Since the scenario catalogue landed, this module is a thin view over
:mod:`repro.scenarios`: the suite's workloads are the catalogue's *core*
block (:data:`repro.scenarios.CORE_SCENARIOS`), built through their
:class:`~repro.scenarios.ScenarioSpec` entries.  The names and problem
construction are unchanged from the hand-rolled original, and the graphs
are identical with one deliberate exception: ``layered-4x3`` gained edges
from the generator connectivity bugfix (its seed-31 graph used to leave a
middle-layer task with no path to the final layer), so its sigma/makespan
numbers are not comparable to pre-fix runs.  For the full catalogue —
more families, battery chemistries, platform models and tightness tiers —
use ``repro.scenarios`` / ``repro.experiments.run_suite`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple

from ..battery import BatterySpec
from ..errors import ConfigurationError
from ..scheduling import SchedulingProblem
from ..taskgraph import TaskGraph

__all__ = ["SuiteEntry", "problem_with_tightness", "standard_suite", "suite_problems"]


@dataclass(frozen=True)
class SuiteEntry:
    """One named workload in the benchmark suite."""

    name: str
    build: Callable[[], TaskGraph]
    description: str


def problem_with_tightness(
    graph: TaskGraph,
    tightness: float,
    battery: Optional[BatterySpec] = None,
    name: str = "",
) -> SchedulingProblem:
    """Wrap a graph into a problem whose deadline sits at ``tightness`` in [0, 1].

    ``tightness = 0`` places the deadline exactly at the all-fastest
    makespan (no slack); ``tightness = 1`` at the all-slowest makespan
    (every task can run at its lowest power).  Values slightly above 0 are
    the interesting regime for the algorithm.
    """
    if not (0.0 <= tightness <= 1.0):
        raise ConfigurationError(f"tightness must be within [0, 1], got {tightness!r}")
    lo = graph.min_makespan()
    hi = graph.max_makespan()
    deadline = lo + tightness * (hi - lo)
    if deadline <= 0:
        raise ConfigurationError("graph produces a non-positive deadline")
    return SchedulingProblem(
        graph=graph,
        deadline=deadline,
        battery=battery or BatterySpec(),
        name=name or f"{graph.name}@{tightness:.2f}",
    )


def standard_suite() -> Tuple[SuiteEntry, ...]:
    """The named workloads used by the sweep/ablation experiments and tests.

    A view over the scenario catalogue's core block: one entry per name in
    :data:`repro.scenarios.CORE_SCENARIOS`, building the graph through the
    registered :class:`~repro.scenarios.ScenarioSpec`.  (Imported lazily:
    ``repro.scenarios`` itself builds graphs through this package's
    generators.)
    """
    from ..scenarios import CORE_SCENARIOS, default_registry

    registry = default_registry()
    return tuple(
        SuiteEntry(
            name=spec.name,
            build=spec.build_graph,
            description=spec.description,
        )
        for spec in (registry.get(name) for name in CORE_SCENARIOS)
    )


def suite_problems(
    tightness_levels: Iterable[float] = (0.3, 0.6, 0.9),
    battery: Optional[BatterySpec] = None,
    names: Optional[Iterable[str]] = None,
) -> List[SchedulingProblem]:
    """Instantiate the standard suite across deadline tightness levels."""
    wanted = set(names) if names is not None else None
    problems: List[SchedulingProblem] = []
    for entry in standard_suite():
        if wanted is not None and entry.name not in wanted:
            continue
        graph = entry.build()
        for tightness in tightness_levels:
            problems.append(
                problem_with_tightness(
                    graph,
                    tightness,
                    battery=battery,
                    name=f"{entry.name}@{tightness:.2f}",
                )
            )
    return problems
