"""A named suite of benchmark problem instances.

The sweep and ablation experiments need a stable, reproducible collection of
problems spanning graph shapes and deadline tightness.  Each suite entry
wraps a generated (or paper) task graph into a
:class:`~repro.scheduling.SchedulingProblem` whose deadline is expressed as a
*tightness* fraction between the all-fastest and all-slowest makespans, so
"0.3" always means a fairly tight deadline regardless of the graph's size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..battery import BatterySpec
from ..errors import ConfigurationError
from ..scheduling import SchedulingProblem
from ..taskgraph import TaskGraph, build_g2, build_g3
from .generators import (
    chain_graph,
    diamond_graph,
    fork_join_graph,
    layered_graph,
    tree_graph,
)

__all__ = ["SuiteEntry", "problem_with_tightness", "standard_suite", "suite_problems"]


@dataclass(frozen=True)
class SuiteEntry:
    """One named workload in the benchmark suite."""

    name: str
    build: Callable[[], TaskGraph]
    description: str


def problem_with_tightness(
    graph: TaskGraph,
    tightness: float,
    battery: Optional[BatterySpec] = None,
    name: str = "",
) -> SchedulingProblem:
    """Wrap a graph into a problem whose deadline sits at ``tightness`` in [0, 1].

    ``tightness = 0`` places the deadline exactly at the all-fastest
    makespan (no slack); ``tightness = 1`` at the all-slowest makespan
    (every task can run at its lowest power).  Values slightly above 0 are
    the interesting regime for the algorithm.
    """
    if not (0.0 <= tightness <= 1.0):
        raise ConfigurationError(f"tightness must be within [0, 1], got {tightness!r}")
    lo = graph.min_makespan()
    hi = graph.max_makespan()
    deadline = lo + tightness * (hi - lo)
    if deadline <= 0:
        raise ConfigurationError("graph produces a non-positive deadline")
    return SchedulingProblem(
        graph=graph,
        deadline=deadline,
        battery=battery or BatterySpec(),
        name=name or f"{graph.name}@{tightness:.2f}",
    )


def standard_suite() -> Tuple[SuiteEntry, ...]:
    """The named workloads used by the sweep/ablation experiments and tests."""
    return (
        SuiteEntry("g2", build_g2, "paper Figure 5: robotic-arm controller (9 tasks, 4 DPs)"),
        SuiteEntry("g3", build_g3, "paper Table 1: fork-join example (15 tasks, 5 DPs)"),
        SuiteEntry(
            "chain-10",
            lambda: chain_graph(10, seed=11, name="chain-10"),
            "10-task pipeline",
        ),
        SuiteEntry(
            "fork-join-2x4",
            lambda: fork_join_graph(2, 4, seed=21, name="fork-join-2x4"),
            "two fork-join stages with four branches",
        ),
        SuiteEntry(
            "layered-4x3",
            lambda: layered_graph(4, 3, 0.5, seed=31, name="layered-4x3"),
            "random layered DAG, 4 layers of 3 tasks",
        ),
        SuiteEntry(
            "tree-out-3x2",
            lambda: tree_graph(3, 2, "out", seed=41, name="tree-out-3x2"),
            "binary out-tree of depth 3",
        ),
        SuiteEntry(
            "tree-in-3x2",
            lambda: tree_graph(3, 2, "in", seed=43, name="tree-in-3x2"),
            "binary in-tree of depth 3",
        ),
        SuiteEntry(
            "diamond-3",
            lambda: diamond_graph(3, seed=51, name="diamond-3"),
            "3x3 wavefront grid",
        ),
    )


def suite_problems(
    tightness_levels: Iterable[float] = (0.3, 0.6, 0.9),
    battery: Optional[BatterySpec] = None,
    names: Optional[Iterable[str]] = None,
) -> List[SchedulingProblem]:
    """Instantiate the standard suite across deadline tightness levels."""
    wanted = set(names) if names is not None else None
    problems: List[SchedulingProblem] = []
    for entry in standard_suite():
        if wanted is not None and entry.name not in wanted:
            continue
        graph = entry.build()
        for tightness in tightness_levels:
            problems.append(
                problem_with_tightness(
                    graph,
                    tightness,
                    battery=battery,
                    name=f"{entry.name}@{tightness:.2f}",
                )
            )
    return problems
