"""Synthetic task-graph generators.

The paper tested its algorithm "using different task-graphs and
design-points" and singles out the fork-join family as representative of
common parallel algorithm structure.  The generators here cover that family
and the other standard shapes used in task-scheduling literature (several
following the estee benchmark-generator families):

* :func:`chain_graph` — a single pipeline (the degenerate sequence case);
* :func:`fork_join_graph` — a source fans out into parallel branches that
  re-converge, repeated over stages (the shape of the paper's G3);
* :func:`layered_graph` — random layered DAGs with configurable width and
  inter-layer edge density;
* :func:`crossbar_graph` — layered DAGs with *complete* inter-layer wiring;
* :func:`map_reduce_graph` — scatter / map / all-to-all reduce / gather;
* :func:`series_parallel_graph` — random series-parallel compositions;
* :func:`erdos_graph` — Erdős–Rényi-style random DAGs over an order;
* :func:`tree_graph` — out-trees (divide) and in-trees (conquer);
* :func:`diamond_graph` — a grid of diamond dependencies;
* :func:`replicated_graph` — several copies of a base graph chained in
  series (used for scaled variants of the paper's G2/G3).

All generators are deterministic for a given ``seed``, produce power-
monotone design points via :class:`~repro.workloads.DesignPointSynthesis`
(or any object with the same ``make_task(name, rng)`` interface, e.g. the
platform syntheses in :mod:`repro.scenarios`), and validate their output at
construction: acyclicity via :meth:`~repro.taskgraph.TaskGraph.validate`
plus sink connectivity via
:func:`~repro.taskgraph.validation.require_connected_sinks` against the
family's intended sink set.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from ..errors import ConfigurationError
from ..taskgraph import Task, TaskGraph, require_connected_sinks
from .synthesis import DesignPointSynthesis, default_synthesis

__all__ = [
    "chain_graph",
    "fork_join_graph",
    "layered_graph",
    "crossbar_graph",
    "map_reduce_graph",
    "series_parallel_graph",
    "erdos_graph",
    "tree_graph",
    "diamond_graph",
    "fft_graph",
    "gaussian_elimination_graph",
    "replicated_graph",
]


def _make_graph(name: str, synthesis, seed: int):
    synthesis = synthesis or default_synthesis()
    rng = random.Random(seed)
    graph = TaskGraph(name=name)
    return graph, synthesis, rng


def _validated(graph: TaskGraph, sinks: Sequence[str]) -> TaskGraph:
    """Run the construction-time checks every generator promises.

    ``graph.validate()`` catches structural defects (cycles, dangling
    edges); ``require_connected_sinks`` catches the subtler generator bug
    of emitting a task with no path to the family's intended sink(s).
    """
    graph.validate()
    require_connected_sinks(graph, sinks)
    return graph


def chain_graph(
    num_tasks: int,
    synthesis: Optional[DesignPointSynthesis] = None,
    seed: int = 0,
    name: str = "chain",
) -> TaskGraph:
    """A linear pipeline ``T1 -> T2 -> ... -> Tn``."""
    if num_tasks < 1:
        raise ConfigurationError("num_tasks must be >= 1")
    graph, synthesis, rng = _make_graph(name, synthesis, seed)
    previous = None
    for index in range(1, num_tasks + 1):
        task = graph.add_task(synthesis.make_task(f"T{index}", rng))
        if previous is not None:
            graph.add_edge(previous.name, task.name)
        previous = task
    return _validated(graph, [previous.name])


def fork_join_graph(
    num_stages: int = 2,
    branches_per_stage: int = 4,
    synthesis: Optional[DesignPointSynthesis] = None,
    seed: int = 0,
    name: str = "fork-join",
) -> TaskGraph:
    """Repeated fork-join stages: fork task -> parallel branches -> join task.

    Stage ``s`` consists of a fork node, ``branches_per_stage`` independent
    branch nodes and a join node that also serves as the next stage's fork.
    With one stage and four branches the shape matches the first half of the
    paper's G3.
    """
    if num_stages < 1 or branches_per_stage < 1:
        raise ConfigurationError("num_stages and branches_per_stage must be >= 1")
    graph, synthesis, rng = _make_graph(name, synthesis, seed)
    counter = 1

    def new_task() -> str:
        nonlocal counter
        task = graph.add_task(synthesis.make_task(f"T{counter}", rng))
        counter += 1
        return task.name

    fork = new_task()
    for _ in range(num_stages):
        branch_names = [new_task() for _ in range(branches_per_stage)]
        join = new_task()
        for branch in branch_names:
            graph.add_edge(fork, branch)
            graph.add_edge(branch, join)
        fork = join
    return _validated(graph, [fork])


def layered_graph(
    num_layers: int = 4,
    layer_width: int = 3,
    edge_probability: float = 0.5,
    synthesis: Optional[DesignPointSynthesis] = None,
    seed: int = 0,
    name: str = "layered",
) -> TaskGraph:
    """Random layered DAG: edges only go from one layer to the next.

    Every node in layer ``l+1`` is guaranteed at least one predecessor in
    layer ``l``, and every node in layer ``l`` at least one successor in
    layer ``l+1``, so the graph stays connected front-to-back in both
    directions; additional edges are added independently with
    ``edge_probability``.  (The successor guarantee closes a seeded-generator
    bug where a middle-layer node could be left with no path to the final
    layer — a dead end the construction-time
    :func:`~repro.taskgraph.validation.require_connected_sinks` check now
    rejects.)
    """
    if num_layers < 1 or layer_width < 1:
        raise ConfigurationError("num_layers and layer_width must be >= 1")
    if not (0.0 <= edge_probability <= 1.0):
        raise ConfigurationError("edge_probability must be within [0, 1]")
    graph, synthesis, rng = _make_graph(name, synthesis, seed)

    layers: List[List[str]] = []
    counter = 1
    for layer_index in range(num_layers):
        layer = []
        for _ in range(layer_width):
            task = graph.add_task(synthesis.make_task(f"T{counter}", rng))
            counter += 1
            layer.append(task.name)
        layers.append(layer)

    for upper, lower in zip(layers, layers[1:]):
        for child in lower:
            parents = [parent for parent in upper if rng.random() < edge_probability]
            if not parents:
                parents = [rng.choice(upper)]
            for parent in parents:
                graph.add_edge(parent, child)
        for parent in upper:
            if not graph.successors(parent):
                graph.add_edge(parent, rng.choice(lower))
    return _validated(graph, layers[-1])


def tree_graph(
    depth: int = 3,
    branching: int = 2,
    direction: str = "out",
    synthesis: Optional[DesignPointSynthesis] = None,
    seed: int = 0,
    name: str = "tree",
) -> TaskGraph:
    """A complete tree of the given depth and branching factor.

    ``direction="out"`` builds a divide-style out-tree (root first);
    ``direction="in"`` reverses every edge, producing a reduction-style
    in-tree that converges onto a single final task.
    """
    if depth < 1 or branching < 1:
        raise ConfigurationError("depth and branching must be >= 1")
    if direction not in ("out", "in"):
        raise ConfigurationError('direction must be "out" or "in"')
    graph, synthesis, rng = _make_graph(name, synthesis, seed)

    counter = 1

    def new_task() -> str:
        nonlocal counter
        task = graph.add_task(synthesis.make_task(f"T{counter}", rng))
        counter += 1
        return task.name

    root = new_task()
    current_level = [root]
    edges = []
    for _ in range(depth - 1):
        next_level = []
        for parent in current_level:
            for _ in range(branching):
                child = new_task()
                next_level.append(child)
                edges.append((parent, child))
        current_level = next_level

    for parent, child in edges:
        if direction == "out":
            graph.add_edge(parent, child)
        else:
            graph.add_edge(child, parent)
    sinks = current_level if direction == "out" else [root]
    return _validated(graph, sinks)


def fft_graph(
    num_points: int = 4,
    synthesis: Optional[DesignPointSynthesis] = None,
    seed: int = 0,
    name: str = "fft",
) -> TaskGraph:
    """The butterfly dependence pattern of an in-place FFT.

    ``num_points`` (a power of two) leaf inputs are combined over
    ``log2(num_points)`` stages; the task at stage ``s``, position ``i``
    depends on the two stage ``s-1`` tasks whose indices differ from ``i``
    only in bit ``s-1``.  This is the classic irregular-but-structured graph
    used throughout task-scheduling literature.
    """
    if num_points < 2 or (num_points & (num_points - 1)) != 0:
        raise ConfigurationError("num_points must be a power of two and >= 2")
    graph, synthesis, rng = _make_graph(name, synthesis, seed)
    stages = num_points.bit_length() - 1

    names = {}
    counter = 1
    for stage in range(stages + 1):
        for position in range(num_points):
            task = graph.add_task(synthesis.make_task(f"T{counter}", rng))
            names[(stage, position)] = task.name
            counter += 1

    for stage in range(1, stages + 1):
        for position in range(num_points):
            partner = position ^ (1 << (stage - 1))
            graph.add_edge(names[(stage - 1, position)], names[(stage, position)])
            graph.add_edge(names[(stage - 1, partner)], names[(stage, position)])
    return _validated(
        graph, [names[(stages, position)] for position in range(num_points)]
    )


def gaussian_elimination_graph(
    matrix_size: int = 4,
    synthesis: Optional[DesignPointSynthesis] = None,
    seed: int = 0,
    name: str = "gaussian-elimination",
) -> TaskGraph:
    """The task graph of column-oriented Gaussian elimination.

    For every pivot column ``k`` there is one pivot task ``P_k`` followed by
    one update task per remaining column ``j > k``; ``P_{k+1}`` depends on the
    update of column ``k+1`` in step ``k``, and every update of step ``k+1``
    depends on the corresponding update of step ``k`` plus the new pivot.
    The number of tasks is ``n(n+1)/2 - 1`` for an ``n``-column matrix.
    """
    if matrix_size < 2:
        raise ConfigurationError("matrix_size must be >= 2")
    graph, synthesis, rng = _make_graph(name, synthesis, seed)

    pivots = {}
    updates = {}
    counter = 1

    def new_task(prefix: str) -> str:
        nonlocal counter
        task = graph.add_task(synthesis.make_task(f"{prefix}{counter}", rng))
        counter += 1
        return task.name

    for k in range(matrix_size - 1):
        pivots[k] = new_task("P")
        if k > 0:
            graph.add_edge(updates[(k - 1, k)], pivots[k])
        for j in range(k + 1, matrix_size):
            updates[(k, j)] = new_task("U")
            graph.add_edge(pivots[k], updates[(k, j)])
            if k > 0:
                graph.add_edge(updates[(k - 1, j)], updates[(k, j)])
    return _validated(graph, [updates[(matrix_size - 2, matrix_size - 1)]])


def crossbar_graph(
    num_layers: int = 4,
    layer_width: int = 3,
    synthesis: Optional[DesignPointSynthesis] = None,
    seed: int = 0,
    name: str = "crossbar",
) -> TaskGraph:
    """Layered DAG with *complete* inter-layer wiring (estee's ``crossv``).

    Every node in layer ``l`` feeds every node in layer ``l+1`` — the
    maximally dense layered shape, a stress case for weighting heuristics
    that aggregate over descendant sets (every layer-``l`` task sees the
    identical subtree).
    """
    if num_layers < 1 or layer_width < 1:
        raise ConfigurationError("num_layers and layer_width must be >= 1")
    graph, synthesis, rng = _make_graph(name, synthesis, seed)
    layers: List[List[str]] = []
    counter = 1
    for _ in range(num_layers):
        layer = []
        for _ in range(layer_width):
            task = graph.add_task(synthesis.make_task(f"T{counter}", rng))
            counter += 1
            layer.append(task.name)
        layers.append(layer)
    for upper, lower in zip(layers, layers[1:]):
        for parent in upper:
            for child in lower:
                graph.add_edge(parent, child)
    return _validated(graph, layers[-1])


def map_reduce_graph(
    num_maps: int = 4,
    num_reduces: int = 2,
    synthesis: Optional[DesignPointSynthesis] = None,
    seed: int = 0,
    name: str = "map-reduce",
) -> TaskGraph:
    """Scatter / map / all-to-all reduce / gather (estee's ``mapreduce``).

    A scatter task fans out into ``num_maps`` independent map tasks; every
    reduce task depends on *all* maps (the shuffle); a final gather task
    joins the reduces so the family has a single sink.
    """
    if num_maps < 1 or num_reduces < 1:
        raise ConfigurationError("num_maps and num_reduces must be >= 1")
    graph, synthesis, rng = _make_graph(name, synthesis, seed)
    counter = 1

    def new_task(prefix: str) -> str:
        nonlocal counter
        task = graph.add_task(synthesis.make_task(f"{prefix}{counter}", rng))
        counter += 1
        return task.name

    scatter = new_task("S")
    maps = [new_task("M") for _ in range(num_maps)]
    reduces = [new_task("R") for _ in range(num_reduces)]
    gather = new_task("G")
    for map_task in maps:
        graph.add_edge(scatter, map_task)
        for reduce_task in reduces:
            graph.add_edge(map_task, reduce_task)
    for reduce_task in reduces:
        graph.add_edge(reduce_task, gather)
    return _validated(graph, [gather])


def series_parallel_graph(
    depth: int = 3,
    max_branches: int = 3,
    synthesis: Optional[DesignPointSynthesis] = None,
    seed: int = 0,
    name: str = "series-parallel",
) -> TaskGraph:
    """A random series-parallel composition of the given recursion depth.

    At each level the generator flips a seeded coin: *series* composes two
    sub-blocks one after the other; *parallel* places 2..``max_branches``
    sub-blocks between a fresh fork and join.  Depth-0 blocks are single
    tasks.  Series-parallel graphs are the natural habitat of structured
    parallel programs (and of many scheduling lower bounds).
    """
    if depth < 0:
        raise ConfigurationError("depth must be >= 0")
    if max_branches < 2:
        raise ConfigurationError("max_branches must be >= 2")
    graph, synthesis, rng = _make_graph(name, synthesis, seed)
    counter = 1

    def new_task() -> str:
        nonlocal counter
        task = graph.add_task(synthesis.make_task(f"T{counter}", rng))
        counter += 1
        return task.name

    def build(level: int):
        if level == 0:
            single = new_task()
            return single, single
        if rng.random() < 0.5:  # series composition
            first_in, first_out = build(level - 1)
            second_in, second_out = build(level - 1)
            graph.add_edge(first_out, second_in)
            return first_in, second_out
        fork = new_task()
        join_inputs = []
        for _ in range(rng.randint(2, max_branches)):
            branch_in, branch_out = build(level - 1)
            graph.add_edge(fork, branch_in)
            join_inputs.append(branch_out)
        join = new_task()
        for branch_out in join_inputs:
            graph.add_edge(branch_out, join)
        return fork, join

    _, sink = build(depth)
    return _validated(graph, [sink])


def erdos_graph(
    num_tasks: int = 12,
    edge_probability: float = 0.3,
    synthesis: Optional[DesignPointSynthesis] = None,
    seed: int = 0,
    name: str = "erdos",
) -> TaskGraph:
    """Erdős–Rényi-style random DAG over a fixed topological order.

    Each ordered pair ``(T_i, T_j)`` with ``i < j`` receives an edge
    independently with ``edge_probability``; afterwards every task except
    the last with no successor is wired to a later task chosen by the seeded
    rng, which guarantees (by induction along the order) that every task
    reaches the single sink ``T_n``.
    """
    if num_tasks < 1:
        raise ConfigurationError("num_tasks must be >= 1")
    if not (0.0 <= edge_probability <= 1.0):
        raise ConfigurationError("edge_probability must be within [0, 1]")
    graph, synthesis, rng = _make_graph(name, synthesis, seed)
    names = []
    for index in range(1, num_tasks + 1):
        task = graph.add_task(synthesis.make_task(f"T{index}", rng))
        names.append(task.name)
    for i in range(num_tasks):
        for j in range(i + 1, num_tasks):
            if rng.random() < edge_probability:
                graph.add_edge(names[i], names[j])
    for i in range(num_tasks - 1):
        if not graph.successors(names[i]):
            graph.add_edge(names[i], names[rng.randint(i + 1, num_tasks - 1)])
    return _validated(graph, [names[-1]])


def diamond_graph(
    width: int = 3,
    synthesis: Optional[DesignPointSynthesis] = None,
    seed: int = 0,
    name: str = "diamond",
) -> TaskGraph:
    """A ``width x width`` grid of diamond dependencies.

    Node ``(r, c)`` depends on ``(r-1, c)`` and ``(r, c-1)``, giving the
    wavefront dependence pattern of dynamic-programming kernels.
    """
    if width < 1:
        raise ConfigurationError("width must be >= 1")
    graph, synthesis, rng = _make_graph(name, synthesis, seed)
    names = {}
    counter = 1
    for row in range(width):
        for col in range(width):
            task = graph.add_task(synthesis.make_task(f"T{counter}", rng))
            names[(row, col)] = task.name
            counter += 1
    for row in range(width):
        for col in range(width):
            if row > 0:
                graph.add_edge(names[(row - 1, col)], names[(row, col)])
            if col > 0:
                graph.add_edge(names[(row, col - 1)], names[(row, col)])
    return _validated(graph, [names[(width - 1, width - 1)]])


def replicated_graph(
    build: Callable[[], TaskGraph],
    copies: int,
    name: str = "",
) -> TaskGraph:
    """Chain ``copies`` instances of a base graph in series.

    Copy ``i``'s exit tasks all feed copy ``i+1``'s entry tasks, so the
    result models ``copies`` back-to-back executions of the base
    application — the natural way to scale the paper's fixed G2/G3 graphs
    to larger instances without inventing new per-task data.  Task names
    are prefixed ``"c{i}."`` to stay unique.  An empty ``name`` keeps the
    base/derived graph name; the base builder's graph is never mutated.

    >>> from repro.taskgraph import build_g3
    >>> graph = replicated_graph(build_g3, 2, name="g3x2")
    >>> graph.num_tasks
    30
    >>> sorted(graph.entry_tasks())
    ['c1.T1']
    >>> replicated_graph(build_g3, 1).name   # single copy: base graph as-is
    'G3'
    """
    if copies < 1:
        raise ConfigurationError("copies must be >= 1")
    base = build()
    if copies == 1:
        if name and name != base.name:
            # Rebuild rather than rename in place: the builder may hand out
            # a shared/cached graph that must not change under it.
            base = TaskGraph(name=name, tasks=base.tasks(), edges=base.edges())
        return _validated(base, base.exit_tasks())
    graph = TaskGraph(name=name or (f"{base.name}x{copies}" if base.name else ""))
    previous_exits: List[str] = []
    for copy_index in range(1, copies + 1):
        prefix = f"c{copy_index}."
        for task in base:
            graph.add_task(Task(prefix + task.name, task.design_points, task.metadata))
        for parent, child in base.edges():
            graph.add_edge(prefix + parent, prefix + child)
        entries = [prefix + entry for entry in base.entry_tasks()]
        for exit_name in previous_exits:
            for entry in entries:
                graph.add_edge(exit_name, entry)
        previous_exits = [prefix + exit_name for exit_name in base.exit_tasks()]
    return _validated(graph, previous_exits)
