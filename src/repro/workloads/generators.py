"""Synthetic task-graph generators.

The paper tested its algorithm "using different task-graphs and
design-points" and singles out the fork-join family as representative of
common parallel algorithm structure.  The generators here cover that family
and the other standard shapes used in task-scheduling literature:

* :func:`chain_graph` — a single pipeline (the degenerate sequence case);
* :func:`fork_join_graph` — a source fans out into parallel branches that
  re-converge, repeated over stages (the shape of the paper's G3);
* :func:`layered_graph` — random layered DAGs with configurable width and
  inter-layer edge density;
* :func:`tree_graph` — out-trees (divide) and in-trees (conquer);
* :func:`diamond_graph` — a grid of diamond dependencies.

All generators are deterministic for a given ``seed`` and produce power-
monotone design points via :class:`~repro.workloads.DesignPointSynthesis`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..errors import ConfigurationError
from ..taskgraph import TaskGraph
from .synthesis import DesignPointSynthesis, default_synthesis

__all__ = [
    "chain_graph",
    "fork_join_graph",
    "layered_graph",
    "tree_graph",
    "diamond_graph",
    "fft_graph",
    "gaussian_elimination_graph",
]


def _make_graph(name: str, synthesis: Optional[DesignPointSynthesis], seed: int):
    synthesis = synthesis or default_synthesis()
    rng = random.Random(seed)
    graph = TaskGraph(name=name)
    return graph, synthesis, rng


def chain_graph(
    num_tasks: int,
    synthesis: Optional[DesignPointSynthesis] = None,
    seed: int = 0,
    name: str = "chain",
) -> TaskGraph:
    """A linear pipeline ``T1 -> T2 -> ... -> Tn``."""
    if num_tasks < 1:
        raise ConfigurationError("num_tasks must be >= 1")
    graph, synthesis, rng = _make_graph(name, synthesis, seed)
    previous = None
    for index in range(1, num_tasks + 1):
        task = graph.add_task(synthesis.make_task(f"T{index}", rng))
        if previous is not None:
            graph.add_edge(previous.name, task.name)
        previous = task
    return graph


def fork_join_graph(
    num_stages: int = 2,
    branches_per_stage: int = 4,
    synthesis: Optional[DesignPointSynthesis] = None,
    seed: int = 0,
    name: str = "fork-join",
) -> TaskGraph:
    """Repeated fork-join stages: fork task -> parallel branches -> join task.

    Stage ``s`` consists of a fork node, ``branches_per_stage`` independent
    branch nodes and a join node that also serves as the next stage's fork.
    With one stage and four branches the shape matches the first half of the
    paper's G3.
    """
    if num_stages < 1 or branches_per_stage < 1:
        raise ConfigurationError("num_stages and branches_per_stage must be >= 1")
    graph, synthesis, rng = _make_graph(name, synthesis, seed)
    counter = 1

    def new_task() -> str:
        nonlocal counter
        task = graph.add_task(synthesis.make_task(f"T{counter}", rng))
        counter += 1
        return task.name

    fork = new_task()
    for _ in range(num_stages):
        branch_names = [new_task() for _ in range(branches_per_stage)]
        join = new_task()
        for branch in branch_names:
            graph.add_edge(fork, branch)
            graph.add_edge(branch, join)
        fork = join
    return graph


def layered_graph(
    num_layers: int = 4,
    layer_width: int = 3,
    edge_probability: float = 0.5,
    synthesis: Optional[DesignPointSynthesis] = None,
    seed: int = 0,
    name: str = "layered",
) -> TaskGraph:
    """Random layered DAG: edges only go from one layer to the next.

    Every node in layer ``l+1`` is guaranteed at least one predecessor in
    layer ``l`` so the graph stays connected front-to-back; additional
    edges are added independently with ``edge_probability``.
    """
    if num_layers < 1 or layer_width < 1:
        raise ConfigurationError("num_layers and layer_width must be >= 1")
    if not (0.0 <= edge_probability <= 1.0):
        raise ConfigurationError("edge_probability must be within [0, 1]")
    graph, synthesis, rng = _make_graph(name, synthesis, seed)

    layers: List[List[str]] = []
    counter = 1
    for layer_index in range(num_layers):
        layer = []
        for _ in range(layer_width):
            task = graph.add_task(synthesis.make_task(f"T{counter}", rng))
            counter += 1
            layer.append(task.name)
        layers.append(layer)

    for upper, lower in zip(layers, layers[1:]):
        for child in lower:
            parents = [parent for parent in upper if rng.random() < edge_probability]
            if not parents:
                parents = [rng.choice(upper)]
            for parent in parents:
                graph.add_edge(parent, child)
    return graph


def tree_graph(
    depth: int = 3,
    branching: int = 2,
    direction: str = "out",
    synthesis: Optional[DesignPointSynthesis] = None,
    seed: int = 0,
    name: str = "tree",
) -> TaskGraph:
    """A complete tree of the given depth and branching factor.

    ``direction="out"`` builds a divide-style out-tree (root first);
    ``direction="in"`` reverses every edge, producing a reduction-style
    in-tree that converges onto a single final task.
    """
    if depth < 1 or branching < 1:
        raise ConfigurationError("depth and branching must be >= 1")
    if direction not in ("out", "in"):
        raise ConfigurationError('direction must be "out" or "in"')
    graph, synthesis, rng = _make_graph(name, synthesis, seed)

    counter = 1

    def new_task() -> str:
        nonlocal counter
        task = graph.add_task(synthesis.make_task(f"T{counter}", rng))
        counter += 1
        return task.name

    current_level = [new_task()]
    edges = []
    for _ in range(depth - 1):
        next_level = []
        for parent in current_level:
            for _ in range(branching):
                child = new_task()
                next_level.append(child)
                edges.append((parent, child))
        current_level = next_level

    for parent, child in edges:
        if direction == "out":
            graph.add_edge(parent, child)
        else:
            graph.add_edge(child, parent)
    return graph


def fft_graph(
    num_points: int = 4,
    synthesis: Optional[DesignPointSynthesis] = None,
    seed: int = 0,
    name: str = "fft",
) -> TaskGraph:
    """The butterfly dependence pattern of an in-place FFT.

    ``num_points`` (a power of two) leaf inputs are combined over
    ``log2(num_points)`` stages; the task at stage ``s``, position ``i``
    depends on the two stage ``s-1`` tasks whose indices differ from ``i``
    only in bit ``s-1``.  This is the classic irregular-but-structured graph
    used throughout task-scheduling literature.
    """
    if num_points < 2 or (num_points & (num_points - 1)) != 0:
        raise ConfigurationError("num_points must be a power of two and >= 2")
    graph, synthesis, rng = _make_graph(name, synthesis, seed)
    stages = num_points.bit_length() - 1

    names = {}
    counter = 1
    for stage in range(stages + 1):
        for position in range(num_points):
            task = graph.add_task(synthesis.make_task(f"T{counter}", rng))
            names[(stage, position)] = task.name
            counter += 1

    for stage in range(1, stages + 1):
        for position in range(num_points):
            partner = position ^ (1 << (stage - 1))
            graph.add_edge(names[(stage - 1, position)], names[(stage, position)])
            graph.add_edge(names[(stage - 1, partner)], names[(stage, position)])
    return graph


def gaussian_elimination_graph(
    matrix_size: int = 4,
    synthesis: Optional[DesignPointSynthesis] = None,
    seed: int = 0,
    name: str = "gaussian-elimination",
) -> TaskGraph:
    """The task graph of column-oriented Gaussian elimination.

    For every pivot column ``k`` there is one pivot task ``P_k`` followed by
    one update task per remaining column ``j > k``; ``P_{k+1}`` depends on the
    update of column ``k+1`` in step ``k``, and every update of step ``k+1``
    depends on the corresponding update of step ``k`` plus the new pivot.
    The number of tasks is ``n(n+1)/2 - 1`` for an ``n``-column matrix.
    """
    if matrix_size < 2:
        raise ConfigurationError("matrix_size must be >= 2")
    graph, synthesis, rng = _make_graph(name, synthesis, seed)

    pivots = {}
    updates = {}
    counter = 1

    def new_task(prefix: str) -> str:
        nonlocal counter
        task = graph.add_task(synthesis.make_task(f"{prefix}{counter}", rng))
        counter += 1
        return task.name

    for k in range(matrix_size - 1):
        pivots[k] = new_task("P")
        if k > 0:
            graph.add_edge(updates[(k - 1, k)], pivots[k])
        for j in range(k + 1, matrix_size):
            updates[(k, j)] = new_task("U")
            graph.add_edge(pivots[k], updates[(k, j)])
            if k > 0:
                graph.add_edge(updates[(k - 1, j)], updates[(k, j)])
    return graph


def diamond_graph(
    width: int = 3,
    synthesis: Optional[DesignPointSynthesis] = None,
    seed: int = 0,
    name: str = "diamond",
) -> TaskGraph:
    """A ``width x width`` grid of diamond dependencies.

    Node ``(r, c)`` depends on ``(r-1, c)`` and ``(r, c-1)``, giving the
    wavefront dependence pattern of dynamic-programming kernels.
    """
    if width < 1:
        raise ConfigurationError("width must be >= 1")
    graph, synthesis, rng = _make_graph(name, synthesis, seed)
    names = {}
    counter = 1
    for row in range(width):
        for col in range(width):
            task = graph.add_task(synthesis.make_task(f"T{counter}", rng))
            names[(row, col)] = task.name
            counter += 1
    for row in range(width):
        for col in range(width):
            if row > 0:
                graph.add_edge(names[(row - 1, col)], names[(row, col)])
            if col > 0:
                graph.add_edge(names[(row, col - 1)], names[(row, col)])
    return graph
