"""Random synthesis of per-task design points for the workload generators.

The paper built its evaluation graphs by taking one base implementation per
task and deriving the remaining design points through voltage scaling
(duration grows, current shrinks cubically).  The synthetic generators do
the same: a seeded random number generator draws each task's base duration
and base current, and :func:`repro.taskgraph.scaling.scaled_design_points`
expands them into a full design-point family, so every generated task is
power monotone and structurally identical to the paper's data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..taskgraph import DesignPoint, G3_SCALING_FACTORS, Task, scaled_design_points

__all__ = ["DesignPointSynthesis", "default_synthesis"]


@dataclass(frozen=True)
class DesignPointSynthesis:
    """Recipe for drawing a task's design points.

    Attributes
    ----------
    factors:
        Voltage scaling factors (relative to the fastest design point).
    duration_range:
        Inclusive range the fastest design point's execution time is drawn
        from (uniformly).
    current_range:
        Inclusive range the fastest design point's current is drawn from
        (uniformly), in mA.
    duration_rule:
        Forwarded to :func:`~repro.taskgraph.scaling.scaled_design_points`
        (``"inverse"`` or ``"mirrored"``).
    """

    factors: Tuple[float, ...] = G3_SCALING_FACTORS
    duration_range: Tuple[float, float] = (2.0, 12.0)
    current_range: Tuple[float, float] = (300.0, 1000.0)
    duration_rule: str = "inverse"

    def __post_init__(self) -> None:
        if len(self.factors) < 1:
            raise ConfigurationError("at least one scaling factor is required")
        lo, hi = self.duration_range
        if lo <= 0 or hi < lo:
            raise ConfigurationError(f"invalid duration_range {self.duration_range!r}")
        lo, hi = self.current_range
        if lo < 0 or hi < lo:
            raise ConfigurationError(f"invalid current_range {self.current_range!r}")

    @property
    def num_design_points(self) -> int:
        """Number of design points each synthesised task will have."""
        return len(self.factors)

    def make_task(self, name: str, rng: random.Random) -> Task:
        """Draw one task's base implementation and expand it into design points."""
        duration = rng.uniform(*self.duration_range)
        current = rng.uniform(*self.current_range)
        points = scaled_design_points(
            reference_duration=duration,
            reference_current=current,
            factors=self.factors,
            duration_rule=self.duration_rule,
        )
        return Task(name, points, metadata={"base_duration": duration, "base_current": current})


def default_synthesis(num_design_points: int = 5) -> DesignPointSynthesis:
    """A synthesis recipe with ``num_design_points`` evenly spread scaling factors.

    Factors run linearly from 1.0 down to 0.33 (the paper's G3 span); for
    ``num_design_points == 5`` this closely matches the published factor set.
    """
    if num_design_points < 1:
        raise ConfigurationError("num_design_points must be >= 1")
    if num_design_points == 1:
        factors: Tuple[float, ...] = (1.0,)
    else:
        lowest = 0.33
        step = (1.0 - lowest) / (num_design_points - 1)
        factors = tuple(1.0 - index * step for index in range(num_design_points))
    return DesignPointSynthesis(factors=factors)
