"""Design points: alternative implementations of a single task.

The paper assumes that every task has *m* design points.  On a voltage- and
frequency-scalable processor a design point is a (voltage, frequency)
operating pair; on an FPGA it is a distinct bitstream.  Either way the
library only needs the two estimates the paper requires for each design
point:

* the execution time of the task when run with that design point, and
* the average *total platform* current drawn while the task runs
  (processor plus memory, display and other peripherals).

Optionally a supply voltage can be attached; when present it participates in
energy calculations (``energy = current * voltage * execution_time``),
matching the ENR definition in Section 4 of the paper.  The published data
tables (Table 1 and Figure 5) only list current and duration, so the voltage
defaults to 1.0 and energy degenerates to charge (mA·min).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..errors import DesignPointError

__all__ = ["DesignPoint"]


@dataclass(frozen=True, order=False)
class DesignPoint:
    """One implementation option for a task.

    Parameters
    ----------
    execution_time:
        Execution time of the task under this design point, in the time unit
        used throughout the problem instance (the paper uses minutes).
        Must be strictly positive.
    current:
        Average total platform current drawn while the task executes, in mA.
        Must be non-negative (an idle/"sleep" pseudo design point may draw
        approximately zero current).
    voltage:
        Supply voltage in volts.  Defaults to 1.0 so that, as in the paper's
        data tables, energy reduces to charge.
    name:
        Optional human-readable label, e.g. ``"DP3"`` or ``"0.85V@600MHz"``.
    metadata:
        Free-form dictionary for caller annotations (frequency, bitstream id,
        scaling factor...).  Not interpreted by the library.
    """

    execution_time: float
    current: float
    voltage: float = 1.0
    name: str = ""
    metadata: Mapping[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not math.isfinite(self.execution_time) or self.execution_time <= 0:
            raise DesignPointError(
                f"design point execution_time must be finite and > 0, "
                f"got {self.execution_time!r}"
            )
        if not math.isfinite(self.current) or self.current < 0:
            raise DesignPointError(
                f"design point current must be finite and >= 0, got {self.current!r}"
            )
        if not math.isfinite(self.voltage) or self.voltage <= 0:
            raise DesignPointError(
                f"design point voltage must be finite and > 0, got {self.voltage!r}"
            )

    @property
    def power(self) -> float:
        """Average power draw, ``current * voltage``.

        With the default voltage of 1.0 this equals the current; it exists so
        that instances carrying real voltages order design points by power
        rather than by raw current.
        """
        return self.current * self.voltage

    @property
    def energy(self) -> float:
        """Energy consumed by one execution, ``current * voltage * time``.

        With the default voltage this is the charge drawn (mA·min), which is
        exactly the quantity the paper's ENR and the battery cost operate on.
        """
        return self.current * self.voltage * self.execution_time

    @property
    def charge(self) -> float:
        """Charge drawn by one execution, ``current * time`` (mA·min)."""
        return self.current * self.execution_time

    def scaled(self, time_factor: float = 1.0, current_factor: float = 1.0) -> "DesignPoint":
        """Return a copy with execution time and current multiplied by factors."""
        return DesignPoint(
            execution_time=self.execution_time * time_factor,
            current=self.current * current_factor,
            voltage=self.voltage,
            name=self.name,
            metadata=dict(self.metadata),
        )

    def to_dict(self) -> dict:
        """Serialise to a plain dictionary (JSON-friendly)."""
        data = {
            "execution_time": self.execution_time,
            "current": self.current,
            "voltage": self.voltage,
        }
        if self.name:
            data["name"] = self.name
        if self.metadata:
            data["metadata"] = dict(self.metadata)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DesignPoint":
        """Inverse of :meth:`to_dict`."""
        return cls(
            execution_time=float(data["execution_time"]),
            current=float(data["current"]),
            voltage=float(data.get("voltage", 1.0)),
            name=str(data.get("name", "")),
            metadata=dict(data.get("metadata", {})),
        )

    def __repr__(self) -> str:  # compact, table-friendly
        label = f"{self.name}: " if self.name else ""
        return (
            f"DesignPoint({label}t={self.execution_time:g}, "
            f"I={self.current:g}mA, V={self.voltage:g})"
        )
