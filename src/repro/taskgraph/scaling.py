"""Voltage-scaling based synthesis of design points.

Both evaluation task graphs in the paper were produced from a single
"worst case" implementation per task by applying voltage scaling factors
(Sections 4.2 and 5):

* task currents are *directly proportional to the cube* of the scaling
  factor (power scales roughly with V^2 * f and f scales with V, so the
  drawn current scales with V^3 for a fixed supply-voltage reference), and
* task durations grow as the voltage is lowered.

The two graphs apply the duration rule differently, and the published data
tables make the distinction visible:

``"inverse"``
    ``duration_j = base_duration / factor_j`` — used for **G2** (Figure 5),
    whose factors are expressed relative to the slowest design point
    (``2.5, 1.66, 1.25, 1``).  This is literal inverse proportionality.

``"mirrored"``
    ``duration_j = slowest_duration * factor_{m+1-j}`` — what the **G3**
    numbers in Table 1 actually follow for factors expressed relative to the
    fastest design point (``1, 0.85, 0.68, 0.51, 0.33``): the duration column
    is the factor list applied in reverse order to the slowest duration.
    (Literal inverse proportionality would give duration ratios
    ``1 : 1.18 : 1.47 : 1.96 : 3.03``, which do not match Table 1; the
    mirrored rule reproduces every entry to the table's printed precision.)

Both rules are provided so that the Table 1 / Figure 5 data can be
regenerated and cross-checked against the verbatim transcription in
:mod:`repro.taskgraph.library` (experiment E7 in DESIGN.md).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from ..errors import ConfigurationError, DesignPointError
from .designpoint import DesignPoint

__all__ = [
    "G3_SCALING_FACTORS",
    "G2_SCALING_FACTORS",
    "cubic_current",
    "scaled_design_points",
    "scaled_task_rows",
]

#: Scaling factors used for G3 (Table 1), relative to the fastest design point.
G3_SCALING_FACTORS: Tuple[float, ...] = (1.0, 0.85, 0.68, 0.51, 0.33)

#: Scaling factors used for G2 (Figure 5), relative to the slowest design point.
G2_SCALING_FACTORS: Tuple[float, ...] = (2.5, 1.66, 1.25, 1.0)

_DURATION_RULES = ("inverse", "mirrored")


def cubic_current(reference_current: float, factor: float) -> float:
    """Current of a design point whose voltage scaling factor is ``factor``.

    The paper states that "task currents for different design-points were
    made directly proportional to the cube of the scaling factor"; the
    reference current is the current at factor 1.0.
    """
    if reference_current < 0:
        raise DesignPointError("reference current must be non-negative")
    if factor <= 0:
        raise DesignPointError("scaling factor must be positive")
    return reference_current * factor**3


def scaled_design_points(
    reference_duration: float,
    reference_current: float,
    factors: Sequence[float] = G3_SCALING_FACTORS,
    duration_rule: str = "inverse",
    voltages: Optional[Sequence[float]] = None,
    name_prefix: str = "DP",
) -> Tuple[DesignPoint, ...]:
    """Synthesise a family of design points from one reference implementation.

    Parameters
    ----------
    reference_duration:
        Execution time of the reference implementation (the design point
        whose scaling factor is 1.0).
    reference_current:
        Platform current of the reference implementation, in mA.
    factors:
        Voltage scaling factors, one per design point, each relative to the
        reference.  The first factor conventionally belongs to design point 1
        (the paper's fastest / highest-power column).
    duration_rule:
        ``"inverse"`` (duration = reference_duration * f_ref / f_j, i.e.
        inversely proportional to the factor) or ``"mirrored"`` (durations are
        the reversed factor list applied to the slowest duration; see the
        module docstring).  For the ``"mirrored"`` rule the reference duration
        is interpreted as the duration at factor 1.0, exactly as for
        ``"inverse"``; the slowest duration is derived internally.
    voltages:
        Optional explicit supply voltages, one per design point.  When
        omitted the voltage defaults to 1.0 (energy == charge).
    name_prefix:
        Design points are named ``f"{name_prefix}{j}"`` with ``j`` starting
        at 1.

    Returns
    -------
    tuple of :class:`DesignPoint`
        In the given factor order; for descending factors this is the
        paper's canonical "fastest first" column order.
    """
    factor_list = [float(f) for f in factors]
    if not factor_list:
        raise ConfigurationError("at least one scaling factor is required")
    if any(f <= 0 for f in factor_list):
        raise DesignPointError("scaling factors must be strictly positive")
    if duration_rule not in _DURATION_RULES:
        raise ConfigurationError(
            f"duration_rule must be one of {_DURATION_RULES}, got {duration_rule!r}"
        )
    if reference_duration <= 0:
        raise DesignPointError("reference duration must be positive")
    if voltages is not None and len(voltages) != len(factor_list):
        raise ConfigurationError(
            "voltages, when given, must have one entry per scaling factor"
        )

    reference_factor = 1.0
    if 1.0 not in factor_list:
        # Factors may be expressed relative to an implicit unit reference
        # that is not itself in the list; treat the closest-to-one factor
        # as the reference for duration normalisation.
        reference_factor = min(factor_list, key=lambda f: abs(f - 1.0))

    durations = _durations(reference_duration, factor_list, reference_factor, duration_rule)

    points = []
    for index, factor in enumerate(factor_list):
        current = cubic_current(reference_current, factor / reference_factor)
        voltage = float(voltages[index]) if voltages is not None else 1.0
        points.append(
            DesignPoint(
                execution_time=durations[index],
                current=current,
                voltage=voltage,
                name=f"{name_prefix}{index + 1}",
                metadata={"scaling_factor": factor},
            )
        )
    return tuple(points)


def _durations(
    reference_duration: float,
    factors: Sequence[float],
    reference_factor: float,
    duration_rule: str,
) -> Tuple[float, ...]:
    if duration_rule == "inverse":
        return tuple(
            reference_duration * reference_factor / factor for factor in factors
        )
    # "mirrored": the slowest duration corresponds to the smallest factor;
    # durations are the reversed factor list scaled onto it.
    smallest = min(factors)
    slowest_duration = reference_duration * reference_factor / smallest
    reversed_factors = list(reversed(list(factors)))
    largest = max(reversed_factors)
    return tuple(
        slowest_duration * factor / largest for factor in reversed_factors
    )


def scaled_task_rows(
    base_rows: Iterable[Tuple[float, float]],
    factors: Sequence[float] = G3_SCALING_FACTORS,
    duration_rule: str = "inverse",
) -> Tuple[Tuple[DesignPoint, ...], ...]:
    """Apply :func:`scaled_design_points` to many ``(duration, current)`` rows.

    Convenience helper used by the synthetic workload generators: every row
    describes one task's reference implementation and the same factor family
    is applied to all of them (as the paper did for G2 and G3).
    """
    return tuple(
        scaled_design_points(duration, current, factors, duration_rule)
        for duration, current in base_rows
    )
