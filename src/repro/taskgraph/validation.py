"""Standalone validation helpers for task graphs and task sequences.

These functions complement the checks built into
:class:`~repro.taskgraph.TaskGraph`; they are used throughout the library
before running algorithms (fail fast on malformed inputs) and inside the
test-suite to assert that every algorithm output is a legal schedule.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import (
    PrecedenceViolationError,
    ScheduleError,
    TaskGraphError,
)
from .graph import TaskGraph

__all__ = [
    "validate_sequence",
    "require_uniform_design_points",
    "require_power_monotone",
    "sequence_positions",
]


def sequence_positions(sequence: Sequence[str]) -> dict:
    """Map task name -> zero-based position, rejecting duplicates."""
    positions = {}
    for index, name in enumerate(sequence):
        if name in positions:
            raise ScheduleError(f"task {name!r} appears more than once in the sequence")
        positions[name] = index
    return positions


def validate_sequence(graph: TaskGraph, sequence: Sequence[str]) -> None:
    """Check that ``sequence`` is a complete, precedence-respecting order.

    Raises
    ------
    ScheduleError
        If the sequence is not a permutation of the graph's tasks.
    PrecedenceViolationError
        If some task appears before one of its predecessors.
    """
    positions = sequence_positions(sequence)
    graph_names = set(graph.task_names())
    sequence_names = set(positions)
    missing = graph_names - sequence_names
    if missing:
        raise ScheduleError(f"sequence is missing tasks: {sorted(missing)}")
    extra = sequence_names - graph_names
    if extra:
        raise ScheduleError(f"sequence contains unknown tasks: {sorted(extra)}")
    for parent, child in graph.edges():
        if positions[parent] > positions[child]:
            raise PrecedenceViolationError(
                f"task {child!r} is sequenced before its predecessor {parent!r}"
            )


def require_uniform_design_points(graph: TaskGraph) -> int:
    """Return the common design-point count *m*, or raise :class:`TaskGraphError`."""
    return graph.uniform_design_point_count()


def require_power_monotone(graph: TaskGraph) -> None:
    """Raise :class:`TaskGraphError` unless every task is power monotone.

    Monotonicity (faster design points draw at least as much current) is not
    required by the algorithms but is assumed by several analytical bounds;
    the synthetic generators always produce monotone tasks.
    """
    offenders = [task.name for task in graph if not task.is_power_monotone()]
    if offenders:
        raise TaskGraphError(
            f"tasks are not power monotone: {offenders}"
        )
