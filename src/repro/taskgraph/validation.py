"""Standalone validation helpers for task graphs and task sequences.

These functions complement the checks built into
:class:`~repro.taskgraph.TaskGraph`; they are used throughout the library
before running algorithms (fail fast on malformed inputs) and inside the
test-suite to assert that every algorithm output is a legal schedule.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import (
    PrecedenceViolationError,
    ScheduleError,
    TaskGraphError,
)
from .graph import TaskGraph

__all__ = [
    "validate_sequence",
    "require_connected_sinks",
    "require_uniform_design_points",
    "require_power_monotone",
    "sequence_positions",
]


def sequence_positions(sequence: Sequence[str]) -> dict:
    """Map task name -> zero-based position, rejecting duplicates."""
    positions = {}
    for index, name in enumerate(sequence):
        if name in positions:
            raise ScheduleError(f"task {name!r} appears more than once in the sequence")
        positions[name] = index
    return positions


def validate_sequence(graph: TaskGraph, sequence: Sequence[str]) -> None:
    """Check that ``sequence`` is a complete, precedence-respecting order.

    Raises
    ------
    ScheduleError
        If the sequence is not a permutation of the graph's tasks.
    PrecedenceViolationError
        If some task appears before one of its predecessors.
    """
    positions = sequence_positions(sequence)
    graph_names = set(graph.task_names())
    sequence_names = set(positions)
    missing = graph_names - sequence_names
    if missing:
        raise ScheduleError(f"sequence is missing tasks: {sorted(missing)}")
    extra = sequence_names - graph_names
    if extra:
        raise ScheduleError(f"sequence contains unknown tasks: {sorted(extra)}")
    for parent, child in graph.edges():
        if positions[parent] > positions[child]:
            raise PrecedenceViolationError(
                f"task {child!r} is sequenced before its predecessor {parent!r}"
            )


def require_connected_sinks(graph: TaskGraph, sinks: Iterable[str]) -> None:
    """Raise :class:`TaskGraphError` unless every task reaches a declared sink.

    Generators that promise a front-to-back connected shape (layered,
    map-reduce, pipelines, ...) declare their intended sink set; a task from
    which no declared sink is reachable is a structural dead end — it would
    occupy the schedule without ever gating the graph's completion.  Note
    that an undeclared *exit* task is automatically a dead end: it has no
    successors, so no sink can be reachable from it.

    >>> from repro.workloads.generators import chain_graph
    >>> graph = chain_graph(3)
    >>> require_connected_sinks(graph, ["T3"])            # fine: T1→T2→T3
    >>> require_connected_sinks(graph, ["T1"])            # T2, T3 are dead ends
    Traceback (most recent call last):
        ...
    repro.errors.TaskGraphError: tasks with no path to a sink: ['T2', 'T3'] (sinks: ['T1'])
    """
    sink_set = set(sinks)
    if not sink_set:
        raise TaskGraphError("at least one sink must be declared")
    unknown = sink_set - set(graph.task_names())
    if unknown:
        raise TaskGraphError(f"declared sinks are not in the graph: {sorted(unknown)}")
    dead = [
        name
        for name in graph.task_names()
        if name not in sink_set and not (graph.descendants(name) & sink_set)
    ]
    if dead:
        raise TaskGraphError(
            f"tasks with no path to a sink: {sorted(dead)} (sinks: {sorted(sink_set)})"
        )


def require_uniform_design_points(graph: TaskGraph) -> int:
    """Return the common design-point count *m*, or raise :class:`TaskGraphError`."""
    return graph.uniform_design_point_count()


def require_power_monotone(graph: TaskGraph) -> None:
    """Raise :class:`TaskGraphError` unless every task is power monotone.

    Monotonicity (faster design points draw at least as much current) is not
    required by the algorithms but is assumed by several analytical bounds;
    the synthetic generators always produce monotone tasks.
    """
    offenders = [task.name for task in graph if not task.is_power_monotone()]
    if offenders:
        raise TaskGraphError(
            f"tasks are not power monotone: {offenders}"
        )
