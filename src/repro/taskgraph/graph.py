"""Directed acyclic task graphs.

The application to be scheduled is described as a DAG ``G(V, E)`` whose
vertices are :class:`~repro.taskgraph.Task` objects and whose edges encode
data / control dependences (Section 1 of the paper).  All tasks execute
sequentially on a single processing element, so a *schedule* is a total order
of the vertices that respects the edges, plus one design point per task.

The class below keeps its own adjacency structure (plain dictionaries of
sets) so that the core algorithms have no third-party dependencies on their
hot path; :meth:`TaskGraph.to_networkx` converts to a ``networkx.DiGraph``
for users who want to run graph analytics or draw the DAG.
"""

from __future__ import annotations

import heapq
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import CyclicGraphError, TaskGraphError, UnknownTaskError
from .designpoint import DesignPoint
from .task import Task

__all__ = ["TaskGraph"]


class TaskGraph:
    """A directed acyclic graph of tasks with multi-design-point nodes.

    Tasks are identified by their unique ``name``.  Edges are ordered pairs
    ``(parent, child)`` meaning *child may only start after parent has
    completed*.

    Parameters
    ----------
    name:
        Optional label for the graph (e.g. ``"G3"``).
    tasks:
        Optional initial tasks.
    edges:
        Optional initial edges, given as ``(parent_name, child_name)`` pairs.
    """

    def __init__(
        self,
        name: str = "",
        tasks: Optional[Iterable[Task]] = None,
        edges: Optional[Iterable[Tuple[str, str]]] = None,
    ) -> None:
        self.name = name
        self._tasks: Dict[str, Task] = {}
        self._successors: Dict[str, Set[str]] = {}
        self._predecessors: Dict[str, Set[str]] = {}
        self._order: List[str] = []  # insertion order of task names
        # name -> index into _order; kept in lockstep with _order so
        # insertion-order sorts are O(1) per key instead of the O(n)
        # list.index lookup they used to pay.
        self._position: Dict[str, int] = {}
        for task in tasks or ():
            self.add_task(task)
        for parent, child in edges or ():
            self.add_edge(parent, child)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        """Add a task node; the task name must be unique within the graph."""
        if not isinstance(task, Task):
            raise TaskGraphError(f"expected Task, got {type(task).__name__}")
        if task.name in self._tasks:
            raise TaskGraphError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task
        self._successors[task.name] = set()
        self._predecessors[task.name] = set()
        self._position[task.name] = len(self._order)
        self._order.append(task.name)
        return task

    def add_edge(self, parent: str, child: str) -> None:
        """Add a precedence edge ``parent -> child``.

        Raises
        ------
        UnknownTaskError
            If either endpoint has not been added yet.
        CyclicGraphError
            If the edge would create a dependency cycle (including self-loops).
        """
        self._require(parent)
        self._require(child)
        if parent == child:
            raise CyclicGraphError(f"self-loop on task {parent!r} is not allowed")
        if child in self._successors[parent]:
            return  # idempotent
        if self._reaches(child, parent):
            raise CyclicGraphError(
                f"edge {parent!r} -> {child!r} would create a cycle"
            )
        self._successors[parent].add(child)
        self._predecessors[child].add(parent)

    def remove_edge(self, parent: str, child: str) -> None:
        """Remove an existing precedence edge."""
        self._require(parent)
        self._require(child)
        if child not in self._successors[parent]:
            raise TaskGraphError(f"no edge {parent!r} -> {child!r}")
        self._successors[parent].discard(child)
        self._predecessors[child].discard(parent)

    def _require(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise UnknownTaskError(f"unknown task {name!r}") from None

    def _reaches(self, source: str, target: str) -> bool:
        """True when ``target`` is reachable from ``source`` via existing edges."""
        stack = [source]
        seen: Set[str] = set()
        while stack:
            node = stack.pop()
            if node == target:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._successors[node])
        return False

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """Number of vertices (the paper's ``n = |V|``)."""
        return len(self._tasks)

    @property
    def num_edges(self) -> int:
        """Number of precedence edges (the paper's ``e = |E|``)."""
        return sum(len(s) for s in self._successors.values())

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: object) -> bool:
        return name in self._tasks

    def __iter__(self) -> Iterator[Task]:
        return (self._tasks[name] for name in self._order)

    def task(self, name: str) -> Task:
        """Return the task named ``name``."""
        return self._require(name)

    def task_names(self) -> Tuple[str, ...]:
        """All task names in insertion order."""
        return tuple(self._order)

    def tasks(self) -> Tuple[Task, ...]:
        """All tasks in insertion order."""
        return tuple(self._tasks[name] for name in self._order)

    def predecessors(self, name: str) -> FrozenSet[str]:
        """Direct predecessors (parents) of ``name``."""
        self._require(name)
        return frozenset(self._predecessors[name])

    def successors(self, name: str) -> FrozenSet[str]:
        """Direct successors (children) of ``name``."""
        self._require(name)
        return frozenset(self._successors[name])

    def edges(self) -> Tuple[Tuple[str, str], ...]:
        """All edges as ``(parent, child)`` pairs, in a deterministic order."""
        result: List[Tuple[str, str]] = []
        position = self._position
        for parent in self._order:
            for child in sorted(self._successors[parent], key=position.__getitem__):
                result.append((parent, child))
        return tuple(result)

    def entry_tasks(self) -> Tuple[str, ...]:
        """Tasks with no predecessors, in insertion order."""
        return tuple(n for n in self._order if not self._predecessors[n])

    def exit_tasks(self) -> Tuple[str, ...]:
        """Tasks with no successors, in insertion order."""
        return tuple(n for n in self._order if not self._successors[n])

    # ------------------------------------------------------------------
    # reachability and subgraphs
    # ------------------------------------------------------------------
    def descendants(self, name: str) -> FrozenSet[str]:
        """All tasks reachable from ``name`` (excluding ``name`` itself)."""
        self._require(name)
        found: Set[str] = set()
        stack = list(self._successors[name])
        while stack:
            node = stack.pop()
            if node in found:
                continue
            found.add(node)
            stack.extend(self._successors[node])
        return frozenset(found)

    def ancestors(self, name: str) -> FrozenSet[str]:
        """All tasks from which ``name`` is reachable (excluding ``name``)."""
        self._require(name)
        found: Set[str] = set()
        stack = list(self._predecessors[name])
        while stack:
            node = stack.pop()
            if node in found:
                continue
            found.add(node)
            stack.extend(self._predecessors[node])
        return frozenset(found)

    def subgraph_rooted_at(self, name: str) -> FrozenSet[str]:
        """The node set of ``G_v``: ``name`` together with its descendants.

        The weighted-sequence heuristic (Equation 4) and the baseline greedy
        sequencer (Equation 5) both assign weights computed over this set.
        """
        return frozenset({name} | self.descendants(name))

    # ------------------------------------------------------------------
    # orderings
    # ------------------------------------------------------------------
    def topological_order(self) -> Tuple[str, ...]:
        """A deterministic topological order (Kahn's algorithm).

        Ties are broken by insertion order, so repeated calls return the same
        sequence for the same graph.
        """
        position = self._position
        indegree = {name: len(self._predecessors[name]) for name in self._order}
        # Min-heap keyed on insertion position: popping the smallest
        # position is exactly what the previous sort-then-pop(0) loop
        # selected, so the emitted order is byte-identical while each
        # step costs O(log n) instead of O(n log n).
        ready = [position[name] for name in self._order if indegree[name] == 0]
        heapq.heapify(ready)
        order = self._order
        result: List[str] = []
        while ready:
            node = order[heapq.heappop(ready)]
            result.append(node)
            for child in self._successors[node]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    heapq.heappush(ready, position[child])
        if len(result) != len(self._order):
            raise CyclicGraphError("task graph contains a cycle")
        return tuple(result)

    def is_valid_sequence(self, sequence: Sequence[str]) -> bool:
        """True when ``sequence`` is a permutation of all tasks respecting edges."""
        if sorted(sequence) != sorted(self._order):
            return False
        position = {name: i for i, name in enumerate(sequence)}
        return all(
            position[parent] < position[child] for parent, child in self.edges()
        )

    # ------------------------------------------------------------------
    # aggregate timing / energy bounds (sequential execution)
    # ------------------------------------------------------------------
    def min_makespan(self) -> float:
        """Total time with every task at its fastest design point.

        Because all tasks share one processing element, the makespan of any
        full schedule is simply the sum of the chosen execution times; this
        is the smallest achievable value and the feasibility threshold used
        by ``EvaluateWindows`` (``CT(1)`` in the paper).
        """
        return sum(task.min_execution_time for task in self)

    def max_makespan(self) -> float:
        """Total time with every task at its slowest design point (``CT(m)``)."""
        return sum(task.max_execution_time for task in self)

    def min_total_energy(self) -> float:
        """Sum of per-task minimum energies (the paper's ``E_min``)."""
        return sum(task.min_energy for task in self)

    def max_total_energy(self) -> float:
        """Sum of per-task maximum energies (the paper's ``E_max``)."""
        return sum(task.max_energy for task in self)

    def uniform_design_point_count(self) -> int:
        """Return *m* when every task has the same number of design points.

        The paper assumes a uniform *m*; the core algorithm requires it to
        build rectangular matrices.  Raises :class:`TaskGraphError` when the
        counts differ or the graph is empty.
        """
        counts = {task.num_design_points for task in self}
        if not counts:
            raise TaskGraphError("task graph is empty")
        if len(counts) != 1:
            raise TaskGraphError(
                f"tasks have differing design-point counts: {sorted(counts)}"
            )
        return counts.pop()

    # ------------------------------------------------------------------
    # validation and conversion
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise a :class:`TaskGraphError` subclass on failure."""
        if not self._tasks:
            raise TaskGraphError("task graph has no tasks")
        # topological_order raises CyclicGraphError if a cycle slipped in.
        self.topological_order()
        for parent, child in self.edges():
            if parent not in self._tasks or child not in self._tasks:
                raise UnknownTaskError(
                    f"edge ({parent!r}, {child!r}) references an unknown task"
                )

    def to_networkx(self):
        """Convert to a ``networkx.DiGraph`` (nodes keep a ``task`` attribute)."""
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for task in self:
            graph.add_node(task.name, task=task)
        graph.add_edges_from(self.edges())
        return graph

    def copy(self) -> "TaskGraph":
        """Return a structural copy sharing the (immutable) Task objects."""
        return TaskGraph(name=self.name, tasks=self.tasks(), edges=self.edges())

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialise to a plain dictionary (JSON-friendly)."""
        return {
            "name": self.name,
            "tasks": [task.to_dict() for task in self],
            "edges": [list(edge) for edge in self.edges()],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TaskGraph":
        """Inverse of :meth:`to_dict`."""
        graph = cls(name=str(data.get("name", "")))
        for task_data in data["tasks"]:
            graph.add_task(Task.from_dict(task_data))
        for parent, child in data.get("edges", ()):
            graph.add_edge(parent, child)
        return graph

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"TaskGraph({label} {self.num_tasks} tasks, {self.num_edges} edges)"
