"""Tasks: nodes of the application task graph.

A task owns an ordered collection of :class:`~repro.taskgraph.DesignPoint`
objects.  The paper's algorithm relies on two canonical orderings of a
task's design points (Section 4):

* the *execution-time matrix* ``D`` stores each task's design points in
  ascending order of execution time, and
* the *current matrix* ``I`` stores them in descending order of current.

For physically sensible design points (faster implies more power hungry)
these two orderings coincide; :meth:`Task.ordered_design_points` produces
that canonical order (fastest / highest-current first) and is what the core
algorithm uses to build its matrices.  The original insertion order is also
preserved for callers that care about it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence, Tuple

from ..errors import DesignPointError, TaskGraphError
from .designpoint import DesignPoint

__all__ = ["Task"]


@dataclass(frozen=True)
class Task:
    """A schedulable unit of work with several implementation options.

    Parameters
    ----------
    name:
        Unique identifier within a task graph (e.g. ``"T7"``).
    design_points:
        Non-empty sequence of :class:`DesignPoint` options for this task.
    metadata:
        Free-form caller annotations (not interpreted by the library).
    """

    name: str
    design_points: Tuple[DesignPoint, ...]
    metadata: Mapping[str, Any] = field(default_factory=dict, compare=False)

    def __init__(
        self,
        name: str,
        design_points: Iterable[DesignPoint],
        metadata: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if not name:
            raise TaskGraphError("task name must be a non-empty string")
        points = tuple(design_points)
        if not points:
            raise DesignPointError(f"task {name!r} must have at least one design point")
        for point in points:
            if not isinstance(point, DesignPoint):
                raise DesignPointError(
                    f"task {name!r}: expected DesignPoint, got {type(point).__name__}"
                )
        object.__setattr__(self, "name", str(name))
        object.__setattr__(self, "design_points", points)
        object.__setattr__(self, "metadata", dict(metadata or {}))

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_design_points(self) -> int:
        """Number of design points available for this task."""
        return len(self.design_points)

    def design_point(self, index: int) -> DesignPoint:
        """Return the design point at ``index`` in insertion order."""
        return self.design_points[index]

    # ------------------------------------------------------------------
    # canonical ordering used by the core algorithm
    # ------------------------------------------------------------------
    def ordered_design_points(self) -> Tuple[DesignPoint, ...]:
        """Design points sorted fastest-first (ascending execution time).

        Ties on execution time are broken by descending current so that the
        ordering is deterministic.  This is the ordering used to build the
        paper's ``D`` and ``I`` matrices: column 1 is the fastest and most
        power-hungry implementation, column *m* the slowest and least
        power-hungry one.

        The ordering (and the derived ``D``/``I``/energy rows below) is
        computed once and cached: tasks are immutable, and the runtime
        simulator's policies consult these rows on every decision.
        """
        cached = self.__dict__.get("_ordered_points")
        if cached is None:
            cached = tuple(
                sorted(
                    self.design_points,
                    key=lambda dp: (dp.execution_time, -dp.current),
                )
            )
            object.__setattr__(self, "_ordered_points", cached)
        return cached

    def execution_times(self) -> Tuple[float, ...]:
        """Execution times in canonical (ascending) order — one row of ``D``."""
        cached = self.__dict__.get("_execution_times")
        if cached is None:
            cached = tuple(dp.execution_time for dp in self.ordered_design_points())
            object.__setattr__(self, "_execution_times", cached)
        return cached

    def currents(self) -> Tuple[float, ...]:
        """Currents in canonical order (descending for monotone DPs) — one row of ``I``."""
        cached = self.__dict__.get("_currents")
        if cached is None:
            cached = tuple(dp.current for dp in self.ordered_design_points())
            object.__setattr__(self, "_currents", cached)
        return cached

    def energies(self) -> Tuple[float, ...]:
        """Per-design-point energies in canonical order."""
        cached = self.__dict__.get("_energies")
        if cached is None:
            cached = tuple(dp.energy for dp in self.ordered_design_points())
            object.__setattr__(self, "_energies", cached)
        return cached

    # ------------------------------------------------------------------
    # aggregate statistics used as scheduling priorities
    # ------------------------------------------------------------------
    @property
    def average_energy(self) -> float:
        """Mean energy over all design points.

        ``SequenceDecEnergy`` schedules ready tasks in decreasing order of
        this quantity, and the energy vector ``E`` sorts tasks by increasing
        average energy.
        """
        return sum(dp.energy for dp in self.design_points) / len(self.design_points)

    @property
    def average_current(self) -> float:
        """Mean current over all design points (mA)."""
        return sum(dp.current for dp in self.design_points) / len(self.design_points)

    @property
    def min_energy(self) -> float:
        """Smallest per-execution energy over the design points."""
        return min(dp.energy for dp in self.design_points)

    @property
    def max_energy(self) -> float:
        """Largest per-execution energy over the design points."""
        return max(dp.energy for dp in self.design_points)

    @property
    def min_execution_time(self) -> float:
        """Execution time of the fastest design point."""
        return min(dp.execution_time for dp in self.design_points)

    @property
    def max_execution_time(self) -> float:
        """Execution time of the slowest design point."""
        return max(dp.execution_time for dp in self.design_points)

    @property
    def min_current(self) -> float:
        """Smallest design-point current (mA)."""
        return min(dp.current for dp in self.design_points)

    @property
    def max_current(self) -> float:
        """Largest design-point current (mA)."""
        return max(dp.current for dp in self.design_points)

    def is_power_monotone(self) -> bool:
        """True when faster design points never draw less current.

        The paper's data (and any voltage-scaled processor) satisfies this:
        shrinking the execution time requires a higher voltage/frequency and
        therefore a higher current.  Some algorithms (e.g. the window search)
        do not require monotonicity, but several invariants in the test-suite
        only hold for monotone tasks, so the check is exposed publicly.
        """
        ordered = self.ordered_design_points()
        return all(
            earlier.current >= later.current
            for earlier, later in zip(ordered, ordered[1:])
        )

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialise to a plain dictionary (JSON-friendly)."""
        data: dict = {
            "name": self.name,
            "design_points": [dp.to_dict() for dp in self.design_points],
        }
        if self.metadata:
            data["metadata"] = dict(self.metadata)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Task":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(data["name"]),
            design_points=[DesignPoint.from_dict(d) for d in data["design_points"]],
            metadata=dict(data.get("metadata", {})),
        )

    def __repr__(self) -> str:
        return f"Task({self.name!r}, {len(self.design_points)} design points)"
