"""Task-graph substrate: tasks, design points, DAGs, paper workloads.

This subpackage models the paper's application specification (Section 1): a
directed acyclic task graph whose nodes carry several *design points*
(implementation alternatives with known execution time and platform
current), plus the voltage-scaling rules used to synthesise design points
and verbatim builders for the paper's two evaluation graphs G2 and G3.
"""

from .designpoint import DesignPoint
from .graph import TaskGraph
from .io import load_json, save_json, to_dot
from .library import (
    G2_EDGES,
    G2_FIGURE5_DATA,
    G2_TABLE4_DEADLINES,
    G3_BETA,
    G3_DEADLINE,
    G3_EDGES,
    G3_TABLE1_DATA,
    G3_TABLE4_DEADLINES,
    build_g2,
    build_g3,
    paper_graphs,
    regenerate_g2_design_points,
    regenerate_g3_design_points,
)
from .optimize import (
    FUSE_SEPARATOR,
    OPTIMIZE_PASSES,
    CanonicalForm,
    CullResult,
    FuseResult,
    InlineResult,
    OptimizedGraph,
    canonical_form,
    cull,
    fuse,
    graph_signature,
    inline,
    optimize_graph,
    parse_passes,
)
from .scaling import (
    G2_SCALING_FACTORS,
    G3_SCALING_FACTORS,
    cubic_current,
    scaled_design_points,
    scaled_task_rows,
)
from .task import Task
from .validation import (
    require_connected_sinks,
    require_power_monotone,
    require_uniform_design_points,
    sequence_positions,
    validate_sequence,
)

__all__ = [
    "DesignPoint",
    "Task",
    "TaskGraph",
    "save_json",
    "load_json",
    "to_dot",
    "build_g2",
    "build_g3",
    "paper_graphs",
    "regenerate_g2_design_points",
    "regenerate_g3_design_points",
    "G2_EDGES",
    "G2_FIGURE5_DATA",
    "G2_TABLE4_DEADLINES",
    "G2_SCALING_FACTORS",
    "G3_BETA",
    "G3_DEADLINE",
    "G3_EDGES",
    "G3_TABLE1_DATA",
    "G3_TABLE4_DEADLINES",
    "G3_SCALING_FACTORS",
    "cubic_current",
    "scaled_design_points",
    "scaled_task_rows",
    "OPTIMIZE_PASSES",
    "FUSE_SEPARATOR",
    "parse_passes",
    "cull",
    "fuse",
    "inline",
    "canonical_form",
    "graph_signature",
    "optimize_graph",
    "CullResult",
    "FuseResult",
    "InlineResult",
    "CanonicalForm",
    "OptimizedGraph",
    "validate_sequence",
    "sequence_positions",
    "require_connected_sinks",
    "require_uniform_design_points",
    "require_power_monotone",
]
