"""Task-graph rewrite passes: cull, fuse, inline, canonical form.

A dask-style optimization layer over :class:`~repro.taskgraph.TaskGraph`
(ROADMAP item 2).  Each pass takes a graph and returns a *new* graph plus
enough bookkeeping to translate schedules back to the original:

* :func:`cull` drops every task with no path to a kept sink, generalising
  :func:`~repro.taskgraph.require_connected_sinks` from a checker into a
  rewrite;
* :func:`fuse` collapses linear chains (single-successor tasks feeding
  single-predecessor tasks) into compound tasks whose per-column design
  points sum the members' durations and charges exactly, and keeps an
  *unfuse* map so a schedule found on the fused graph can be expressed on
  the original one;
* :func:`inline` duplicates cheap zero-fanin tasks into each consumer
  (dask's ``inline``), trading duplicated work for fewer synchronisation
  edges — because it duplicates work it is *not* sigma-preserving for
  fanout > 1 and is therefore excluded from the spec-level pass list;
* :func:`canonical_form` relabels tasks by a content + structure signature
  (Weisfeiler–Leman-style refinement) so that structurally-isomorphic
  graphs canonicalise to the *same* graph, and :func:`graph_signature`
  hashes that canonical form — the content address used by the engine's
  structural job dedup.

Sigma-preservation contract (the conformance anchor of the optimize
layer): for ``cull`` + ``fuse``, the canonical evaluator
(:func:`repro.scheduling.evaluate_schedule`) expands every compound into
its recorded member segments, so any schedule of the optimized graph
costs exactly what its :meth:`OptimizedGraph.expand` translation costs on
the original graph — bitwise, for every chemistry, in both evaluation
modes.  The compound's *single* design point (summed duration,
charge-preserving average current) is only the search-time proxy: exact
for the ideal chemistry, an approximation for super-linear (Peukert) or
history-dependent (Rakhmatov–Vrudhula, KiBaM) ones, which is why the
final schedule is always expressible on the original graph through the
unfuse map.

>>> from repro.workloads import chain_graph
>>> graph = chain_graph(4, seed=1)
>>> result = fuse(graph)
>>> result.graph.num_tasks
1
>>> len(result.expand_sequence(result.graph.task_names())) == 4
True
"""

from __future__ import annotations

import hashlib
import heapq
import json
import math
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import ConfigurationError, TaskGraphError, UnknownTaskError
from .designpoint import DesignPoint
from .graph import TaskGraph
from .task import Task

__all__ = [
    "OPTIMIZE_PASSES",
    "FUSE_SEPARATOR",
    "parse_passes",
    "cull",
    "fuse",
    "inline",
    "canonical_form",
    "graph_signature",
    "optimize_graph",
    "CullResult",
    "FuseResult",
    "InlineResult",
    "CanonicalForm",
    "OptimizedGraph",
]

#: Passes accepted by :func:`optimize_graph` (and the scenario-spec
#: ``optimize`` field) — the sigma-preserving subset, in canonical order.
OPTIMIZE_PASSES: Tuple[str, ...] = ("cull", "fuse")

#: Separator joining member names into a compound (fused) task name.
FUSE_SEPARATOR = "+"


def parse_passes(text: str) -> Tuple[str, ...]:
    """Parse a pass list like ``"cull+fuse"`` (``+`` or ``,`` separated).

    Order is preserved, duplicates and unknown passes are rejected, and the
    empty string parses to no passes.

    >>> parse_passes("cull+fuse")
    ('cull', 'fuse')
    >>> parse_passes("")
    ()
    """
    tokens = [
        token.strip()
        for token in text.replace(",", FUSE_SEPARATOR).split(FUSE_SEPARATOR)
        if token.strip()
    ]
    for token in tokens:
        if token not in OPTIMIZE_PASSES:
            raise ConfigurationError(
                f"unknown optimize pass {token!r}; choose from {OPTIMIZE_PASSES}"
            )
    if len(set(tokens)) != len(tokens):
        raise ConfigurationError(f"duplicate optimize pass in {text!r}")
    return tuple(tokens)


# ----------------------------------------------------------------------
# cull
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CullResult:
    """Outcome of :func:`cull`: the pruned graph and what was dropped."""

    graph: TaskGraph
    """Graph containing only tasks with a path to a kept sink."""

    removed: Tuple[str, ...]
    """Culled task names, in original insertion order."""

    sinks: Tuple[str, ...]
    """The sinks that were kept."""


def cull(graph: TaskGraph, sinks: Optional[Sequence[str]] = None) -> CullResult:
    """Drop every task with no path to a kept sink.

    ``sinks`` defaults to all of the graph's exit tasks, in which case
    nothing is removed (every task of a DAG reaches some exit).  Naming a
    subset keeps exactly the tasks that are one of the sinks or an ancestor
    of one — the rewrite form of
    :func:`~repro.taskgraph.require_connected_sinks`.

    Insertion order of the kept tasks, and therefore ``edges()`` order and
    topological tie-breaking, is preserved.
    """
    if sinks is None:
        kept_sinks: Tuple[str, ...] = graph.exit_tasks()
    else:
        kept_sinks = tuple(sinks)
        if not kept_sinks:
            raise ConfigurationError("cull requires at least one sink to keep")
    keep: Set[str] = set()
    for sink in kept_sinks:
        if sink not in graph:
            raise UnknownTaskError(f"unknown sink task {sink!r}")
        keep.add(sink)
        keep.update(graph.ancestors(sink))
    culled = TaskGraph(name=graph.name)
    for task in graph:
        if task.name in keep:
            culled.add_task(task)
    for parent, child in graph.edges():
        if parent in keep and child in keep:
            culled.add_edge(parent, child)
    removed = tuple(name for name in graph.task_names() if name not in keep)
    return CullResult(graph=culled, removed=removed, sinks=kept_sinks)


# ----------------------------------------------------------------------
# fuse
# ----------------------------------------------------------------------
def _linear_chains(graph: TaskGraph) -> List[Tuple[str, ...]]:
    """Maximal linear chains (each link single-successor -> single-predecessor)."""
    chains: List[Tuple[str, ...]] = []
    seen: Set[str] = set()
    for name in graph.topological_order():
        if name in seen:
            continue
        preds = graph.predecessors(name)
        if len(preds) == 1:
            (parent,) = preds
            if len(graph.successors(parent)) == 1:
                continue  # interior node; reached from its chain head
        chain = [name]
        seen.add(name)
        current = name
        while True:
            succs = graph.successors(current)
            if len(succs) != 1:
                break
            (child,) = succs
            if len(graph.predecessors(child)) != 1:
                break
            chain.append(child)
            seen.add(child)
            current = child
        if len(chain) >= 2:
            chains.append(tuple(chain))
    return chains


def _compound_task(graph: TaskGraph, members: Tuple[str, ...], name: str) -> Optional[Task]:
    """Build the compound task for a chain, or ``None`` when it cannot fuse.

    Column ``j`` of the compound runs every member at *its* column ``j``
    (canonical fastest-first order), so durations and charges sum exactly:
    ``T_j = fsum(t_ij)`` and ``I_j = fsum(t_ij * I_ij) / T_j`` — the
    charge-preserving average current.  That single design point is the
    *search-time proxy* (exact for the ideal chemistry, an approximation
    for super-linear or history-dependent ones); the exact per-member
    ``(duration, current)`` rows are kept per column in the task's
    ``fused_segments`` metadata, which the canonical evaluator expands so
    a compound interval costs exactly what its members cost back to back.
    Chains whose members disagree on the design-point count, or whose
    summed columns would not survive the canonical (time, -current)
    re-sort unchanged, are left unfused.
    """
    tasks = [graph.task(member) for member in members]
    counts = {task.num_design_points for task in tasks}
    if len(counts) != 1:
        return None
    columns = counts.pop()
    points: List[DesignPoint] = []
    segments: List[List[List[float]]] = []
    for j in range(columns):
        duration = math.fsum(task.execution_times()[j] for task in tasks)
        charge = math.fsum(
            task.execution_times()[j] * task.currents()[j] for task in tasks
        )
        points.append(
            DesignPoint(execution_time=duration, current=charge / duration)
        )
        segments.append(
            [[task.execution_times()[j], task.currents()[j]] for task in tasks]
        )
    compound = Task(
        name=name,
        design_points=points,
        metadata={"fused": list(members), "fused_segments": segments},
    )
    # Column alignment is load-bearing: assignment columns index the
    # canonical order, so the compound's canonical order must equal its
    # construction order or column j would no longer mean "every member
    # at column j".
    if compound.ordered_design_points() != compound.design_points:
        return None
    return compound


@dataclass(frozen=True)
class FuseResult:
    """Outcome of :func:`fuse`: the fused graph plus the unfuse map."""

    graph: TaskGraph
    """Graph with each fused chain replaced by one compound task."""

    chains: Mapping[str, Tuple[str, ...]]
    """Compound task name -> member names, in chain (execution) order."""

    def expand_sequence(self, sequence: Sequence[str]) -> Tuple[str, ...]:
        """Translate a fused-graph sequence to the original task names."""
        expanded: List[str] = []
        for name in sequence:
            expanded.extend(self.chains.get(name, (name,)))
        return tuple(expanded)

    def expand_assignment(self, assignment: Mapping[str, int]) -> Dict[str, int]:
        """Translate a fused-graph column assignment to the original tasks.

        Compound column ``j`` maps to column ``j`` for every member (the
        compound's columns were built member-column-aligned).
        """
        expanded: Dict[str, int] = {}
        for name, column in assignment.items():
            for member in self.chains.get(name, (name,)):
                expanded[member] = int(column)
        return expanded

    def expand(
        self, sequence: Sequence[str], assignment: Mapping[str, int]
    ) -> Tuple[Tuple[str, ...], Dict[str, int]]:
        """Translate a full fused-graph schedule to the original graph."""
        return self.expand_sequence(sequence), self.expand_assignment(assignment)


def fuse(graph: TaskGraph) -> FuseResult:
    """Collapse every maximal linear chain into one compound task.

    A chain is fusable when every link is single-successor feeding
    single-predecessor; the compound's design points sum the members'
    durations and charges exactly (see :func:`_compound_task`).  The
    returned :class:`FuseResult` carries the unfuse map so the final
    schedule can always be expressed on the original graph.
    """
    chains: Dict[str, Tuple[str, ...]] = {}
    member_of: Dict[str, str] = {}
    compounds: Dict[str, Task] = {}
    taken = set(graph.task_names())
    for members in _linear_chains(graph):
        name = FUSE_SEPARATOR.join(members)
        while name in taken:  # collision with an unrelated task name
            name += "~"
        compound = _compound_task(graph, members, name)
        if compound is None:
            continue
        taken.add(name)
        chains[name] = members
        compounds[name] = compound
        for member in members:
            member_of[member] = name
    fused = TaskGraph(name=graph.name)
    added: Set[str] = set()
    for task in graph:  # insertion order; compound sits at its head's slot
        home = member_of.get(task.name)
        if home is None:
            fused.add_task(task)
        elif home not in added:
            fused.add_task(compounds[home])
            added.add(home)
    for parent, child in graph.edges():
        new_parent = member_of.get(parent, parent)
        new_child = member_of.get(child, child)
        if new_parent != new_child:
            fused.add_edge(new_parent, new_child)
    return FuseResult(graph=fused, chains=chains)


# ----------------------------------------------------------------------
# inline
# ----------------------------------------------------------------------
def _default_inline_predicate(task: Task) -> bool:
    """Inline "constants": tasks with a single design point (no freedom)."""
    return task.num_design_points == 1


@dataclass(frozen=True)
class InlineResult:
    """Outcome of :func:`inline`: the rewritten graph and what was copied."""

    graph: TaskGraph
    """Graph with each inlined task duplicated into its consumers."""

    inlined: Mapping[str, Tuple[str, ...]]
    """Inlined source name -> the consumers that received a private copy."""


def inline(
    graph: TaskGraph,
    predicate: Optional[Callable[[Task], bool]] = None,
) -> InlineResult:
    """Duplicate cheap zero-fanin tasks into each of their consumers.

    Like dask's ``inline``: a zero-fanin task approved by ``predicate``
    (default: single design point) with at least one successor is removed,
    and every consumer gains a private copy named ``source@consumer``.
    With fanout > 1 the work is *duplicated*, so this pass trades total
    energy for fewer synchronisation edges — it is deliberately excluded
    from the sigma-preserving spec-level passes.
    """
    accept = predicate if predicate is not None else _default_inline_predicate
    position = {name: index for index, name in enumerate(graph.task_names())}
    sources: Dict[str, Tuple[str, ...]] = {}
    for name in graph.task_names():
        if graph.predecessors(name):
            continue
        successors = graph.successors(name)
        if not successors:
            continue  # an isolated source is also a sink; nothing to inline into
        if accept(graph.task(name)):
            sources[name] = tuple(sorted(successors, key=position.__getitem__))
    if not sources:
        return InlineResult(graph=graph.copy(), inlined={})
    copies: Dict[str, List[Tuple[str, str]]] = {}  # consumer -> [(copy, source)]
    for source, consumers in sources.items():
        for consumer in consumers:
            copy_name = f"{source}@{consumer}"
            while copy_name in graph:
                copy_name += "~"
            copies.setdefault(consumer, []).append((copy_name, source))
    rewritten = TaskGraph(name=graph.name)
    for task in graph:
        if task.name in sources:
            continue
        for copy_name, source in copies.get(task.name, ()):
            original = graph.task(source)
            rewritten.add_task(
                Task(
                    name=copy_name,
                    design_points=original.design_points,
                    metadata={**original.metadata, "inlined_from": source},
                )
            )
        rewritten.add_task(task)
    for parent, child in graph.edges():
        if parent in sources:
            continue
        rewritten.add_edge(parent, child)
    for consumer, pairs in copies.items():
        for copy_name, _ in pairs:
            rewritten.add_edge(copy_name, consumer)
    return InlineResult(graph=rewritten, inlined=sources)


# ----------------------------------------------------------------------
# canonical form
# ----------------------------------------------------------------------
def _digest(payload: Any) -> str:
    """Short stable hash of a JSON-serialisable payload."""
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:16]


def _content_signature(task: Task) -> str:
    """Name-free content hash of a task: its canonical design-point rows."""
    return _digest(
        [
            [dp.execution_time, dp.current, dp.voltage]
            for dp in task.ordered_design_points()
        ]
    )


def _refine_signatures(graph: TaskGraph) -> Dict[str, str]:
    """Weisfeiler–Leman-style refinement of per-task structural signatures.

    Starts from name-free content hashes and repeatedly folds in the
    signature multisets of predecessors and successors until the induced
    partition stops splitting.  Tasks left with equal signatures are
    structurally indistinguishable at WL resolution (automorphic in every
    graph this library generates).
    """
    names = graph.task_names()
    signature = {name: _content_signature(graph.task(name)) for name in names}
    groups = len(set(signature.values()))
    for _ in range(len(names)):
        signature = {
            name: _digest(
                [
                    signature[name],
                    sorted(signature[p] for p in graph.predecessors(name)),
                    sorted(signature[s] for s in graph.successors(name)),
                ]
            )
            for name in names
        }
        refined = len(set(signature.values()))
        if refined == groups:
            break
        groups = refined
    return signature


@dataclass(frozen=True)
class CanonicalForm:
    """Outcome of :func:`canonical_form`: the relabeled graph and the map."""

    graph: TaskGraph
    """Canonical graph: tasks named ``v0..vN`` in signature-topological order."""

    mapping: Mapping[str, str]
    """Original task name -> canonical task name."""

    @property
    def inverse(self) -> Dict[str, str]:
        """Canonical task name -> original task name."""
        return {canon: orig for orig, canon in self.mapping.items()}


def canonical_form(graph: TaskGraph) -> CanonicalForm:
    """Content-addressed canonicalization of a task graph.

    Tasks are relabeled ``v0..vN`` in a topological order keyed on their
    refined structural signature (see :func:`_refine_signatures`), design
    points are re-sorted into canonical order with presentation labels
    dropped, and edges are emitted sorted — so two graphs that differ only
    in task naming, insertion order, design-point listing order, or
    metadata canonicalise to equal graphs.  Signature ties (automorphic
    tasks) fall back to insertion order, which cannot change the resulting
    canonical graph precisely because such tasks are interchangeable.
    """
    signature = _refine_signatures(graph)
    position = {name: index for index, name in enumerate(graph.task_names())}
    indegree = {name: len(graph.predecessors(name)) for name in graph.task_names()}
    ready = [
        (signature[name], position[name], name)
        for name in graph.task_names()
        if indegree[name] == 0
    ]
    heapq.heapify(ready)
    order: List[str] = []
    while ready:
        _, _, name = heapq.heappop(ready)
        order.append(name)
        for child in graph.successors(name):
            indegree[child] -= 1
            if indegree[child] == 0:
                heapq.heappush(ready, (signature[child], position[child], child))
    if len(order) != graph.num_tasks:
        raise TaskGraphError("task graph contains a cycle")
    mapping = {name: f"v{index}" for index, name in enumerate(order)}
    canonical = TaskGraph(name="")
    for name in order:
        task = graph.task(name)
        canonical.add_task(
            Task(
                name=mapping[name],
                design_points=[
                    DesignPoint(
                        execution_time=dp.execution_time,
                        current=dp.current,
                        voltage=dp.voltage,
                    )
                    for dp in task.ordered_design_points()
                ],
            )
        )
    canonical_edges = sorted(
        (mapping[parent], mapping[child]) for parent, child in graph.edges()
    )
    for parent, child in canonical_edges:
        canonical.add_edge(parent, child)
    return CanonicalForm(graph=canonical, mapping=mapping)


def graph_signature(graph: TaskGraph) -> str:
    """Content address of a graph's canonical form.

    Equal for structurally-isomorphic graphs (same shape, same design-point
    values) regardless of task names, insertion order, or metadata; this is
    the key the engine's structural dedup groups jobs by.

    >>> from repro.workloads import chain_graph
    >>> a = chain_graph(3, seed=5)
    >>> b = TaskGraph.from_dict(a.to_dict())
    >>> b.name = "renamed"
    >>> graph_signature(a) == graph_signature(b)
    True
    """
    canonical = canonical_form(graph).graph
    return _digest(
        {
            "tasks": [task.to_dict() for task in canonical],
            "edges": [list(edge) for edge in canonical.edges()],
        }
    )


# ----------------------------------------------------------------------
# pass pipeline
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OptimizedGraph:
    """Outcome of :func:`optimize_graph`: the final graph plus translations.

    ``expand``/``expand_sequence``/``expand_assignment`` translate a
    schedule of :attr:`graph` back to the *culled* original — culled tasks
    are dead by construction (no path to a kept sink), so they have no
    place in any schedule.
    """

    graph: TaskGraph
    """The graph after all requested passes."""

    passes: Tuple[str, ...]
    """The passes that were applied, in order."""

    removed: Tuple[str, ...] = ()
    """Tasks dropped by ``cull`` (empty when cull kept everything)."""

    chains: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    """Compound task name -> members, from the ``fuse`` pass."""

    def expand_sequence(self, sequence: Sequence[str]) -> Tuple[str, ...]:
        """Translate an optimized-graph sequence to original task names."""
        expanded: List[str] = []
        for name in sequence:
            expanded.extend(self.chains.get(name, (name,)))
        return tuple(expanded)

    def expand_assignment(self, assignment: Mapping[str, int]) -> Dict[str, int]:
        """Translate an optimized-graph column assignment to original tasks."""
        expanded: Dict[str, int] = {}
        for name, column in assignment.items():
            for member in self.chains.get(name, (name,)):
                expanded[member] = int(column)
        return expanded

    def expand(
        self, sequence: Sequence[str], assignment: Mapping[str, int]
    ) -> Tuple[Tuple[str, ...], Dict[str, int]]:
        """Translate a full optimized-graph schedule back."""
        return self.expand_sequence(sequence), self.expand_assignment(assignment)


def optimize_graph(
    graph: TaskGraph,
    passes: Sequence[str] = OPTIMIZE_PASSES,
    sinks: Optional[Sequence[str]] = None,
) -> OptimizedGraph:
    """Apply the sigma-preserving passes (``cull``, ``fuse``) in order.

    ``sinks`` feeds the cull pass (default: every exit task, i.e. cull
    removes nothing).  Unknown passes raise
    :class:`~repro.errors.ConfigurationError`.
    """
    applied: List[str] = []
    removed: Tuple[str, ...] = ()
    chains: Dict[str, Tuple[str, ...]] = {}
    current = graph
    for name in passes:
        if name not in OPTIMIZE_PASSES:
            raise ConfigurationError(
                f"unknown optimize pass {name!r}; choose from {OPTIMIZE_PASSES}"
            )
        if name in applied:
            raise ConfigurationError(f"duplicate optimize pass {name!r}")
        if name == "cull":
            result = cull(current, sinks=sinks)
            removed = result.removed
            current = result.graph
        else:  # fuse
            fused = fuse(current)
            chains = dict(fused.chains)
            current = fused.graph
        applied.append(name)
    return OptimizedGraph(
        graph=current, passes=tuple(applied), removed=removed, chains=chains
    )
