"""Serialisation of task graphs: JSON files and Graphviz DOT export.

The JSON format is a direct dump of :meth:`TaskGraph.to_dict` and is stable
across library versions; it is what the CLI reads and writes so that problem
instances can be shared between machines or checked into a repository.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .graph import TaskGraph

__all__ = ["save_json", "load_json", "dumps", "loads", "to_dot"]

_PathLike = Union[str, Path]


def _dot_escape(text: str) -> str:
    """Escape a string for use inside a double-quoted DOT string literal.

    DOT quoted strings treat ``\\`` as an escape introducer and ``"`` as the
    terminator, so both must be escaped (backslash first, or the escapes
    themselves would be re-escaped).
    """
    return text.replace("\\", "\\\\").replace('"', '\\"')


def dumps(graph: TaskGraph, indent: int = 2) -> str:
    """Serialise a task graph to a JSON string."""
    return json.dumps(graph.to_dict(), indent=indent, sort_keys=False)


def loads(text: str) -> TaskGraph:
    """Parse a task graph from a JSON string produced by :func:`dumps`."""
    return TaskGraph.from_dict(json.loads(text))


def save_json(graph: TaskGraph, path: _PathLike, indent: int = 2) -> Path:
    """Write a task graph to ``path`` as JSON; returns the path written."""
    path = Path(path)
    path.write_text(dumps(graph, indent=indent), encoding="utf-8")
    return path


def load_json(path: _PathLike) -> TaskGraph:
    """Read a task graph previously written with :func:`save_json`."""
    return loads(Path(path).read_text(encoding="utf-8"))


def to_dot(graph: TaskGraph, include_design_points: bool = False) -> str:
    """Render the task graph as Graphviz DOT text.

    Parameters
    ----------
    include_design_points:
        When true, each node label also lists the per-design-point
        ``current@duration`` pairs, which is handy for small graphs such as
        G2 but unwieldy for large synthetic ones.
    """
    lines = [f'digraph "{_dot_escape(graph.name or "taskgraph")}" {{', "  rankdir=TB;"]
    for task in graph:
        if include_design_points:
            points = "\\n".join(
                f"{_dot_escape(dp.name) or i + 1}: "
                f"{dp.current:g}mA @ {dp.execution_time:g}"
                for i, dp in enumerate(task.ordered_design_points())
            )
            label = f"{_dot_escape(task.name)}\\n{points}"
        else:
            label = _dot_escape(task.name)
        lines.append(f'  "{_dot_escape(task.name)}" [label="{label}"];')
    for parent, child in graph.edges():
        lines.append(f'  "{_dot_escape(parent)}" -> "{_dot_escape(child)}";')
    lines.append("}")
    return "\n".join(lines)
