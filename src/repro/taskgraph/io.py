"""Serialisation of task graphs: JSON files and Graphviz DOT export.

The JSON format is a direct dump of :meth:`TaskGraph.to_dict` and is stable
across library versions; it is what the CLI reads and writes so that problem
instances can be shared between machines or checked into a repository.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .graph import TaskGraph

__all__ = ["save_json", "load_json", "dumps", "loads", "to_dot"]

_PathLike = Union[str, Path]


def dumps(graph: TaskGraph, indent: int = 2) -> str:
    """Serialise a task graph to a JSON string."""
    return json.dumps(graph.to_dict(), indent=indent, sort_keys=False)


def loads(text: str) -> TaskGraph:
    """Parse a task graph from a JSON string produced by :func:`dumps`."""
    return TaskGraph.from_dict(json.loads(text))


def save_json(graph: TaskGraph, path: _PathLike, indent: int = 2) -> Path:
    """Write a task graph to ``path`` as JSON; returns the path written."""
    path = Path(path)
    path.write_text(dumps(graph, indent=indent), encoding="utf-8")
    return path


def load_json(path: _PathLike) -> TaskGraph:
    """Read a task graph previously written with :func:`save_json`."""
    return loads(Path(path).read_text(encoding="utf-8"))


def to_dot(graph: TaskGraph, include_design_points: bool = False) -> str:
    """Render the task graph as Graphviz DOT text.

    Parameters
    ----------
    include_design_points:
        When true, each node label also lists the per-design-point
        ``current@duration`` pairs, which is handy for small graphs such as
        G2 but unwieldy for large synthetic ones.
    """
    lines = [f'digraph "{graph.name or "taskgraph"}" {{', "  rankdir=TB;"]
    for task in graph:
        if include_design_points:
            points = "\\n".join(
                f"{dp.name or i + 1}: {dp.current:g}mA @ {dp.execution_time:g}"
                for i, dp in enumerate(task.ordered_design_points())
            )
            label = f"{task.name}\\n{points}"
        else:
            label = task.name
        lines.append(f'  "{task.name}" [label="{label}"];')
    for parent, child in graph.edges():
        lines.append(f'  "{parent}" -> "{child}";')
    lines.append("}")
    return "\n".join(lines)
