"""Deadline and battery sweeps (extension experiment E9).

Two sweeps extend the paper's point comparisons into curves:

* :func:`deadline_sweep` — for one graph, scan the deadline from just above
  the all-fastest makespan to the all-slowest makespan and record the
  battery cost of the iterative heuristic and the baselines at every point.
  The paper's Table 4 rows are three samples of this curve per graph.
* :func:`beta_sweep` — fix the deadline and scan the battery's diffusion
  parameter ``beta``: as the battery approaches ideal behaviour the gap
  between battery-aware and energy-only scheduling should close, which is
  the motivating claim of Section 3.

Both sweeps submit their (coordinate, algorithm) grid to the experiment
engine (:mod:`repro.engine`), so they fan out across worker processes via
``executor=``, share the battery-cost cache within each worker, and resume
from a :class:`~repro.engine.ResultStore` when asked.  A failed cell
surfaces as ``inf`` instead of aborting the sweep.  Passing an explicit
``algorithms`` mapping of callables bypasses the engine and evaluates them
in-process (the legacy path, kept for ad-hoc algorithm experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis import TextTable
from ..baselines import (
    all_fastest_baseline,
    best_uniform_baseline,
    chowdhury_baseline,
    rakhmatov_baseline,
)
from ..battery import BatterySpec
from ..core import SchedulerConfig, battery_aware_schedule
from ..engine import ResultStore, run_experiments
from ..errors import ConfigurationError
from ..scheduling import SchedulingProblem
from ..taskgraph import TaskGraph

__all__ = [
    "SweepPoint",
    "SweepResult",
    "SWEEP_ALGORITHMS",
    "default_algorithms",
    "deadline_sweep",
    "beta_sweep",
]

#: The sweep's algorithm set as (display label, engine registry name) pairs.
SWEEP_ALGORITHMS: Tuple[Tuple[str, str], ...] = (
    ("iterative (ours)", "iterative"),
    ("dp-energy+greedy", "dp-energy+greedy"),
    ("last-task-first", "last-task-first"),
    ("best-uniform", "best-uniform"),
    ("all-fastest", "all-fastest"),
)


@dataclass(frozen=True)
class SweepPoint:
    """Costs of every algorithm at one sweep coordinate."""

    coordinate: float
    """The swept value (a deadline or a beta)."""

    costs: Dict[str, float]
    """Algorithm name -> battery cost sigma (inf when the algorithm failed)."""


@dataclass(frozen=True)
class SweepResult:
    """A labelled series of sweep points."""

    parameter: str
    graph_name: str
    points: Tuple[SweepPoint, ...]
    algorithms: Tuple[str, ...]

    def to_table(self) -> TextTable:
        """One row per sweep coordinate, one sigma column per algorithm."""
        table = TextTable(
            title=f"{self.parameter} sweep on {self.graph_name}",
            headers=(self.parameter, *self.algorithms),
        )
        for point in self.points:
            table.add_row(point.coordinate, *(point.costs[name] for name in self.algorithms))
        return table

    def series(self, algorithm: str) -> Tuple[float, ...]:
        """The cost curve of one algorithm across the sweep."""
        return tuple(point.costs[algorithm] for point in self.points)


def default_algorithms(
    config: Optional[SchedulerConfig] = None,
) -> Dict[str, Callable[[SchedulingProblem], object]]:
    """The sweep's algorithm set as in-process callables (legacy path)."""
    scheduler_config = config or SchedulerConfig()
    return {
        "iterative (ours)": lambda problem: battery_aware_schedule(problem, config=scheduler_config),
        "dp-energy+greedy": rakhmatov_baseline,
        "last-task-first": chowdhury_baseline,
        "best-uniform": best_uniform_baseline,
        "all-fastest": all_fastest_baseline,
    }


def _evaluate(problem: SchedulingProblem, algorithms: Mapping[str, Callable]) -> Dict[str, float]:
    costs: Dict[str, float] = {}
    for name, algorithm in algorithms.items():
        try:
            result = algorithm(problem)
            costs[name] = float(result.cost)
        except Exception:
            costs[name] = float("inf")
    return costs


def _engine_points(
    problems: Sequence[SchedulingProblem],
    coordinates: Sequence[float],
    executor,
    store: Optional[ResultStore],
    resume: bool,
    seed: Optional[int] = None,
) -> List[SweepPoint]:
    """Run the sweep grid through the engine and fold results into points."""
    engine_names = [engine for _, engine in SWEEP_ALGORITHMS]
    run = run_experiments(
        problems,
        engine_names,
        executor=executor,
        store=store,
        resume=resume,
        params={"seed": int(seed)} if seed is not None else None,
    )
    per_problem = len(engine_names)
    points: List[SweepPoint] = []
    for index, coordinate in enumerate(coordinates):
        row = run.results[index * per_problem : (index + 1) * per_problem]
        costs = {
            display: float(result.cost) if result.ok else float("inf")
            for (display, _), result in zip(SWEEP_ALGORITHMS, row)
        }
        points.append(SweepPoint(coordinate=coordinate, costs=costs))
    return points


def deadline_sweep(
    graph: TaskGraph,
    num_points: int = 8,
    battery: Optional[BatterySpec] = None,
    algorithms: Optional[Mapping[str, Callable]] = None,
    margin: float = 0.02,
    executor=None,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    seed: Optional[int] = None,
) -> SweepResult:
    """Scan the deadline between the all-fastest and all-slowest makespans.

    ``margin`` keeps the tightest point slightly above the all-fastest
    makespan so every algorithm has at least a sliver of slack to work with.
    ``seed`` is merged into every engine job's parameters: stochastic
    algorithms consume it, deterministic ones record it in their job keys
    (so stores keep per-seed results apart).
    """
    if num_points < 2:
        raise ConfigurationError("num_points must be >= 2")
    battery = battery or BatterySpec()
    lo = graph.min_makespan()
    hi = graph.max_makespan()
    span = hi - lo
    deadlines: List[float] = []
    problems: List[SchedulingProblem] = []
    for index in range(num_points):
        fraction = margin + (1.0 - margin) * index / (num_points - 1)
        deadline = lo + fraction * span
        deadlines.append(deadline)
        problems.append(
            SchedulingProblem(
                graph=graph, deadline=deadline, battery=battery, name=f"{graph.name}@{deadline:.1f}"
            )
        )

    if algorithms is not None:
        algorithms = dict(algorithms)
        points = [
            SweepPoint(coordinate=deadline, costs=_evaluate(problem, algorithms))
            for deadline, problem in zip(deadlines, problems)
        ]
        labels = tuple(algorithms)
    else:
        points = _engine_points(
            problems, deadlines, executor, store, resume, seed=seed
        )
        labels = tuple(display for display, _ in SWEEP_ALGORITHMS)
    return SweepResult(
        parameter="deadline",
        graph_name=graph.name or "graph",
        points=tuple(points),
        algorithms=labels,
    )


def beta_sweep(
    graph: TaskGraph,
    deadline: float,
    betas: Sequence[float] = (0.1, 0.2, 0.273, 0.4, 0.8, 1.6, 5.0),
    algorithms: Optional[Mapping[str, Callable]] = None,
    executor=None,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    seed: Optional[int] = None,
) -> SweepResult:
    """Scan the battery diffusion parameter at a fixed deadline."""
    if not betas:
        raise ConfigurationError("at least one beta value is required")
    problems = [
        SchedulingProblem(
            graph=graph,
            deadline=deadline,
            battery=BatterySpec(beta=beta),
            name=f"{graph.name}@beta={beta:g}",
        )
        for beta in betas
    ]

    if algorithms is not None:
        algorithms = dict(algorithms)
        points = [
            SweepPoint(coordinate=float(beta), costs=_evaluate(problem, algorithms))
            for beta, problem in zip(betas, problems)
        ]
        labels = tuple(algorithms)
    else:
        points = _engine_points(
            problems,
            [float(beta) for beta in betas],
            executor,
            store,
            resume,
            seed=seed,
        )
        labels = tuple(display for display, _ in SWEEP_ALGORITHMS)
    return SweepResult(
        parameter="beta",
        graph_name=graph.name or "graph",
        points=tuple(points),
        algorithms=labels,
    )
