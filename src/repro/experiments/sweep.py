"""Deadline and battery sweeps (extension experiment E9).

Two sweeps extend the paper's point comparisons into curves:

* :func:`deadline_sweep` — for one graph, scan the deadline from just above
  the all-fastest makespan to the all-slowest makespan and record the
  battery cost of the iterative heuristic and the baselines at every point.
  The paper's Table 4 rows are three samples of this curve per graph.
* :func:`beta_sweep` — fix the deadline and scan the battery's diffusion
  parameter ``beta``: as the battery approaches ideal behaviour the gap
  between battery-aware and energy-only scheduling should close, which is
  the motivating claim of Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis import TextTable
from ..baselines import (
    all_fastest_baseline,
    best_uniform_baseline,
    chowdhury_baseline,
    rakhmatov_baseline,
)
from ..battery import BatterySpec
from ..core import SchedulerConfig, battery_aware_schedule
from ..errors import ConfigurationError
from ..scheduling import SchedulingProblem
from ..taskgraph import TaskGraph

__all__ = ["SweepPoint", "SweepResult", "default_algorithms", "deadline_sweep", "beta_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """Costs of every algorithm at one sweep coordinate."""

    coordinate: float
    """The swept value (a deadline or a beta)."""

    costs: Dict[str, float]
    """Algorithm name -> battery cost sigma (inf when the algorithm failed)."""


@dataclass(frozen=True)
class SweepResult:
    """A labelled series of sweep points."""

    parameter: str
    graph_name: str
    points: Tuple[SweepPoint, ...]
    algorithms: Tuple[str, ...]

    def to_table(self) -> TextTable:
        """One row per sweep coordinate, one sigma column per algorithm."""
        table = TextTable(
            title=f"{self.parameter} sweep on {self.graph_name}",
            headers=(self.parameter, *self.algorithms),
        )
        for point in self.points:
            table.add_row(point.coordinate, *(point.costs[name] for name in self.algorithms))
        return table

    def series(self, algorithm: str) -> Tuple[float, ...]:
        """The cost curve of one algorithm across the sweep."""
        return tuple(point.costs[algorithm] for point in self.points)


def default_algorithms(
    config: Optional[SchedulerConfig] = None,
) -> Dict[str, Callable[[SchedulingProblem], object]]:
    """The algorithm set used by the sweeps: ours plus three baselines."""
    scheduler_config = config or SchedulerConfig()
    return {
        "iterative (ours)": lambda problem: battery_aware_schedule(problem, config=scheduler_config),
        "dp-energy+greedy": rakhmatov_baseline,
        "last-task-first": chowdhury_baseline,
        "best-uniform": best_uniform_baseline,
        "all-fastest": all_fastest_baseline,
    }


def _evaluate(problem: SchedulingProblem, algorithms: Mapping[str, Callable]) -> Dict[str, float]:
    costs: Dict[str, float] = {}
    for name, algorithm in algorithms.items():
        try:
            result = algorithm(problem)
            costs[name] = float(result.cost)
        except Exception:
            costs[name] = float("inf")
    return costs


def deadline_sweep(
    graph: TaskGraph,
    num_points: int = 8,
    battery: Optional[BatterySpec] = None,
    algorithms: Optional[Mapping[str, Callable]] = None,
    margin: float = 0.02,
) -> SweepResult:
    """Scan the deadline between the all-fastest and all-slowest makespans.

    ``margin`` keeps the tightest point slightly above the all-fastest
    makespan so every algorithm has at least a sliver of slack to work with.
    """
    if num_points < 2:
        raise ConfigurationError("num_points must be >= 2")
    battery = battery or BatterySpec()
    algorithms = dict(algorithms) if algorithms is not None else default_algorithms()
    lo = graph.min_makespan()
    hi = graph.max_makespan()
    span = hi - lo
    points: List[SweepPoint] = []
    for index in range(num_points):
        fraction = margin + (1.0 - margin) * index / (num_points - 1)
        deadline = lo + fraction * span
        problem = SchedulingProblem(
            graph=graph, deadline=deadline, battery=battery, name=f"{graph.name}@{deadline:.1f}"
        )
        points.append(SweepPoint(coordinate=deadline, costs=_evaluate(problem, algorithms)))
    return SweepResult(
        parameter="deadline",
        graph_name=graph.name or "graph",
        points=tuple(points),
        algorithms=tuple(algorithms),
    )


def beta_sweep(
    graph: TaskGraph,
    deadline: float,
    betas: Sequence[float] = (0.1, 0.2, 0.273, 0.4, 0.8, 1.6, 5.0),
    algorithms: Optional[Mapping[str, Callable]] = None,
) -> SweepResult:
    """Scan the battery diffusion parameter at a fixed deadline."""
    if not betas:
        raise ConfigurationError("at least one beta value is required")
    algorithms = dict(algorithms) if algorithms is not None else default_algorithms()
    points: List[SweepPoint] = []
    for beta in betas:
        problem = SchedulingProblem(
            graph=graph,
            deadline=deadline,
            battery=BatterySpec(beta=beta),
            name=f"{graph.name}@beta={beta:g}",
        )
        points.append(SweepPoint(coordinate=float(beta), costs=_evaluate(problem, algorithms)))
    return SweepResult(
        parameter="beta",
        graph_name=graph.name or "graph",
        points=tuple(points),
        algorithms=tuple(algorithms),
    )
