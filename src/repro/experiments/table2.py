"""Reproduction of Table 2: task sequences and design points per iteration.

For every iteration of the illustrative G3 run the paper lists the task
sequence ``S<i>`` used for design-point allocation, the design points chosen
for that sequence, and the weighted sequence ``S<i>w`` handed to the next
iteration.  :func:`run_table2` regenerates exactly those rows from the
scheduler's iteration history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..analysis import TextTable
from ..core import SchedulerConfig, SchedulingSolution
from .illustrative import run_illustrative_example

__all__ = ["Table2Row", "Table2Result", "run_table2"]


@dataclass(frozen=True)
class Table2Row:
    """One printed row of Table 2."""

    iteration: int
    label: str
    """``"S<i>"`` for the allocation sequence, ``"S<i>w"`` for the weighted one."""
    sequence: Tuple[str, ...]
    design_points: Optional[Tuple[str, ...]]
    """Paper-style labels (``P1`` .. ``Pm``) in sequence order; ``None`` for
    weighted-sequence rows, which the paper prints without an assignment."""


@dataclass(frozen=True)
class Table2Result:
    """All rows of the reproduced Table 2 plus the underlying solution."""

    rows: Tuple[Table2Row, ...]
    solution: SchedulingSolution

    def to_table(self) -> TextTable:
        """Render in the paper's layout (one row per sequence)."""
        table = TextTable(
            title="Table 2: task sequences of G3 for different iterations",
            headers=("Iter", "Seq No", "Task sequence", "Design points"),
        )
        for row in self.rows:
            table.add_row(
                row.iteration,
                row.label,
                ",".join(row.sequence),
                ",".join(row.design_points) if row.design_points else "-",
            )
        return table


def run_table2(config: Optional[SchedulerConfig] = None) -> Table2Result:
    """Run the illustrative example and lay its history out as Table 2."""
    solution = run_illustrative_example(config=config)
    rows = []
    for record in solution.iterations:
        assignment = record.assignment
        labels = tuple(
            f"P{assignment[name] + 1}" for name in record.sequence
        )
        rows.append(
            Table2Row(
                iteration=record.index,
                label=f"S{record.index}",
                sequence=record.sequence,
                design_points=labels,
            )
        )
        rows.append(
            Table2Row(
                iteration=record.index,
                label=f"S{record.index}w",
                sequence=record.weighted_sequence,
                design_points=None,
            )
        )
    return Table2Result(rows=tuple(rows), solution=solution)
