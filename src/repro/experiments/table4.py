"""Reproduction of Table 4: iterative heuristic vs. the [1]-style baseline.

The paper evaluates both algorithms on G2 (deadlines 55, 75 and 95 minutes)
and G3 (deadlines 100, 150 and 230 minutes) and reports the battery capacity
each consumes plus the percentage by which the baseline exceeds the
heuristic.  :func:`run_table4` reruns both algorithms on the same six
problem instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..analysis import TextTable, percent_difference
from ..battery import BatterySpec
from ..core import SchedulerConfig
from ..engine import ResultStore, run_experiments, scheduler_config_params
from ..errors import AlgorithmError
from ..scheduling import SchedulingProblem
from ..taskgraph import (
    G2_TABLE4_DEADLINES,
    G3_BETA,
    G3_TABLE4_DEADLINES,
    build_g2,
    build_g3,
)

__all__ = ["Table4Row", "Table4Result", "PAPER_TABLE4", "run_table4"]

#: The paper's published Table 4 numbers, keyed by (graph, deadline):
#: (our algorithm sigma, baseline [1] sigma, % difference).
PAPER_TABLE4: Dict[Tuple[str, float], Tuple[float, float, float]] = {
    ("G2", 55.0): (30913.0, 35739.0, 15.6),
    ("G2", 75.0): (13751.0, 13885.0, 0.9),
    ("G2", 95.0): (7961.0, 8517.0, 7.0),
    ("G3", 100.0): (57429.0, 68120.0, 18.6),
    ("G3", 150.0): (41801.0, 48650.0, 16.4),
    ("G3", 230.0): (13737.0, 22686.0, 65.0),
}


@dataclass(frozen=True)
class Table4Row:
    """One column of the paper's Table 4 (one graph/deadline combination)."""

    graph: str
    deadline: float
    our_cost: float
    baseline_cost: float
    our_makespan: float
    baseline_makespan: float

    @property
    def percent_diff(self) -> float:
        """How much more the baseline costs, in percent of our cost."""
        return percent_difference(self.baseline_cost, self.our_cost)

    @property
    def paper_values(self) -> Optional[Tuple[float, float, float]]:
        """The published (ours, baseline, % diff) triple, when available."""
        return PAPER_TABLE4.get((self.graph, self.deadline))


@dataclass(frozen=True)
class Table4Result:
    """All reproduced rows of Table 4."""

    rows: Tuple[Table4Row, ...]

    def to_table(self, include_paper: bool = True) -> TextTable:
        """Render measured (and optionally published) values side by side."""
        headers = [
            "graph",
            "deadline",
            "ours sigma",
            "baseline sigma",
            "% diff",
        ]
        if include_paper:
            headers.extend(["paper ours", "paper baseline", "paper % diff"])
        table = TextTable(title="Table 4: comparison with the [1]-style baseline", headers=headers)
        for row in self.rows:
            cells = [
                row.graph,
                row.deadline,
                row.our_cost,
                row.baseline_cost,
                row.percent_diff,
            ]
            if include_paper:
                paper = row.paper_values
                cells.extend(paper if paper is not None else (None, None, None))
            table.add_row(*cells)
        return table

    def row_for(self, graph: str, deadline: float) -> Table4Row:
        """Look up one reproduced row."""
        for row in self.rows:
            if row.graph == graph and abs(row.deadline - deadline) < 1e-9:
                return row
        raise KeyError(f"no Table 4 row for {graph!r} at deadline {deadline!r}")


def table4_problems(beta: float = G3_BETA) -> Tuple[SchedulingProblem, ...]:
    """The six problem instances of Table 4 (G2 and G3 at three deadlines each)."""
    battery = BatterySpec(beta=beta)
    problems = []
    g2 = build_g2()
    for deadline in G2_TABLE4_DEADLINES:
        problems.append(
            SchedulingProblem(graph=g2, deadline=deadline, battery=battery, name=f"G2@{deadline:g}")
        )
    g3 = build_g3()
    for deadline in G3_TABLE4_DEADLINES:
        problems.append(
            SchedulingProblem(graph=g3, deadline=deadline, battery=battery, name=f"G3@{deadline:g}")
        )
    return tuple(problems)


def run_table4(
    config: Optional[SchedulerConfig] = None,
    beta: float = G3_BETA,
    deadlines: Optional[Dict[str, Sequence[float]]] = None,
    executor=None,
    store: Optional[ResultStore] = None,
    resume: bool = False,
) -> Table4Result:
    """Run both algorithms on the Table 4 instances and collect the rows.

    The twelve (instance, algorithm) evaluations go through the experiment
    engine, so they can fan out over processes (``executor=``) and resume
    from a result store.

    Parameters
    ----------
    config:
        Scheduler configuration for the iterative heuristic.
    beta:
        Battery diffusion parameter (the paper only states the G3 value, so
        it is used for both graphs).
    deadlines:
        Optional override of the per-graph deadline lists, e.g.
        ``{"G2": [60.0], "G3": [200.0]}`` for quicker smoke runs.
    executor, store, resume:
        Engine controls; see :func:`repro.engine.run_experiments`.
    """
    battery = BatterySpec(beta=beta)
    graphs = {"G2": build_g2(), "G3": build_g3()}
    deadline_map = {
        "G2": tuple(G2_TABLE4_DEADLINES),
        "G3": tuple(G3_TABLE4_DEADLINES),
    }
    if deadlines:
        deadline_map.update({key: tuple(value) for key, value in deadlines.items()})

    instances = []
    for graph_name, graph in graphs.items():
        for deadline in deadline_map[graph_name]:
            instances.append(
                (
                    graph_name,
                    float(deadline),
                    SchedulingProblem(
                        graph=graph,
                        deadline=deadline,
                        battery=battery,
                        name=f"{graph_name}@{deadline:g}",
                    ),
                )
            )

    run = run_experiments(
        [problem for _, _, problem in instances],
        {
            "iterative": scheduler_config_params(config),
            "dp-energy+greedy": {},
        },
        executor=executor,
        store=store,
        resume=resume,
    )
    if not run.ok:
        failed = "; ".join(result.summary() for result in run.failures())
        raise AlgorithmError(f"Table 4 reproduction failed: {failed}")

    rows = []
    for index, (graph_name, deadline, _) in enumerate(instances):
        ours, baseline = run.results[2 * index], run.results[2 * index + 1]
        rows.append(
            Table4Row(
                graph=graph_name,
                deadline=deadline,
                our_cost=ours.cost,
                baseline_cost=baseline.cost,
                our_makespan=ours.makespan,
                baseline_makespan=baseline.makespan,
            )
        )
    return Table4Result(rows=tuple(rows))
