"""Experiment harness: one driver per paper table/figure plus extensions.

See DESIGN.md for the experiment index (E1-E9).  Every driver returns a
structured result object with a ``to_table()`` method, so the benchmarks,
the CLI and the examples share one code path.
"""

from .ablation import FACTOR_NAMES, AblationResult, AblationRow, run_ablation
from .figures import (
    Figure4Walkthrough,
    figure3_windows,
    figure4_walkthrough,
    figure5_g2_table,
    g2_dot,
    scaling_regeneration_report,
    table1_g3_table,
)
from .illustrative import g3_problem, run_illustrative_example
from .models import (
    CandidateSchedule,
    ModelCrossCheck,
    battery_model_crosscheck,
    default_models,
)
from .simulate import (
    DEFAULT_SIM_POLICIES,
    SimulationSuiteResult,
    run_simulation_suite,
)
from .suite import DEFAULT_SUITE_ALGORITHMS, SuiteRunResult, run_suite
from .tournament import TournamentResult, run_tournament, tournament_markdown
from .sweep import (
    SWEEP_ALGORITHMS,
    SweepPoint,
    SweepResult,
    beta_sweep,
    deadline_sweep,
    default_algorithms,
)
from .table2 import Table2Result, Table2Row, run_table2
from .table3 import Table3Result, Table3Row, run_table3
from .table4 import PAPER_TABLE4, Table4Result, Table4Row, run_table4, table4_problems

__all__ = [
    "g3_problem",
    "run_illustrative_example",
    "run_table2",
    "Table2Result",
    "Table2Row",
    "run_table3",
    "Table3Result",
    "Table3Row",
    "run_table4",
    "Table4Result",
    "Table4Row",
    "PAPER_TABLE4",
    "table4_problems",
    "figure3_windows",
    "figure4_walkthrough",
    "Figure4Walkthrough",
    "figure5_g2_table",
    "table1_g3_table",
    "scaling_regeneration_report",
    "g2_dot",
    "run_ablation",
    "AblationResult",
    "AblationRow",
    "FACTOR_NAMES",
    "run_suite",
    "SuiteRunResult",
    "DEFAULT_SUITE_ALGORITHMS",
    "run_simulation_suite",
    "SimulationSuiteResult",
    "DEFAULT_SIM_POLICIES",
    "run_tournament",
    "TournamentResult",
    "tournament_markdown",
    "deadline_sweep",
    "beta_sweep",
    "default_algorithms",
    "SWEEP_ALGORITHMS",
    "SweepResult",
    "SweepPoint",
    "battery_model_crosscheck",
    "default_models",
    "ModelCrossCheck",
    "CandidateSchedule",
]
