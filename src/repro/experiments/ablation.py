"""Ablation of the suitability factors (extension experiment E8).

The paper combines five factors into the suitability ``B`` with equal
weight but does not analyse how much each contributes.  This experiment
re-runs the iterative heuristic with one factor disabled at a time (its
weight set to zero) over a set of problems and reports the battery cost
relative to the full ``B``, quantifying each factor's contribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis import TextTable
from ..core import SchedulerConfig
from ..engine import Job, ResultStore, run_jobs, scheduler_config_params
from ..errors import AlgorithmError
from ..scheduling import SchedulingProblem
from .table4 import table4_problems

__all__ = ["AblationRow", "AblationResult", "FACTOR_NAMES", "run_ablation"]

#: The factors that can be dropped, in the order they appear in ``B``.
FACTOR_NAMES: Tuple[str, ...] = (
    "slack_ratio",
    "current_ratio",
    "energy_ratio",
    "current_increase_fraction",
    "design_point_fraction",
)


@dataclass(frozen=True)
class AblationRow:
    """Costs of the full heuristic and each single-factor ablation on one problem."""

    problem_name: str
    deadline: float
    full_cost: float
    ablated_costs: Dict[str, float]

    def degradation_percent(self, factor: str) -> float:
        """How much worse (positive) or better (negative) dropping ``factor`` is."""
        return (self.ablated_costs[factor] - self.full_cost) / self.full_cost * 100.0


@dataclass(frozen=True)
class AblationResult:
    """All ablation rows plus helpers to summarise them."""

    rows: Tuple[AblationRow, ...]

    def to_table(self) -> TextTable:
        """Per-problem costs for the full ``B`` and every single-factor drop."""
        headers = ["problem", "deadline", "full B"] + [f"-{name}" for name in FACTOR_NAMES]
        table = TextTable(title="Ablation of the suitability factors", headers=headers)
        for row in self.rows:
            cells: List = [row.problem_name, row.deadline, row.full_cost]
            cells.extend(row.ablated_costs[name] for name in FACTOR_NAMES)
            table.add_row(*cells)
        return table

    def mean_degradation(self) -> Dict[str, float]:
        """Average percentage cost change per dropped factor across all problems."""
        if not self.rows:
            return {name: 0.0 for name in FACTOR_NAMES}
        return {
            name: sum(row.degradation_percent(name) for row in self.rows) / len(self.rows)
            for name in FACTOR_NAMES
        }


def run_ablation(
    problems: Optional[Sequence[SchedulingProblem]] = None,
    config: Optional[SchedulerConfig] = None,
    executor=None,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    seed: Optional[int] = None,
) -> AblationResult:
    """Run the full heuristic and each single-factor ablation over ``problems``.

    Defaults to the six Table 4 instances, which keeps the experiment
    anchored to the paper's workloads.  Each (problem, dropped-factor) cell
    is one engine job — six problems times six configurations fan out over
    ``executor`` and can resume from a result store.  ``seed`` is recorded
    in every job's parameters (the iterative heuristic is deterministic,
    but per-seed job keys keep seeded and unseeded store entries apart).
    """
    problem_list = list(problems) if problems is not None else list(table4_problems())
    seed_params = {"seed": int(seed)} if seed is not None else {}
    base_params = {**scheduler_config_params(config), **seed_params}

    jobs: List[Job] = []
    for problem in problem_list:
        jobs.append(Job(problem=problem, algorithm="iterative", params=base_params))
        for factor in FACTOR_NAMES:
            jobs.append(
                Job(
                    problem=problem,
                    algorithm="iterative",
                    params={
                        **scheduler_config_params(config, drop_factor=factor),
                        **seed_params,
                    },
                )
            )

    run = run_jobs(jobs, executor=executor, store=store, resume=resume)
    if not run.ok:
        failed = "; ".join(result.summary() for result in run.failures())
        raise AlgorithmError(f"ablation failed: {failed}")

    per_problem = 1 + len(FACTOR_NAMES)
    rows: List[AblationRow] = []
    for index, problem in enumerate(problem_list):
        cells = run.results[index * per_problem : (index + 1) * per_problem]
        full, ablated = cells[0], cells[1:]
        rows.append(
            AblationRow(
                problem_name=problem.name or problem.graph.name,
                deadline=problem.deadline,
                full_cost=full.cost,
                ablated_costs={
                    factor: result.cost for factor, result in zip(FACTOR_NAMES, ablated)
                },
            )
        )
    return AblationResult(rows=tuple(rows))
