"""Reproduction of Table 3: battery capacity and duration per window per iteration.

For every iteration of the illustrative G3 run, the paper reports the
battery capacity sigma (mA·min) and the schedule duration Delta (min)
obtained for each window ``1:5`` … ``4:5``, the minimum over the windows,
and — on a separate row — the cost of the weighted sequence for that
iteration.  :func:`run_table3` regenerates those rows from the scheduler's
history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..analysis import TextTable
from ..core import SchedulerConfig, SchedulingSolution
from .illustrative import run_illustrative_example

__all__ = ["Table3Row", "Table3Result", "run_table3"]


@dataclass(frozen=True)
class Table3Row:
    """One printed row of Table 3 (a sequence or its weighted counterpart)."""

    label: str
    """``"S<i>"`` or ``"S<i>w"``."""

    per_window: Dict[str, Tuple[float, float]]
    """Window label -> (sigma, Delta); empty for weighted rows."""

    minimum: Tuple[float, float]
    """The "Min" columns: (sigma, Delta) of the iteration's best candidate."""


@dataclass(frozen=True)
class Table3Result:
    """All rows of the reproduced Table 3 plus the underlying solution."""

    rows: Tuple[Table3Row, ...]
    window_labels: Tuple[str, ...]
    solution: SchedulingSolution

    def to_table(self) -> TextTable:
        """Render in the paper's layout (sigma and Delta columns per window)."""
        headers = ["Seq No"]
        for label in self.window_labels:
            headers.extend([f"Win {label} sigma", f"Win {label} Delta"])
        headers.extend(["Min sigma", "Min Delta"])
        table = TextTable(
            title="Table 3: algorithm execution data for different iterations (G3)",
            headers=headers,
        )
        for row in self.rows:
            cells = [row.label]
            for label in self.window_labels:
                if label in row.per_window:
                    sigma, delta = row.per_window[label]
                    cells.extend([sigma, delta])
                else:
                    cells.extend([None, None])
            cells.extend([row.minimum[0], row.minimum[1]])
            table.add_row(*cells)
        return table

    def iteration_minimums(self) -> Tuple[float, ...]:
        """The per-iteration minimum sigma values (taken from the ``S<i>`` rows)."""
        return tuple(row.minimum[0] for row in self.rows if not row.label.endswith("w"))


def run_table3(config: Optional[SchedulerConfig] = None) -> Table3Result:
    """Run the illustrative example and lay its history out as Table 3."""
    solution = run_illustrative_example(config=config)

    # Collect the union of window labels seen across iterations, widest first
    # (the paper prints "Win 1:5" .. "Win 4:5").
    label_set = []
    for record in solution.iterations:
        for window in record.windows.records:
            if window.label not in label_set:
                label_set.append(window.label)
    window_labels = tuple(sorted(label_set, key=lambda lbl: int(lbl.split(":")[0])))

    rows = []
    for record in solution.iterations:
        per_window = {
            window.label: (window.cost, window.makespan)
            for window in record.windows.records
        }
        best = record.best_window
        rows.append(
            Table3Row(
                label=f"S{record.index}",
                per_window=per_window,
                minimum=(best.cost, best.makespan),
            )
        )
        rows.append(
            Table3Row(
                label=f"S{record.index}w",
                per_window={},
                minimum=(record.weighted_cost, record.weighted_makespan),
            )
        )
    return Table3Result(rows=tuple(rows), window_labels=window_labels, solution=solution)
