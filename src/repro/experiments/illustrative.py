"""The paper's illustrative example: G3 with a 230-minute deadline.

Tables 2 and 3 of the paper both describe the same run of the algorithm —
the 15-task fork-join graph of Table 1 scheduled against a 230-minute
deadline with ``beta = 0.273`` and an effectively unlimited battery.  This
module performs that run once (with full history recording) so the two
table reproductions, the examples and the tests all share it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..battery import BatterySpec
from ..core import SchedulerConfig, SchedulingSolution, battery_aware_schedule
from ..engine import BatteryCostCache, CachedBatteryModel
from ..scheduling import SchedulingProblem
from ..taskgraph import G3_BETA, G3_DEADLINE, build_g3

__all__ = ["g3_problem", "run_illustrative_example"]


def g3_problem(
    deadline: float = G3_DEADLINE, beta: float = G3_BETA
) -> SchedulingProblem:
    """The Section 4.2 problem instance: G3, deadline 230 min, beta 0.273."""
    return SchedulingProblem(
        graph=build_g3(),
        deadline=deadline,
        battery=BatterySpec(beta=beta),
        name=f"G3@{deadline:g}",
    )


def run_illustrative_example(
    deadline: float = G3_DEADLINE,
    beta: float = G3_BETA,
    config: Optional[SchedulerConfig] = None,
    cache: Optional[BatteryCostCache] = None,
) -> SchedulingSolution:
    """Run the iterative algorithm on the illustrative example with history.

    The battery model is wrapped in the engine's memo cache (shareable via
    ``cache=``), which speeds up the window search's repeated sigma
    evaluations without changing any value: cache hits return the exact
    floats the bare model would produce.
    """
    problem = g3_problem(deadline=deadline, beta=beta)
    config = config or SchedulerConfig()
    model = CachedBatteryModel(problem.model(), cache)
    return battery_aware_schedule(problem, config=config, model=model)
