"""The suite experiment: run algorithms across the scenario catalogue.

:func:`run_suite` is the experiments-layer entry point over
:mod:`repro.scenarios`: select scenarios from a registry (default: the
whole standard catalogue), cross them with registered algorithm names, and
push the resulting job grid through the experiment engine — with all of
the engine's guarantees (parallel output byte-identical to serial,
failures isolated per job, resumable through a
:class:`~repro.engine.ResultStore`).  The result bundles the per-job grid
with the suite leaderboard (see :mod:`repro.analysis.leaderboard`).

>>> from repro.experiments import run_suite
>>> result = run_suite(scenarios=["g3"], algorithms=["all-fastest"])
>>> result.run.ok
True
>>> result.leaderboard()[0].algorithm
'all-fastest'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis import (
    LeaderboardEntry,
    TextTable,
    compute_leaderboard,
    leaderboard_table,
)
from ..engine import ExperimentRun, ResultStore, run_experiments
from ..engine.api import AlgorithmSpec
from ..scenarios import ScenarioRegistry, ScenarioSpec, default_registry

__all__ = ["DEFAULT_SUITE_ALGORITHMS", "SuiteRunResult", "run_suite"]

#: Algorithms the suite runs when none are named: the paper's iterative
#: heuristic against the deterministic baselines.  (The stochastic
#: annealing baseline is opt-in — pass it explicitly with a seed param to
#: keep suite output reproducible.)
DEFAULT_SUITE_ALGORITHMS: Tuple[str, ...] = (
    "iterative",
    "dp-energy+greedy",
    "last-task-first",
    "best-uniform",
)


@dataclass(frozen=True)
class SuiteRunResult:
    """Everything produced by one :func:`run_suite` call."""

    specs: Tuple[ScenarioSpec, ...]
    algorithms: Tuple[str, ...]
    run: ExperimentRun

    def to_table(self) -> TextTable:
        """The full result grid: one row per (scenario, algorithm) job."""
        table = TextTable(
            title=f"Scenario suite ({len(self.specs)} scenarios x "
                  f"{len(self.algorithms)} algorithms)",
            headers=("scenario", "algorithm", "sigma", "makespan", "status"),
        )
        for result in self.run.results:
            table.add_row(
                result.problem_name,
                result.algorithm,
                result.cost,
                result.makespan,
                "ok" if result.ok else result.error,
            )
        return table

    def leaderboard(self) -> List[LeaderboardEntry]:
        """Per-algorithm standings across the selected scenarios."""
        return compute_leaderboard(
            (
                result.problem_name,
                result.algorithm,
                result.cost,
                result.feasible,
                result.elapsed_s,
            )
            for result in self.run.results
        )

    def leaderboard_table(self) -> TextTable:
        """The leaderboard as a report table."""
        return leaderboard_table(self.leaderboard())

    def summary(self) -> str:
        """One-line accounting summary (delegates to the engine run)."""
        return self.run.summary()


def run_suite(
    scenarios: Optional[Sequence[str]] = None,
    algorithms: Optional[AlgorithmSpec] = None,
    executor=None,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    progress=None,
    registry: Optional[ScenarioRegistry] = None,
    seed: Optional[int] = None,
    optimize: str = "",
    dedupe: bool = False,
) -> SuiteRunResult:
    """Run algorithms over scenario-catalogue problems through the engine.

    Parameters
    ----------
    scenarios:
        Scenario names to include (default: every *deterministic* scenario
        in the registry, in catalogue order — stochastic-tier entries
        build offline problems identical to their deterministic twins, so
        including them would double-count those problems in the
        leaderboard; name them explicitly to run them anyway).
    algorithms:
        Algorithm names or a name -> params mapping (default:
        :data:`DEFAULT_SUITE_ALGORITHMS`).
    executor, store, resume, progress:
        Passed through to :func:`repro.engine.run_experiments` — use
        ``ParallelExecutor`` / ``default_executor(jobs)`` for fan-out and a
        :class:`~repro.engine.ResultStore` with ``resume=True`` to continue
        interrupted runs.
    registry:
        Scenario registry to select from (default:
        :func:`repro.scenarios.default_registry`).
    seed:
        Merged into every job's parameters; stochastic algorithms (the
        annealing baseline) consume it, so two same-seed suite runs are
        byte-identical, and it enters every job key either way.
    optimize:
        Optional optimize-pass list (e.g. ``"fuse"`` or ``"cull+fuse"``)
        applied to every selected spec via
        :meth:`~repro.scenarios.ScenarioRegistry.optimized` — problems are
        built on rewritten graphs and job keys grow the pass list, so
        optimized and unoptimized results never collide in a store.
    dedupe:
        Run one representative per group of structurally-isomorphic jobs
        and translate its result to the rest (see
        :func:`repro.engine.run_jobs`).
    """
    registry = registry if registry is not None else default_registry()
    if optimize:
        registry = registry.optimized(optimize)
    if scenarios is None:
        specs = registry.select(stochastic=False)
    else:
        specs = registry.select(names=scenarios)
    algorithm_spec: AlgorithmSpec = (
        algorithms if algorithms is not None else DEFAULT_SUITE_ALGORITHMS
    )
    problems = [spec.build_problem() for spec in specs]
    run = run_experiments(
        problems,
        algorithm_spec,
        executor=executor,
        store=store,
        resume=resume,
        progress=progress,
        params={"seed": int(seed)} if seed is not None else None,
        dedupe=dedupe,
    )
    # Iterating a mapping yields its keys, so both spec shapes reduce to names.
    return SuiteRunResult(
        specs=tuple(specs), algorithms=tuple(algorithm_spec), run=run
    )
