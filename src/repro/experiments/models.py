"""Battery-model cross-check (extension experiment E11).

The whole approach rests on one cost function — the Rakhmatov–Vrudhula
apparent charge.  This experiment asks how much the *ranking* of candidate
schedules depends on that choice: a pool of candidate solutions (the
iterative heuristic, every baseline, and a spread of random valid
schedules) is evaluated under the analytical model, the Kinetic Battery
Model, Peukert's law and an ideal coulomb counter, and the pairwise rank
correlation between the models is reported, along with where each model
would place the heuristic's solution.

A high rank agreement between the analytical model and KiBaM (two very
different formulations of the same physics) is evidence that the scheduler
is not over-fitting one abstraction; a low agreement with the ideal model is
expected — it is exactly the battery-awareness the paper argues for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis import TextTable
from ..baselines import (
    all_fastest_baseline,
    best_uniform_baseline,
    chowdhury_baseline,
    rakhmatov_baseline,
)
from ..battery import (
    BatteryModel,
    IdealBatteryModel,
    KineticBatteryModel,
    PeukertModel,
    RakhmatovVrudhulaModel,
)
from ..core import battery_aware_schedule
from ..errors import ConfigurationError
from ..scheduling import DesignPointAssignment, SchedulingProblem, battery_cost
from ..taskgraph import TaskGraph

__all__ = ["CandidateSchedule", "ModelCrossCheck", "default_models", "battery_model_crosscheck"]


@dataclass(frozen=True)
class CandidateSchedule:
    """One candidate solution and its cost under every battery model."""

    label: str
    sequence: Tuple[str, ...]
    assignment: DesignPointAssignment
    costs: Dict[str, float]


@dataclass(frozen=True)
class ModelCrossCheck:
    """Result of the cross-check on one problem instance."""

    problem: SchedulingProblem
    candidates: Tuple[CandidateSchedule, ...]
    model_names: Tuple[str, ...]

    def rank_correlation(self, first: str, second: str) -> float:
        """Spearman rank correlation of candidate costs under two models."""
        first_ranks = _ranks([c.costs[first] for c in self.candidates])
        second_ranks = _ranks([c.costs[second] for c in self.candidates])
        return _pearson(first_ranks, second_ranks)

    def heuristic_rank(self, model: str) -> int:
        """1-based rank of the iterative heuristic's solution under ``model``."""
        ordered = sorted(self.candidates, key=lambda c: c.costs[model])
        for index, candidate in enumerate(ordered, start=1):
            if candidate.label == "iterative (ours)":
                return index
        raise KeyError("the heuristic's candidate is missing from the pool")

    def correlation_table(self) -> TextTable:
        """Pairwise rank correlations between all battery models."""
        table = TextTable(
            title=f"Rank correlation of schedule costs across battery models "
                  f"({self.problem.name or self.problem.graph.name})",
            headers=("model", *self.model_names),
            precision=3,
        )
        for first in self.model_names:
            row = [first]
            for second in self.model_names:
                row.append(self.rank_correlation(first, second))
            table.add_row(*row)
        return table

    def candidate_table(self) -> TextTable:
        """Costs of every candidate under every model."""
        table = TextTable(
            title="Candidate schedules under each battery model (mA·min)",
            headers=("candidate", *self.model_names),
        )
        for candidate in self.candidates:
            table.add_row(candidate.label, *(candidate.costs[m] for m in self.model_names))
        return table


def default_models(beta: float = 0.273) -> Dict[str, BatteryModel]:
    """The four battery abstractions compared by the cross-check."""
    return {
        "analytical": RakhmatovVrudhulaModel(beta=beta),
        "kibam": KineticBatteryModel(c=0.625, k=0.5),
        "peukert": PeukertModel(exponent=1.2, reference_current=300.0),
        "ideal": IdealBatteryModel(),
    }


def battery_model_crosscheck(
    problem: SchedulingProblem,
    models: Optional[Dict[str, BatteryModel]] = None,
    num_random_candidates: int = 20,
    seed: int = 2005,
) -> ModelCrossCheck:
    """Evaluate a pool of candidate schedules under several battery models.

    The pool contains the iterative heuristic, four baselines and
    ``num_random_candidates`` random feasible-or-not schedules (random valid
    topological order, random design-point columns biased towards low power
    so most of them meet loose deadlines).
    """
    if num_random_candidates < 0:
        raise ConfigurationError("num_random_candidates must be >= 0")
    model_map = models if models is not None else default_models(problem.battery.beta)
    graph = problem.graph
    rng = random.Random(seed)

    candidates: List[Tuple[str, Sequence[str], DesignPointAssignment]] = []

    ours = battery_aware_schedule(problem)
    candidates.append(("iterative (ours)", ours.sequence, ours.assignment))
    for label, algorithm in (
        ("dp-energy+greedy", rakhmatov_baseline),
        ("last-task-first", chowdhury_baseline),
        ("best-uniform", best_uniform_baseline),
        ("all-fastest", all_fastest_baseline),
    ):
        try:
            result = algorithm(problem)
        except Exception:
            continue
        candidates.append((label, result.sequence, result.assignment))

    m = graph.uniform_design_point_count()
    durations = {
        task.name: [dp.execution_time for dp in task.ordered_design_points()]
        for task in graph
    }
    for index in range(num_random_candidates):
        sequence = _random_topological_order(graph, rng)
        columns = {
            name: rng.choice(range(m // 2, m)) if rng.random() < 0.7 else rng.randrange(m)
            for name in graph.task_names()
        }
        # Repair to feasibility so every candidate is comparable: keep
        # promoting random tasks to faster design points until the deadline
        # holds (always possible because the problem itself is feasible).
        makespan = sum(durations[name][columns[name]] for name in columns)
        while makespan > problem.deadline + 1e-9:
            promotable = [name for name, column in columns.items() if column > 0]
            if not promotable:
                break
            name = rng.choice(promotable)
            makespan -= durations[name][columns[name]] - durations[name][columns[name] - 1]
            columns[name] -= 1
        candidates.append((f"random-{index + 1}", sequence, DesignPointAssignment(columns)))

    evaluated = []
    for label, sequence, assignment in candidates:
        costs = {
            name: battery_cost(graph, sequence, assignment, model)
            for name, model in model_map.items()
        }
        evaluated.append(
            CandidateSchedule(
                label=label, sequence=tuple(sequence), assignment=assignment, costs=costs
            )
        )

    return ModelCrossCheck(
        problem=problem,
        candidates=tuple(evaluated),
        model_names=tuple(model_map),
    )


# ---------------------------------------------------------------------------
# small numeric helpers (kept local to avoid a scipy dependency on this path)
# ---------------------------------------------------------------------------

def _random_topological_order(graph: TaskGraph, rng: random.Random) -> List[str]:
    remaining_preds = {name: len(graph.predecessors(name)) for name in graph.task_names()}
    ready = [name for name, count in remaining_preds.items() if count == 0]
    order: List[str] = []
    while ready:
        choice = rng.choice(ready)
        ready.remove(choice)
        order.append(choice)
        for child in graph.successors(choice):
            remaining_preds[child] -= 1
            if remaining_preds[child] == 0:
                ready.append(child)
    return order


def _ranks(values: Sequence[float]) -> List[float]:
    indexed = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    for rank, index in enumerate(indexed, start=1):
        ranks[index] = float(rank)
    return ranks


def _pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    n = len(xs)
    if n < 2:
        return 1.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 1.0
    return cov / (var_x * var_y) ** 0.5
