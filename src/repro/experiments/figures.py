"""Reproduction of the paper's figures and of Table 1.

The paper's figures are either algorithm listings (Figures 1 and 2) or
small illustrative artefacts; the ones that carry data or behaviour are
regenerated here:

* **Figure 3** — the window masks over a 5-task x 4-design-point matrix:
  :func:`figure3_windows` reports, for each window, which columns may be
  used, exactly as the shaded boxes in the figure do.
* **Figure 4** — the DPF calculation walk-through: starting from tasks T5
  and T4 fixed, T3 tagged on DP2 and T1/T2 free, the free tasks are promoted
  until the deadline is met and the resulting DPF equals 1/3.
  :func:`figure4_walkthrough` rebuilds that instance and reports each
  promotion step and the final DPF value.
* **Figure 5 / Table 1** — the design-point data of G2 and G3:
  :func:`figure5_g2_table` and :func:`table1_g3_table` print the transcribed
  data, and :func:`scaling_regeneration_report` checks it against the
  scaling rule stated in the paper (experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..analysis import TextTable
from ..core import SequencedMatrices, calculate_dpf
from ..taskgraph import (
    DesignPoint,
    G2_FIGURE5_DATA,
    G3_TABLE1_DATA,
    Task,
    TaskGraph,
    build_g2,
    build_g3,
    regenerate_g2_design_points,
    regenerate_g3_design_points,
    to_dot,
)

__all__ = [
    "figure3_windows",
    "Figure4Walkthrough",
    "figure4_walkthrough",
    "figure5_g2_table",
    "table1_g3_table",
    "scaling_regeneration_report",
    "g2_dot",
]


# ---------------------------------------------------------------------------
# Figure 3: window masks
# ---------------------------------------------------------------------------

def figure3_windows(num_tasks: int = 5, num_design_points: int = 4) -> TextTable:
    """The window masks of Figure 3: which columns each window admits.

    Windows are labelled ``k:m`` as in the paper; a cell shows ``X`` when the
    column is inside the window (usable by every one of the ``num_tasks``
    tasks) and ``.`` when it is masked out.
    """
    headers = ["window"] + [f"DP{j + 1}" for j in range(num_design_points)]
    table = TextTable(
        title=f"Figure 3: windows over {num_tasks} tasks x {num_design_points} design points",
        headers=headers,
    )
    for window_start in range(num_design_points - 1, 0, -1):
        label = f"{window_start}:{num_design_points}"
        cells = [label]
        for column in range(1, num_design_points + 1):
            cells.append("X" if column >= window_start else ".")
        table.add_row(*cells)
    return table


# ---------------------------------------------------------------------------
# Figure 4: DPF walk-through
# ---------------------------------------------------------------------------

def _figure4_graph() -> TaskGraph:
    """A 5-task chain with 4 design points shaped like the Section 4 example.

    The paper's walk-through does not publish concrete numbers for this toy
    instance; what matters for reproducing it is the *structure*: five tasks,
    four design points, an energy vector ordering of ``[T3, T4, T5, T1, T2]``
    and a deadline tight enough that exactly two promotions of T1 are needed
    before the deadline is met.  The design points below realise that
    structure (and the unit test on this module asserts the resulting
    DPF of 1/3).
    """
    graph = TaskGraph(name="figure4")
    # execution times per column (DP1 fastest .. DP4 slowest); currents chosen
    # so that average energies order the tasks as T3 < T4 < T5 < T1 < T2.
    data = {
        "T1": ((800.0, 4.0), (500.0, 6.0), (260.0, 8.0), (90.0, 10.0)),
        "T2": ((900.0, 4.0), (560.0, 6.0), (290.0, 8.0), (100.0, 10.0)),
        "T3": ((300.0, 2.0), (190.0, 3.0), (100.0, 4.0), (35.0, 5.0)),
        "T4": ((350.0, 2.0), (220.0, 3.0), (115.0, 4.0), (40.0, 5.0)),
        "T5": ((420.0, 2.0), (260.0, 3.0), (135.0, 4.0), (47.0, 5.0)),
    }
    for name, rows in data.items():
        graph.add_task(
            Task(
                name,
                tuple(
                    DesignPoint(execution_time=duration, current=current, name=f"DP{j+1}")
                    for j, (current, duration) in enumerate(rows)
                ),
            )
        )
    for parent, child in (("T1", "T2"), ("T2", "T3"), ("T3", "T4"), ("T4", "T5")):
        graph.add_edge(parent, child)
    return graph


@dataclass(frozen=True)
class Figure4Walkthrough:
    """Result of replaying the Figure 4 DPF example."""

    sequence: Tuple[str, ...]
    tagged_task: str
    tagged_column: int
    promotions: Tuple[Tuple[str, int], ...]
    """Each promotion as (task name, new 0-based column)."""
    dpf: float
    enr: float
    cif: float

    def to_table(self) -> TextTable:
        """Tabulate the promotion steps performed to meet the deadline."""
        table = TextTable(
            title=(
                "Figure 4: DPF calculation walk-through "
                f"(tagged {self.tagged_task} on DP{self.tagged_column + 1})"
            ),
            headers=("step", "task", "new design point"),
        )
        for index, (task, column) in enumerate(self.promotions, start=1):
            table.add_row(index, task, f"DP{column + 1}")
        return table

    def summary(self) -> str:
        """One-line summary of the resulting factor values."""
        return f"DPF={self.dpf:.4f}  ENR={self.enr:.4f}  CIF={self.cif:.4f}"


def figure4_walkthrough(deadline: float = 26.5) -> Figure4Walkthrough:
    """Replay the Section 4 DPF example and return the promotion trace.

    With the toy instance of :func:`_figure4_graph` and a 26.5-unit deadline,
    tagging T3 on DP2 forces the first free task in the energy vector (T1)
    to be promoted twice — exactly the scenario of Figure 4(a)-(c) — and the
    final configuration (T1 on DP2, T2 on DP4) yields DPF = 1/3.
    """
    graph = _figure4_graph()
    sequence = ("T1", "T2", "T3", "T4", "T5")
    matrices = SequencedMatrices(graph, sequence)
    m = matrices.m

    # Figure 4 fixes T5 on DP4 and T4 on DP1, and tags T3 on DP2.
    selection = matrices.lowest_power_selection()
    selection[matrices.sequence.index("T4")] = 0  # DP1
    tagged_position = matrices.sequence.index("T3")
    tagged_column = 1  # DP2
    selection[tagged_position] = tagged_column

    before = selection.copy()
    enr, cif, dpf, promoted = calculate_dpf(
        matrices,
        selection,
        window_start=0,
        tagged_position=tagged_position,
        deadline=deadline,
    )
    promotions: List[Tuple[str, int]] = []
    for position in range(tagged_position):
        original = int(before[position])
        final = int(promoted[position])
        for column in range(original - 1, final - 1, -1):
            promotions.append((matrices.sequence[position], column))

    return Figure4Walkthrough(
        sequence=sequence,
        tagged_task="T3",
        tagged_column=tagged_column,
        promotions=tuple(promotions),
        dpf=dpf,
        enr=enr,
        cif=cif,
    )


# ---------------------------------------------------------------------------
# Figure 5 and Table 1: the published design-point data
# ---------------------------------------------------------------------------

def _data_table(title: str, data: Dict[str, Tuple[Tuple[float, float], ...]]) -> TextTable:
    num_points = len(next(iter(data.values())))
    headers = ["task"]
    for j in range(num_points):
        headers.extend([f"DP{j + 1} I (mA)", f"DP{j + 1} D (min)"])
    table = TextTable(title=title, headers=headers)
    for name, rows in data.items():
        cells: List = [name]
        for current, duration in rows:
            cells.extend([current, duration])
        table.add_row(*cells)
    return table


def figure5_g2_table() -> TextTable:
    """The Figure 5 design-point data of the robotic-arm controller (G2)."""
    return _data_table("Figure 5: task graph G2 design-point data", G2_FIGURE5_DATA)


def table1_g3_table() -> TextTable:
    """The Table 1 design-point data of the fork-join example (G3)."""
    return _data_table("Table 1: data for example task graph G3", G3_TABLE1_DATA)


def scaling_regeneration_report(tolerance: float = 0.05) -> TextTable:
    """Check the published data against the stated scaling rule (experiment E7).

    For every task of G2 and G3 the design points are regenerated from the
    reference row and the voltage-scaling rule, and the worst relative error
    against the transcription is reported.  ``tolerance`` is only used for
    the ``ok`` column; typical errors are below 1 %, with the worst case
    around 3 % on G2's shortest task (its durations are printed with a single
    decimal, so the relative rounding error is largest there).
    """
    table = TextTable(
        title="Scaling-rule regeneration of the published design points",
        headers=("graph", "task", "max current err", "max duration err", "ok"),
        precision=4,
    )

    def check(graph_name: str, data, regenerate) -> None:
        for task_name, rows in data.items():
            regenerated = regenerate(task_name)
            current_err = 0.0
            duration_err = 0.0
            for (current, duration), point in zip(rows, regenerated):
                if current > 0:
                    current_err = max(current_err, abs(point.current - current) / current)
                duration_err = max(duration_err, abs(point.execution_time - duration) / duration)
            table.add_row(
                graph_name,
                task_name,
                current_err,
                duration_err,
                current_err <= tolerance and duration_err <= tolerance,
            )

    check("G3", G3_TABLE1_DATA, regenerate_g3_design_points)
    check("G2", G2_FIGURE5_DATA, regenerate_g2_design_points)
    return table


def g2_dot() -> str:
    """Graphviz DOT text of the reconstructed G2 task graph (Figure 5 left side)."""
    return to_dot(build_g2(), include_design_points=True)
