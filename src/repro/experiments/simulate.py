"""The simulation experiment: policies x stochastic scenarios x replications.

:func:`run_simulation_suite` is the experiments-layer entry point over
:mod:`repro.sim`: select scenarios (default: the catalogue's stochastic
tier), cross them with simulation policies and seeded replications into
:class:`~repro.engine.SimulationJob` grids, run them through the engine
(parallel byte-identical to serial, resumable), anchor each scenario with
its offline-predicted sigma, and reduce everything into the robustness
report of :mod:`repro.analysis.robustness`.

>>> from repro.experiments import run_simulation_suite
>>> result = run_simulation_suite(scenarios=["g3-jitter10"],
...                               policies=["static-replay"], replications=2)
>>> result.run.ok
True
>>> result.robustness_rows()[0].replications
2
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis import (
    PolicyStanding,
    RobustnessRow,
    TextTable,
    compute_robustness,
    degradation_leaderboard,
    degradation_table,
    robustness_table,
)
from ..engine import (
    ResultStore,
    SimulationJob,
    SimulationRun,
    run_experiments,
    run_simulation_jobs,
)
from ..scenarios import ScenarioRegistry, ScenarioSpec, default_registry

__all__ = ["DEFAULT_SIM_POLICIES", "SimulationSuiteResult", "run_simulation_suite"]

#: Policies the simulation suite runs when none are named: the offline
#: replay anchor against the three online schedulers.
DEFAULT_SIM_POLICIES: Tuple[str, ...] = (
    "static-replay",
    "greedy-energy",
    "deadline-slack",
    "battery-reactive",
)


@dataclass(frozen=True)
class SimulationSuiteResult:
    """Everything produced by one :func:`run_simulation_suite` call."""

    specs: Tuple[ScenarioSpec, ...]
    policies: Tuple[str, ...]
    replications: int
    seed: int
    run: SimulationRun
    offline_costs: Dict[str, float]
    """Scenario name -> offline-predicted sigma (the robustness anchor)."""

    def robustness_rows(self) -> List[RobustnessRow]:
        """Per-(scenario, policy) distribution summaries."""
        return compute_robustness(self.run.records, self.offline_costs)

    def robustness_table(self) -> TextTable:
        """The per-cell robustness report."""
        return robustness_table(self.robustness_rows())

    def leaderboard(self) -> List[PolicyStanding]:
        """Policies ranked by mean degradation across scenarios."""
        return degradation_leaderboard(self.robustness_rows())

    def leaderboard_table(self) -> TextTable:
        """The degradation leaderboard as a report table."""
        return degradation_table(self.leaderboard())

    def summary(self) -> str:
        """One-line accounting summary (delegates to the engine run)."""
        return self.run.summary()


def run_simulation_suite(
    scenarios: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    replications: int = 3,
    seed: int = 0,
    executor=None,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    progress=None,
    registry: Optional[ScenarioRegistry] = None,
    offline_algorithm: str = "iterative",
    batch="auto",
) -> SimulationSuiteResult:
    """Simulate policies over scenarios through the engine.

    Parameters
    ----------
    scenarios:
        Scenario names to simulate (default: every scenario carrying a
        stochastic tier, in catalogue order).  Deterministic scenarios are
        allowed — they exercise the conformance path.
    policies:
        Simulation policy names (default: :data:`DEFAULT_SIM_POLICIES`).
    replications:
        Seeded perturbation replications per (scenario, policy) cell.
    seed:
        Base seed; replication ``r`` draws from the independent
        ``(seed, r)`` stream, so the whole suite is a pure function of
        its arguments.
    executor, store, resume, progress, batch:
        Engine fan-out, resume and Monte Carlo batching controls, as in
        :func:`repro.engine.run_simulation_jobs` (the store must carry
        ``record_type=SimulationRecord``; ``batch="auto"`` runs each
        cell's replications as lockstep :class:`~repro.sim.BatchSimulator`
        lanes, bit-identical to the scalar path).
    registry:
        Scenario registry to select from (default: the standard catalogue).
    offline_algorithm:
        Offline algorithm anchoring the robustness report *and* replayed
        by the ``static-replay`` policy.

    The offline anchors are computed in-process first (exactly one
    deterministic offline run per scenario — the simulations are the
    expensive, fanned-out part), and ``static-replay`` jobs receive the
    anchor's explicit schedule as parameters, so replications replay it
    without re-solving the offline problem in every worker.
    """
    registry = registry if registry is not None else default_registry()
    if scenarios is None:
        specs = registry.select(stochastic=True)
    else:
        specs = registry.select(names=scenarios)
    policy_list: Tuple[str, ...] = (
        tuple(policies) if policies is not None else DEFAULT_SIM_POLICIES
    )
    if replications < 1:
        from ..errors import ConfigurationError

        raise ConfigurationError(
            f"replications must be >= 1, got {replications!r}"
        )

    offline = run_experiments(
        [spec.build_problem() for spec in specs], [offline_algorithm]
    )
    # Keyed positionally by spec, not by result.problem_name: scenarios that
    # differ only in their stochastic tier build identical offline problems,
    # which the engine deduplicates onto one job key (and one display name).
    offline_costs: Dict[str, float] = {}
    replay_params: Dict[str, Dict] = {}
    for spec, result in zip(specs, offline.results):
        if result.ok:
            offline_costs[spec.name] = float(result.cost)
            replay_params[spec.name] = {
                "sequence": list(result.sequence),
                "columns": dict(result.assignment),
            }
        else:
            # No anchor schedule to hand over; let the replay factory solve
            # (and error-capture) inside the worker instead.
            replay_params[spec.name] = {"algorithm": offline_algorithm}

    jobs = [
        SimulationJob(
            spec=spec,
            policy=policy,
            params=replay_params[spec.name] if policy == "static-replay" else {},
            seed=seed,
            replication=replication,
        )
        for spec in specs
        for policy in policy_list
        for replication in range(replications)
    ]
    run = run_simulation_jobs(
        jobs,
        executor=executor,
        store=store,
        resume=resume,
        progress=progress,
        batch=batch,
    )
    return SimulationSuiteResult(
        specs=tuple(specs),
        policies=policy_list,
        replications=int(replications),
        seed=int(seed),
        run=run,
        offline_costs=offline_costs,
    )
