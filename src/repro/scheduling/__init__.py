"""Scheduling substrate: sequences, assignments, schedules and their battery cost.

Provides the building blocks every algorithm in :mod:`repro.core` and
:mod:`repro.baselines` shares — the list-scheduling engine used to generate
precedence-respecting sequences, the design-point assignment mapping, the
fully resolved :class:`Schedule`, and the battery cost of a candidate
solution.
"""

from .assignment import DesignPointAssignment
from .cost import EVALUATION_MODES, battery_cost, profile_for
from .list_scheduler import (
    average_energy_weights,
    list_schedule,
    sequence_by_decreasing_energy,
    sequence_by_weights,
)
from .problem import SchedulingProblem
from .schedule import Schedule, ScheduledTask

__all__ = [
    "DesignPointAssignment",
    "Schedule",
    "ScheduledTask",
    "SchedulingProblem",
    "battery_cost",
    "profile_for",
    "EVALUATION_MODES",
    "list_schedule",
    "sequence_by_weights",
    "sequence_by_decreasing_energy",
    "average_energy_weights",
]
