"""Scheduling substrate: sequences, assignments, schedules and their battery cost.

Provides the building blocks every algorithm in :mod:`repro.core` and
:mod:`repro.baselines` shares — the list-scheduling engine used to generate
precedence-respecting sequences, the design-point assignment mapping, the
fully resolved :class:`Schedule`, and the cost-evaluation stack
(:func:`battery_cost` / :func:`evaluate_schedule` for full evaluation,
:class:`IncrementalCostEvaluator` for delta-updating neighbourhood search).
"""

from .assignment import DesignPointAssignment
from .cost import EVALUATION_MODES, battery_cost, profile_for
from .evaluator import (
    IncrementalCostEvaluator,
    MoveProposal,
    ScheduleEvaluation,
    ScheduleState,
    evaluate_schedule,
)
from .list_scheduler import (
    average_energy_weights,
    list_schedule,
    sequence_by_decreasing_energy,
    sequence_by_weights,
)
from .problem import SchedulingProblem
from .schedule import Schedule, ScheduledTask

__all__ = [
    "DesignPointAssignment",
    "Schedule",
    "ScheduledTask",
    "SchedulingProblem",
    "battery_cost",
    "profile_for",
    "EVALUATION_MODES",
    "IncrementalCostEvaluator",
    "MoveProposal",
    "ScheduleEvaluation",
    "ScheduleState",
    "evaluate_schedule",
    "list_schedule",
    "sequence_by_weights",
    "sequence_by_decreasing_energy",
    "average_energy_weights",
]
