"""Concrete schedules: sequence + design-point assignment + derived timing.

On the paper's single-processing-element platform a schedule is fully
determined by a task *sequence* (a precedence-respecting total order) and a
*design-point assignment*: tasks run back-to-back starting at time zero, so
start/finish times, the makespan and the battery discharge profile all
follow mechanically.  :class:`Schedule` materialises that derived data and
offers the validity checks the algorithms and tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..battery import LoadProfile
from ..errors import DeadlineError, ScheduleError
from ..taskgraph import DesignPoint, TaskGraph, validate_sequence
from .assignment import DesignPointAssignment

__all__ = ["ScheduledTask", "Schedule"]


@dataclass(frozen=True)
class ScheduledTask:
    """One task's slot in a schedule."""

    name: str
    start: float
    finish: float
    design_point_column: int
    design_point: DesignPoint

    @property
    def duration(self) -> float:
        """Execution time of the slot."""
        return self.finish - self.start

    @property
    def current(self) -> float:
        """Platform current drawn while the task runs (mA)."""
        return self.design_point.current

    @property
    def energy(self) -> float:
        """Energy drawn by the slot."""
        return self.design_point.energy


class Schedule:
    """A fully resolved schedule for a task graph.

    Parameters
    ----------
    graph:
        The task graph being scheduled.
    sequence:
        Execution order of all tasks (validated against the graph's edges).
    assignment:
        Chosen design point per task.
    start_time:
        Time at which the first task starts (default 0.0).

    Raises
    ------
    ScheduleError / PrecedenceViolationError
        If the sequence or assignment is inconsistent with the graph.
    """

    def __init__(
        self,
        graph: TaskGraph,
        sequence: Sequence[str],
        assignment: DesignPointAssignment,
        start_time: float = 0.0,
    ) -> None:
        validate_sequence(graph, sequence)
        assignment.validate(graph)
        if start_time < 0:
            raise ScheduleError(f"start_time must be >= 0, got {start_time!r}")
        self.graph = graph
        self.sequence: Tuple[str, ...] = tuple(sequence)
        self.assignment = assignment
        self.start_time = float(start_time)
        self._slots: Tuple[ScheduledTask, ...] = self._build_slots()

    def _build_slots(self) -> Tuple[ScheduledTask, ...]:
        slots: List[ScheduledTask] = []
        clock = self.start_time
        for name in self.sequence:
            column = self.assignment[name]
            point = self.assignment.design_point(self.graph, name)
            slots.append(
                ScheduledTask(
                    name=name,
                    start=clock,
                    finish=clock + point.execution_time,
                    design_point_column=column,
                    design_point=point,
                )
            )
            clock += point.execution_time
        return tuple(slots)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[ScheduledTask]:
        return iter(self._slots)

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def slots(self) -> Tuple[ScheduledTask, ...]:
        """All scheduled task slots in execution order."""
        return self._slots

    def slot(self, name: str) -> ScheduledTask:
        """The slot of a particular task."""
        for slot in self._slots:
            if slot.name == name:
                return slot
        raise ScheduleError(f"task {name!r} is not part of this schedule")

    @property
    def makespan(self) -> float:
        """Completion time of the last task (the paper's Delta column in Table 3)."""
        return self._slots[-1].finish if self._slots else self.start_time

    @property
    def total_energy(self) -> float:
        """Sum of per-slot energies (nominal, battery-agnostic)."""
        return sum(slot.energy for slot in self._slots)

    @property
    def peak_current(self) -> float:
        """Largest per-slot current in the schedule (mA)."""
        return max((slot.current for slot in self._slots), default=0.0)

    def meets_deadline(self, deadline: float) -> bool:
        """True when the schedule finishes no later than ``deadline``."""
        return self.makespan <= deadline + 1e-9

    def require_deadline(self, deadline: float) -> None:
        """Raise :class:`DeadlineError` unless the deadline is met."""
        if not self.meets_deadline(deadline):
            raise DeadlineError(
                f"schedule finishes at {self.makespan:g}, after the deadline {deadline:g}"
            )

    def current_increase_count(self) -> int:
        """Number of adjacent slot pairs whose current increases.

        This is the un-normalised form of the paper's CIF metric; the
        analysis helpers expose the normalised version.
        """
        return sum(
            1
            for earlier, later in zip(self._slots, self._slots[1:])
            if earlier.current < later.current
        )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_profile(self) -> LoadProfile:
        """Convert to the battery discharge profile induced by the schedule."""
        return LoadProfile.from_back_to_back(
            durations=[slot.duration for slot in self._slots],
            currents=[slot.current for slot in self._slots],
            labels=[slot.name for slot in self._slots],
            start_time=self.start_time,
        )

    def design_point_labels(self, prefix: str = "P") -> Tuple[str, ...]:
        """Per-slot design-point labels in sequence order (paper style, 1-based)."""
        return tuple(f"{prefix}{slot.design_point_column + 1}" for slot in self._slots)

    def to_dict(self) -> dict:
        """Serialise to a plain dictionary (JSON-friendly)."""
        return {
            "graph": self.graph.name,
            "sequence": list(self.sequence),
            "assignment": self.assignment.to_dict(),
            "start_time": self.start_time,
            "makespan": self.makespan,
        }

    def __repr__(self) -> str:
        return (
            f"Schedule({len(self._slots)} tasks, makespan={self.makespan:g}, "
            f"energy={self.total_energy:g})"
        )
