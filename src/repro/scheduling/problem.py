"""Problem instances: task graph + deadline + battery specification.

The paper's problem statement (Section 1) fixes three inputs: the task graph
with its per-task design points, the deadline ``d`` by which the whole graph
must complete, and the battery (its Rakhmatov–Vrudhula ``beta`` and, when
relevant, its capacity ``alpha``).  Bundling them keeps algorithm signatures
small and lets experiments describe themselves as data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..battery import BatteryModel, BatterySpec
from ..errors import ConfigurationError, InfeasibleDeadlineError
from ..taskgraph import TaskGraph

__all__ = ["SchedulingProblem"]


@dataclass(frozen=True)
class SchedulingProblem:
    """A complete battery-aware scheduling problem instance.

    Attributes
    ----------
    graph:
        The application task graph.
    deadline:
        Completion deadline for the whole graph (same time unit as the
        design-point execution times).
    battery:
        Battery specification; defaults to the paper's beta with unlimited
        capacity.
    name:
        Optional label used by experiment reports.
    """

    graph: TaskGraph
    deadline: float
    battery: BatterySpec = field(default_factory=BatterySpec)
    name: str = ""

    def __post_init__(self) -> None:
        if not math.isfinite(self.deadline) or self.deadline <= 0:
            raise ConfigurationError(
                f"deadline must be finite and > 0, got {self.deadline!r}"
            )
        self.graph.validate()

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    def model(self) -> BatteryModel:
        """The battery model configured for this instance.

        The paper's Rakhmatov–Vrudhula chemistry by default; whatever
        chemistry the :class:`~repro.battery.BatterySpec` names otherwise.
        """
        return self.battery.model()

    @property
    def slack_at_fastest(self) -> float:
        """Deadline minus the all-fastest makespan (negative when infeasible)."""
        return self.deadline - self.graph.min_makespan()

    @property
    def slack_at_slowest(self) -> float:
        """Deadline minus the all-slowest makespan (>= 0 means no scaling pressure)."""
        return self.deadline - self.graph.max_makespan()

    def is_feasible(self) -> bool:
        """True when even the fastest design points can meet the deadline."""
        return self.slack_at_fastest >= -1e-9

    def require_feasible(self) -> None:
        """Raise :class:`InfeasibleDeadlineError` when the deadline cannot be met."""
        if not self.is_feasible():
            raise InfeasibleDeadlineError(
                f"deadline {self.deadline:g} is below the all-fastest makespan "
                f"{self.graph.min_makespan():g}"
            )

    def tightness(self) -> float:
        """Deadline position within [min_makespan, max_makespan], clipped to [0, 1].

        0 means the deadline equals the all-fastest makespan (no slack at
        all); 1 means even the all-slowest assignment fits.  Useful for
        normalising sweep plots across different graphs.
        """
        lo = self.graph.min_makespan()
        hi = self.graph.max_makespan()
        if hi <= lo:
            return 1.0
        return min(1.0, max(0.0, (self.deadline - lo) / (hi - lo)))

    def with_deadline(self, deadline: float) -> "SchedulingProblem":
        """A copy of this problem with a different deadline."""
        return SchedulingProblem(
            graph=self.graph, deadline=deadline, battery=self.battery, name=self.name
        )

    def __repr__(self) -> str:
        label = f"{self.name or self.graph.name or 'problem'}"
        return (
            f"SchedulingProblem({label}: {self.graph.num_tasks} tasks, "
            f"deadline={self.deadline:g}, beta={self.battery.beta:g})"
        )
