"""Incremental, vectorized battery-cost evaluation of candidate schedules.

Every search layer in the library — the paper's iterative heuristic, the
hill-climbing refinement pass, the annealing yardstick and the enumeration
baselines — spends its time asking one question: *what is sigma for this
(sequence, assignment) candidate?*  This module answers it once, at three
speeds:

* :func:`evaluate_schedule` — the canonical **full** evaluation.  It skips
  the :class:`~repro.scheduling.Schedule` / :class:`~repro.battery.LoadProfile`
  object layer entirely, handing duration/current arrays straight to the
  battery model's vectorized schedule path
  (:meth:`~repro.battery.RakhmatovVrudhulaModel.schedule_charge`).
  :func:`~repro.scheduling.battery_cost` is a thin wrapper over it.
* :class:`IncrementalCostEvaluator` — **delta** evaluation for neighbourhood
  search.  It keeps a :class:`ScheduleState` (timeline arrays plus
  per-interval sigma contributions) and exposes ``propose``/``apply``/
  ``undo`` for the two neighbourhood moves every searcher uses: change one
  task's design point, or relocate one task to another position.  A proposal
  re-costs only the intervals whose contribution can have changed.
* :meth:`~repro.battery.RakhmatovVrudhulaModel.schedule_charge_batch` —
  **batch** evaluation of many same-length schedules at once (used by the
  uniform-assignment bounds).

Bit-level contract
------------------
The three paths return *bit-identical* sigma values for the same candidate.
This works because the canonical path parametrises interval ``k`` by its
**time-to-end** (the sum of the durations scheduled after it): a move at
position ``p`` leaves every interval after ``max(p, target)`` untouched —
same duration, same current, same time-to-end, bit for bit — so the
incremental evaluator recomputes only the affected prefix, re-extending the
same back-to-front suffix-sum chain a full evaluation would build
(:func:`~repro.battery.suffix_durations`), and reduces the contributions
with an exactly rounded (order-independent) ``math.fsum``.  Searches driven
incrementally therefore walk the *identical* trajectory a full-recompute
search would.

Chemistry dispatch
------------------
The evaluator is chemistry-generic: every model built on
:class:`~repro.battery.ScheduleKernelMixin` (all four built-in chemistries
— Rakhmatov–Vrudhula, Peukert, KiBaM, ideal) gets true incremental updates
through its ``interval_contributions`` kernel.  The recompute window
depends on the chemistry's ``TIME_SENSITIVE`` flag:

* **time-sensitive** chemistries (Rakhmatov–Vrudhula, KiBaM): a move at
  window ``[lo, hi]`` changes the time-to-end of every interval at or
  before ``hi``, so the whole prefix ``[0, hi]`` is re-costed and the
  suffix is reused;
* **time-insensitive** chemistries (Peukert, ideal): contributions ignore
  time-to-end entirely, so only the changed segment ``[lo, hi]`` is
  re-costed — contributions on *both* sides are reused bit-for-bit, and a
  moved evaluation point (deadline mode) invalidates nothing.

Third-party models without a vectorized schedule path (no
``interval_contributions``) degrade gracefully: proposals fall back to a
full ``schedule_charge`` evaluation, which for them materialises the load
profile — exactly what the pre-evaluator call sites did.

When the model is an :class:`~repro.engine.CachedBatteryModel`, proposals
probe its schedule cache first.  The evaluator maintains the cache key as a
pair of value tuples spliced per move (state deltas), so probing costs no
profile construction and repeat visits to a state — common in annealing
walks and across engine jobs — skip the series evaluation entirely.

A complete propose/apply/undo round trip (shared by the doctests below):

>>> from repro.battery import RakhmatovVrudhulaModel
>>> from repro.scheduling import DesignPointAssignment
>>> from repro.scheduling.evaluator import IncrementalCostEvaluator
>>> from repro.workloads import chain_graph
>>> graph = chain_graph(3, seed=1)
>>> assignment = DesignPointAssignment({name: 0 for name in graph.task_names()})
>>> evaluator = IncrementalCostEvaluator(
...     graph, graph.task_names(), assignment, RakhmatovVrudhulaModel(beta=0.273))
>>> proposal = evaluator.propose_design_point("T2", 3)
>>> evaluator.apply(proposal)
>>> evaluator.cost == proposal.cost and evaluator.cost == evaluator.evaluate_full()
True
>>> evaluator.undo()
>>> evaluator.columns["T2"]
0
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..battery import BatteryModel, suffix_durations
from ..errors import ConfigurationError, ScheduleError
from ..obs import RECORDER as _OBS
from ..taskgraph import TaskGraph, validate_sequence
from .assignment import DesignPointAssignment

__all__ = [
    "EVALUATION_MODES",
    "ScheduleEvaluation",
    "ScheduleState",
    "MoveProposal",
    "IncrementalCostEvaluator",
    "evaluate_schedule",
]

#: Supported sigma evaluation points (re-exported by :mod:`repro.scheduling.cost`).
EVALUATION_MODES = ("completion", "deadline")

#: Feasibility slack shared by the schedule/deadline comparisons.
_EPS = 1e-9


def _resolve_rest(
    makespan: float, deadline: Optional[float], evaluate_at: str
) -> float:
    """Idle time between completion and the sigma evaluation point.

    ``evaluate_at="completion"`` evaluates sigma at the makespan (rest 0).
    ``evaluate_at="deadline"`` evaluates at the deadline, crediting
    post-completion recovery — but a deadline *earlier* than the makespan is
    clamped to the makespan (rest 0 again): the cost of a deadline-missing
    schedule is its completion-time sigma, never a sigma from before the
    work has finished.  See :func:`repro.scheduling.battery_cost` for the
    user-facing statement of this clamping rule.
    """
    if evaluate_at not in EVALUATION_MODES:
        raise ConfigurationError(
            f"evaluate_at must be one of {EVALUATION_MODES}, got {evaluate_at!r}"
        )
    if evaluate_at == "deadline":
        if deadline is None:
            raise ConfigurationError('evaluate_at="deadline" requires a deadline value')
        return max(float(deadline) - makespan, 0.0)
    return 0.0


@dataclass(frozen=True)
class ScheduleEvaluation:
    """Result of one full canonical evaluation."""

    cost: float
    """Apparent charge sigma at the evaluation point (mA·min)."""

    makespan: float
    """Completion time of the schedule."""

    rest: float
    """Idle time between completion and the sigma evaluation point."""


def evaluate_schedule(
    graph: TaskGraph,
    sequence: Sequence[str],
    assignment: DesignPointAssignment,
    model: BatteryModel,
    deadline: Optional[float] = None,
    evaluate_at: str = "completion",
    validate: bool = True,
) -> ScheduleEvaluation:
    """Canonical full evaluation of one candidate solution.

    Builds the back-to-back duration/current arrays directly from the graph
    tables and hands them to the model's vectorized schedule path; no
    :class:`Schedule` or :class:`~repro.battery.LoadProfile` objects are
    created.  Returns bit-identical costs to the incremental evaluator.
    Compound tasks produced by :func:`repro.taskgraph.fuse` are expanded
    into their recorded member segments, so a fused schedule's canonical
    cost equals its unfused translation's cost bitwise (the compound's
    single averaged design point is only the search-time proxy).

    >>> from repro.battery import RakhmatovVrudhulaModel
    >>> from repro.scheduling import DesignPointAssignment
    >>> from repro.scheduling.evaluator import evaluate_schedule
    >>> from repro.workloads import chain_graph
    >>> graph = chain_graph(3, seed=1)
    >>> assignment = DesignPointAssignment({name: 0 for name in graph.task_names()})
    >>> evaluation = evaluate_schedule(
    ...     graph, graph.task_names(), assignment, RakhmatovVrudhulaModel(beta=0.273))
    >>> evaluation.cost > 0 and evaluation.rest == 0.0
    True
    """
    if validate:
        validate_sequence(graph, sequence)
        assignment.validate(graph)
    interval_durations: List[float] = []
    interval_currents: List[float] = []
    for name in sequence:
        task = graph.task(name)
        column = assignment[name]
        # Compound tasks (taskgraph.optimize.fuse) carry their members'
        # exact per-column (duration, current) rows; expanding them here
        # makes the canonical cost of a fused schedule bitwise equal to the
        # cost of its unfused translation, for every chemistry.
        segments = task.metadata.get("fused_segments")
        if segments is None:
            point = task.ordered_design_points()[column]
            interval_durations.append(point.execution_time)
            interval_currents.append(point.current)
        else:
            for duration, current in segments[column]:
                interval_durations.append(duration)
                interval_currents.append(current)
    durations = np.asarray(interval_durations, dtype=float)
    currents = np.asarray(interval_currents, dtype=float)
    makespan = math.fsum(durations)
    rest = _resolve_rest(makespan, deadline, evaluate_at)
    cost = model.schedule_charge(durations, currents, rest)
    return ScheduleEvaluation(cost=cost, makespan=makespan, rest=rest)


@dataclass
class ScheduleState:
    """Timeline arrays and per-interval sigma contributions of one candidate.

    ``durations``/``currents`` are per-position arrays in sequence order;
    ``tail[k]`` is the time-to-end of interval ``k`` (suffix sum of the
    durations after it); ``contributions[k]`` is interval ``k``'s share of
    sigma (``None`` for models without a vectorized schedule path, which
    evaluate whole schedules only).  For time-insensitive chemistries the
    contributions never read ``tail``, so the evaluator leaves it at its
    construction-time values rather than maintaining it per move.
    """

    sequence: List[str]
    columns: Dict[str, int]
    durations: np.ndarray
    currents: np.ndarray
    tail: np.ndarray
    contributions: Optional[np.ndarray]
    makespan: float
    rest: float
    cost: float

    def copy(self) -> "ScheduleState":
        """Independent deep-enough copy (external snapshotting hook).

        The evaluator itself reverts moves through O(window) undo records
        rather than full-state copies; this remains for callers that want a
        frozen view of a state.
        """
        return ScheduleState(
            sequence=list(self.sequence),
            columns=dict(self.columns),
            durations=self.durations.copy(),
            currents=self.currents.copy(),
            tail=self.tail.copy(),
            contributions=(
                self.contributions.copy() if self.contributions is not None else None
            ),
            makespan=self.makespan,
            rest=self.rest,
            cost=self.cost,
        )


@dataclass(frozen=True)
class MoveProposal:
    """A costed-but-uncommitted neighbourhood move.

    Produced by :meth:`IncrementalCostEvaluator.propose_design_point` and
    :meth:`~IncrementalCostEvaluator.propose_relocate`; hand it back to
    :meth:`~IncrementalCostEvaluator.apply` to commit it.  ``cost`` and
    ``makespan`` describe the *candidate* (post-move) schedule.
    """

    kind: str
    cost: float
    makespan: float
    rest: float
    sequence: Tuple[str, ...]
    columns: Tuple[Tuple[str, int], ...]
    _durations: np.ndarray = field(repr=False)
    _currents: np.ndarray = field(repr=False)
    _recompute_hi: int = field(repr=False)
    _recompute_lo: int = field(repr=False, default=0)
    _tail_head: Optional[np.ndarray] = field(repr=False, default=None)
    _contrib_head: Optional[np.ndarray] = field(repr=False, default=None)
    _dur_key: Optional[Tuple[float, ...]] = field(repr=False, default=None)
    _cur_key: Optional[Tuple[float, ...]] = field(repr=False, default=None)
    _version: int = field(repr=False, default=0)
    _changed_column: Optional[Tuple[str, int]] = field(repr=False, default=None)
    _move_window: Optional[Tuple[int, int]] = field(repr=False, default=None)


@dataclass
class _UndoRecord:
    """Minimal delta needed to revert one applied proposal.

    ``apply`` replaces the state's array/list/dict *objects* wholesale except
    for ``tail``/``contributions`` (mutated in place over the recompute
    window), so the record keeps cheap references to the replaced objects and
    copies only the overwritten slices — O(window), not O(n)."""

    sequence: List[str]
    columns_change: Optional[Tuple[str, int]]
    durations: np.ndarray
    currents: np.ndarray
    tail_slice: Optional[np.ndarray]
    contrib_slice: Optional[np.ndarray]
    lo: int
    hi: int
    makespan: float
    rest: float
    cost: float
    positions: Dict[str, int]
    columns_key: Tuple[Tuple[str, int], ...]
    dur_key: Optional[Tuple[float, ...]]
    cur_key: Optional[Tuple[float, ...]]


class IncrementalCostEvaluator:
    """Delta-updating battery-cost evaluator over (sequence, assignment) states.

    Parameters
    ----------
    graph:
        The task graph being scheduled.
    sequence, assignment:
        The starting candidate (validated against the graph).
    model:
        Battery model supplying the cost function.  Models implementing the
        vectorized schedule path (``interval_contributions`` — all four
        built-in chemistries) get true incremental updates, with the
        recompute window narrowed further for time-insensitive chemistries
        (see the module docstring); any other model is evaluated
        whole-schedule per proposal, which matches the pre-evaluator
        behaviour of the searchers.
    deadline, evaluate_at:
        Sigma evaluation point, with the same semantics (including deadline
        clamping) as :func:`repro.scheduling.battery_cost`.
    track_undo:
        When true (default) every ``apply`` records the one-level delta that
        ``undo`` reverts.  Searchers that only ever move forward (annealing,
        the refinement sweep: a rejected candidate is simply never applied)
        disable it to keep commits allocation-free.
    """

    def __init__(
        self,
        graph: TaskGraph,
        sequence: Sequence[str],
        assignment: DesignPointAssignment,
        model: BatteryModel,
        deadline: Optional[float] = None,
        evaluate_at: str = "completion",
        track_undo: bool = True,
    ) -> None:
        validate_sequence(graph, sequence)
        assignment.validate(graph)
        _resolve_rest(0.0, deadline, evaluate_at)  # validate mode/deadline pairing
        self.graph = graph
        self.model = model
        self.deadline = None if deadline is None else float(deadline)
        self.evaluate_at = evaluate_at
        self._vectorized = hasattr(model, "interval_contributions")
        cache_capable = hasattr(model, "lookup_schedule") and hasattr(
            model, "store_schedule"
        )
        self._schedule_cache = model if cache_capable else None
        # The evaluator probes/stores the schedule cache itself (with
        # delta-spliced keys), so misses are computed on the wrapped model
        # directly to avoid a second, re-boxed probe inside the wrapper.
        self._compute_model: BatteryModel = (
            model.inner if cache_capable and hasattr(model, "inner") else model
        )
        # Chemistry dispatch: time-insensitive kernels (Peukert, ideal) keep
        # contributions valid on both sides of a move.
        self._time_sensitive = bool(
            getattr(self._compute_model, "TIME_SENSITIVE", True)
        )
        # Per-task design-point tables, indexed by canonical column.
        self._durations_by_task: Dict[str, Tuple[float, ...]] = {}
        self._currents_by_task: Dict[str, Tuple[float, ...]] = {}
        for task in graph:
            points = task.ordered_design_points()
            self._durations_by_task[task.name] = tuple(dp.execution_time for dp in points)
            self._currents_by_task[task.name] = tuple(dp.current for dp in points)
        with _OBS.span("eval.state.build", label=graph.name or None):
            self.state = self._build_state(
                list(sequence), {name: assignment[name] for name in assignment}
            )
        self._positions = {name: index for index, name in enumerate(self.state.sequence)}
        self._undo_record: Optional[_UndoRecord] = None
        self._track_undo = bool(track_undo)
        self._version = 0
        # Sorted (task, column) key of the current state, spliced per move so
        # proposals never pay an O(n log n) re-sort on the hot path.
        self._name_rank = {
            name: rank for rank, name in enumerate(sorted(self.state.columns))
        }
        self._columns_key: Tuple[Tuple[str, int], ...] = tuple(
            sorted(self.state.columns.items())
        )
        # Cache key halves, spliced per move (state deltas) — only maintained
        # when the model actually exposes a schedule cache.
        self._dur_key: Optional[Tuple[float, ...]] = None
        self._cur_key: Optional[Tuple[float, ...]] = None
        if self._schedule_cache is not None:
            self._dur_key = tuple(map(float, self.state.durations))
            self._cur_key = tuple(map(float, self.state.currents))
            self._schedule_cache.store_schedule(
                (self._dur_key, self._cur_key, self.state.rest), self.state.cost
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        """sigma of the current state at the configured evaluation point."""
        return self.state.cost

    @property
    def makespan(self) -> float:
        """Completion time of the current state."""
        return self.state.makespan

    @property
    def sequence(self) -> Tuple[str, ...]:
        """Current task order."""
        return tuple(self.state.sequence)

    @property
    def columns(self) -> Dict[str, int]:
        """Current per-task design-point columns (a copy)."""
        return dict(self.state.columns)

    def assignment(self) -> DesignPointAssignment:
        """Current state as a :class:`DesignPointAssignment`."""
        return DesignPointAssignment(self.state.columns)

    def position(self, name: str) -> int:
        """Current position of a task in the sequence."""
        try:
            return self._positions[name]
        except KeyError:
            raise ScheduleError(f"task {name!r} is not part of this schedule") from None

    @property
    def positions(self) -> Dict[str, int]:
        """Live task -> position mapping of the current state.

        Returned by reference for hot-loop searchers (one dict lookup beats a
        method call per query); treat it as read-only — it is replaced, not
        mutated, when a relocation commits, so re-read it after ``apply``.
        """
        return self._positions

    def candidate_makespan(self, name: str, column: int) -> float:
        """Makespan if ``name`` moved to design-point ``column`` (no costing).

        Cheap feasibility pre-check for searchers that discard
        deadline-violating design-point moves before paying for a proposal.
        """
        position = self.position(name)
        durations = self._durations_by_task[name]
        if not (0 <= column < len(durations)):
            raise ScheduleError(
                f"column {column} out of range for task {name!r} "
                f"({len(durations)} design points)"
            )
        candidate = self.state.durations.tolist()
        candidate[position] = durations[column]
        return math.fsum(candidate)

    def evaluate_full(self) -> float:
        """Full from-scratch evaluation of the current state (testing hook)."""
        return evaluate_schedule(
            self.graph,
            self.state.sequence,
            DesignPointAssignment(self.state.columns),
            self.model,
            deadline=self.deadline,
            evaluate_at=self.evaluate_at,
            validate=False,
        ).cost

    # ------------------------------------------------------------------
    # proposals
    # ------------------------------------------------------------------
    def propose_design_point(self, name: str, column: int) -> MoveProposal:
        """Cost the move "run ``name`` at design-point ``column``" without committing.

        Only intervals at or before ``name``'s position are re-evaluated:
        later intervals keep their time-to-end (the changed duration is not
        part of their suffix), so their contributions are reused bit-for-bit.
        """
        position = self.position(name)
        durations = self._durations_by_task[name]
        if not (0 <= column < len(durations)):
            raise ScheduleError(
                f"column {column} out of range for task {name!r} "
                f"({len(durations)} design points)"
            )
        if column == self.state.columns[name]:
            raise ScheduleError(
                f"task {name!r} already runs at design-point column {column}"
            )
        new_durations = self.state.durations.copy()
        new_currents = self.state.currents.copy()
        new_durations[position] = durations[column]
        new_currents[position] = self._currents_by_task[name][column]
        makespan = math.fsum(new_durations.tolist())
        rest = _resolve_rest(makespan, self.deadline, self.evaluate_at)
        rank = self._name_rank[name]
        columns_key = (
            self._columns_key[:rank]
            + ((name, column),)
            + self._columns_key[rank + 1 :]
        )
        return self._cost_candidate(
            kind="design_point",
            sequence=tuple(self.state.sequence),
            columns_key=columns_key,
            new_durations=new_durations,
            new_currents=new_currents,
            lo=position,
            hi=position,
            makespan=makespan,
            rest=rest,
            changed_column=(name, column),
        )

    def propose_relocate(self, name: str, position: int) -> MoveProposal:
        """Cost the move "place ``name`` at sequence ``position``" without committing.

        The target position must lie within the window allowed by ``name``'s
        predecessors and successors (validity by construction).  Intervals
        after ``max(old, new)`` position are reused bit-for-bit; the makespan
        is exactly unchanged (same duration multiset, exact fsum).
        """
        index = self.position(name)
        n = len(self.state.sequence)
        if not (0 <= position < n):
            raise ScheduleError(f"target position {position} out of range [0, {n})")
        if position == index:
            raise ScheduleError(f"task {name!r} is already at position {position}")
        lower = max(
            (self._positions[p] for p in self.graph.predecessors(name)), default=-1
        ) + 1
        upper = min(
            (self._positions[s] for s in self.graph.successors(name)), default=n
        ) - 1
        if not (lower <= position <= upper):
            raise ScheduleError(
                f"moving task {name!r} to position {position} violates precedence "
                f"(legal window [{lower}, {upper}])"
            )
        new_sequence = list(self.state.sequence)
        new_sequence.pop(index)
        new_sequence.insert(position, name)
        lo, hi = (index, position) if index < position else (position, index)
        new_durations = self.state.durations.copy()
        new_currents = self.state.currents.copy()
        segment = [
            (
                self._durations_by_task[task][self.state.columns[task]],
                self._currents_by_task[task][self.state.columns[task]],
            )
            for task in new_sequence[lo : hi + 1]
        ]
        new_durations[lo : hi + 1] = [duration for duration, _ in segment]
        new_currents[lo : hi + 1] = [current for _, current in segment]
        # Same duration multiset => exactly the same fsum makespan and rest.
        return self._cost_candidate(
            kind="relocate",
            sequence=tuple(new_sequence),
            columns_key=self._columns_key,
            new_durations=new_durations,
            new_currents=new_currents,
            lo=lo,
            hi=hi,
            makespan=self.state.makespan,
            rest=self.state.rest,
            changed_column=None,
            move_window=(lo, hi),
        )

    def _cost_candidate(
        self,
        kind: str,
        sequence: Tuple[str, ...],
        columns_key: Tuple[Tuple[str, int], ...],
        new_durations: np.ndarray,
        new_currents: np.ndarray,
        lo: int,
        hi: int,
        makespan: float,
        rest: float,
        changed_column: Optional[Tuple[str, int]],
        move_window: Optional[Tuple[int, int]] = None,
    ) -> MoveProposal:
        """Evaluate a candidate's cost, reusing unaffected contributions and cache."""
        recompute_lo = 0
        recompute_hi = hi
        if not self._time_sensitive:
            # Contributions ignore time-to-end: both sides of the changed
            # segment are reused, and a moved evaluation point (deadline
            # mode) invalidates nothing.
            recompute_lo = lo
        elif rest != self.state.rest:
            # The evaluation point moved (deadline mode): every interval's
            # time-to-evaluation changes, so nothing can be reused.
            recompute_hi = len(sequence) - 1
        if _OBS.enabled:
            # Window length observed before the cache probe: the histogram
            # stays a deterministic function of the proposal stream.
            _OBS.count(f"eval.propose.{kind}")
            _OBS.observe("eval.recompute_window", recompute_hi - recompute_lo + 1)
        dur_key: Optional[Tuple[float, ...]] = None
        cur_key: Optional[Tuple[float, ...]] = None
        cached: Optional[float] = None
        if self._schedule_cache is not None:
            # Splice the changed segment into the current key tuples instead
            # of re-boxing the whole arrays: a state-delta cache key.
            dur_key = (
                self._dur_key[:lo]
                + tuple(map(float, new_durations[lo : hi + 1]))
                + self._dur_key[hi + 1 :]
            )
            cur_key = (
                self._cur_key[:lo]
                + tuple(map(float, new_currents[lo : hi + 1]))
                + self._cur_key[hi + 1 :]
            )
            cached = self._schedule_cache.lookup_schedule((dur_key, cur_key, rest))
            if _OBS.enabled:
                _OBS.count("rt.eval.cache.hit" if cached is not None else "rt.eval.cache.miss")
        tail_head: Optional[np.ndarray] = None
        contrib_head: Optional[np.ndarray] = None
        if cached is not None:
            cost = cached
        elif self._vectorized and self.state.contributions is not None:
            tail_head, contrib_head = self._recompute_window(
                new_durations, new_currents, recompute_lo, recompute_hi, rest
            )
            # fsum over plain floats (tolist) — exact, order-independent, and
            # much faster than iterating the boxed numpy elements.
            values = (
                contrib_head.tolist()
                + self.state.contributions[recompute_hi + 1 :].tolist()
            )
            if recompute_lo:
                values += self.state.contributions[:recompute_lo].tolist()
            cost = float(math.fsum(values))
        else:
            cost = self._compute_model.schedule_charge(new_durations, new_currents, rest)
        if cached is None and self._schedule_cache is not None:
            self._schedule_cache.store_schedule((dur_key, cur_key, rest), cost)
        return MoveProposal(
            kind=kind,
            cost=cost,
            makespan=makespan,
            rest=rest,
            sequence=sequence,
            columns=columns_key,
            _durations=new_durations,
            _currents=new_currents,
            _recompute_hi=recompute_hi,
            _recompute_lo=recompute_lo,
            _tail_head=tail_head,
            _contrib_head=contrib_head,
            _dur_key=dur_key,
            _cur_key=cur_key,
            _version=self._version,
            _changed_column=changed_column,
            _move_window=move_window,
        )

    def _recompute_window(
        self,
        durations: np.ndarray,
        currents: np.ndarray,
        lo: int,
        hi: int,
        rest: float,
    ) -> Tuple[Optional[np.ndarray], np.ndarray]:
        """Recompute the contributions of window ``[lo, hi]`` for a candidate.

        Time-sensitive chemistries always pass ``lo == 0`` (the whole prefix
        changed time-to-end): ``tail[hi]`` is unchanged by construction
        (only durations at or before ``hi`` differ), so the suffix-sum chain
        is re-extended from it downwards with exactly the additions a full
        back-to-front cumsum would perform — the root of the
        full/incremental bit-identity — and the refreshed ``tail[0:hi]`` is
        returned alongside the contributions.

        Time-insensitive chemistries re-cost only ``[lo, hi]``; the kernel
        ignores time-to-end, so no tail maintenance is needed (``None``).
        """
        if not self._time_sensitive:
            contrib = self._compute_model.interval_contributions(
                durations[lo : hi + 1],
                currents[lo : hi + 1],
                np.zeros(hi - lo + 1),
            )
            return None, contrib
        n = durations.shape[0]
        if hi >= n - 1:
            tail_all = suffix_durations(durations)
            tail_head = tail_all[:-1]
            time_to_end = tail_all + rest
        else:
            # Re-extend the back-to-front suffix-sum chain from the unchanged
            # anchor tail[hi], with exactly the additions a full cumsum would
            # perform (in-place, no intermediate concatenations).
            anchor = self.state.tail[hi]
            chain = np.empty(hi + 1)
            chain[0] = anchor
            chain[1:] = durations[hi:0:-1]
            np.cumsum(chain, out=chain)
            tail_head = chain[1:][::-1]
            time_to_end = np.empty(hi + 1)
            time_to_end[:hi] = tail_head
            time_to_end[hi] = anchor
            time_to_end += rest
        contrib_head = self._compute_model.interval_contributions(
            durations[: hi + 1], currents[: hi + 1], time_to_end[: hi + 1]
        )
        return tail_head, contrib_head

    # ------------------------------------------------------------------
    # state transitions
    # ------------------------------------------------------------------
    def apply(self, proposal: MoveProposal) -> None:
        """Commit a proposal produced from the *current* state.

        Applies state deltas only: the arrays/objects the proposal replaces
        are kept by reference in a one-level undo record, the per-interval
        contributions (and tail) are patched in place over the recompute
        window, and position/column bookkeeping is touched only where the
        move kind actually changes it.
        """
        if proposal._version != self._version:
            raise ScheduleError(
                "stale proposal: it was produced from a different evaluator state"
            )
        state = self.state
        hi = proposal._recompute_hi
        lo = proposal._recompute_lo
        record: Optional[_UndoRecord] = None
        if self._track_undo:
            record = _UndoRecord(
                sequence=state.sequence,
                columns_change=None,
                durations=state.durations,
                currents=state.currents,
                tail_slice=None,
                contrib_slice=None,
                lo=lo,
                hi=hi,
                makespan=state.makespan,
                rest=state.rest,
                cost=state.cost,
                positions=self._positions,
                columns_key=self._columns_key,
                dur_key=self._dur_key,
                cur_key=self._cur_key,
            )
        if self._vectorized and state.contributions is not None:
            if proposal._contrib_head is None:
                # Cache hit skipped the array work at proposal time; redo it
                # now so the state stays internally consistent.
                tail_head, contrib_head = self._recompute_window(
                    proposal._durations, proposal._currents, lo, hi, proposal.rest
                )
            else:
                tail_head, contrib_head = proposal._tail_head, proposal._contrib_head
            if record is not None:
                record.contrib_slice = state.contributions[lo : hi + 1].copy()
            state.contributions[lo : hi + 1] = contrib_head
            if tail_head is not None and hi > 0:
                if record is not None:
                    record.tail_slice = state.tail[:hi].copy()
                state.tail[:hi] = tail_head
        state.durations = proposal._durations
        state.currents = proposal._currents
        if proposal._changed_column is not None:
            name, column = proposal._changed_column
            if record is not None:
                record.columns_change = (name, state.columns[name])
            state.columns[name] = column
        else:
            # Relocation: columns untouched, but order and positions change —
            # only inside the move window, so patch a copy rather than
            # rebuilding the whole mapping (the old dict stays in the record).
            state.sequence = list(proposal.sequence)
            positions = self._positions.copy()
            move_lo, move_hi = proposal._move_window
            for index in range(move_lo, move_hi + 1):
                positions[state.sequence[index]] = index
            self._positions = positions
        state.makespan = proposal.makespan
        state.rest = proposal.rest
        state.cost = proposal.cost
        self._version += 1
        self._columns_key = proposal.columns
        if self._track_undo:
            self._undo_record = record
        if self._schedule_cache is not None:
            self._dur_key = proposal._dur_key
            self._cur_key = proposal._cur_key
        if _OBS.enabled:
            _OBS.count("eval.apply")

    def undo(self) -> None:
        """Revert the most recently applied proposal (one level deep)."""
        record = self._undo_record
        if record is None:
            if not self._track_undo:
                raise ScheduleError(
                    "undo is disabled: this evaluator was built with track_undo=False"
                )
            raise ScheduleError("nothing to undo: no proposal has been applied")
        state = self.state
        state.sequence = record.sequence
        if record.columns_change is not None:
            name, column = record.columns_change
            state.columns[name] = column
        state.durations = record.durations
        state.currents = record.currents
        if state.contributions is not None and record.contrib_slice is not None:
            state.contributions[record.lo : record.hi + 1] = record.contrib_slice
        if record.tail_slice is not None:
            state.tail[: record.hi] = record.tail_slice
        state.makespan = record.makespan
        state.rest = record.rest
        state.cost = record.cost
        self._positions = record.positions
        self._columns_key = record.columns_key
        self._dur_key = record.dur_key
        self._cur_key = record.cur_key
        self._undo_record = None
        self._version += 1
        if _OBS.enabled:
            _OBS.count("eval.undo")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_state(self, sequence: List[str], columns: Dict[str, int]) -> ScheduleState:
        durations = np.array(
            [self._durations_by_task[name][columns[name]] for name in sequence]
        )
        currents = np.array(
            [self._currents_by_task[name][columns[name]] for name in sequence]
        )
        makespan = math.fsum(durations)
        rest = _resolve_rest(makespan, self.deadline, self.evaluate_at)
        tail = suffix_durations(durations)
        if self._vectorized:
            contributions = self._compute_model.interval_contributions(
                durations, currents, tail + rest
            )
            cost = float(math.fsum(contributions))
        else:
            contributions = None
            cost = self._compute_model.schedule_charge(durations, currents, rest)
        return ScheduleState(
            sequence=sequence,
            columns=columns,
            durations=durations,
            currents=currents,
            tail=tail,
            contributions=contributions,
            makespan=makespan,
            rest=rest,
            cost=cost,
        )

    def __repr__(self) -> str:
        return (
            f"IncrementalCostEvaluator({len(self.state.sequence)} tasks, "
            f"cost={self.state.cost:g}, makespan={self.state.makespan:g})"
        )
