"""Battery cost of a schedule (the paper's ``CalculateBatteryCost``).

The cost of a candidate solution is the apparent charge sigma drawn from the
battery by the time the last task completes, computed with the problem's
battery chemistry (the Rakhmatov–Vrudhula model by default) over the
back-to-back discharge profile induced by the task sequence and its
design-point assignment.  An option allows
evaluating sigma at the deadline instead, which credits the recovery that
happens while the platform idles between completion and the deadline.

:func:`battery_cost` is a thin wrapper over the evaluator stack
(:func:`repro.scheduling.evaluator.evaluate_schedule`): validation plus the
vectorized array path of the battery model, with no ``Schedule`` or
``LoadProfile`` objects on the hot path.  It returns values bit-identical to
the evaluator's full and incremental evaluations of the same candidate.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..battery import BatteryModel, LoadProfile
from ..taskgraph import TaskGraph
from .assignment import DesignPointAssignment
from .evaluator import EVALUATION_MODES, evaluate_schedule
from .schedule import Schedule

__all__ = ["battery_cost", "profile_for", "EVALUATION_MODES"]


def profile_for(
    graph: TaskGraph,
    sequence: Sequence[str],
    assignment: DesignPointAssignment,
) -> LoadProfile:
    """Discharge profile of executing ``sequence`` back-to-back with ``assignment``."""
    return Schedule(graph, sequence, assignment).to_profile()


def battery_cost(
    graph: TaskGraph,
    sequence: Sequence[str],
    assignment: DesignPointAssignment,
    model: BatteryModel,
    deadline: Optional[float] = None,
    evaluate_at: str = "completion",
) -> float:
    """Apparent charge consumed by a candidate solution.

    Parameters
    ----------
    graph, sequence, assignment:
        The candidate solution.  The sequence must respect the graph's
        precedence edges and the assignment must cover every task.
    model:
        Battery model used as the cost function (normally a
        :class:`~repro.battery.RakhmatovVrudhulaModel`).
    deadline:
        Required when ``evaluate_at="deadline"``; ignored otherwise.
    evaluate_at:
        ``"completion"`` (default, matches the paper's Table 3, where sigma is
        reported alongside the sequence duration Delta) evaluates sigma at the
        makespan; ``"deadline"`` evaluates it at the deadline, crediting
        post-completion recovery.

    Deadline clamping
    -----------------
    In ``evaluate_at="deadline"`` mode the evaluation time is
    ``max(deadline, makespan)``: a deadline *earlier* than the schedule's
    completion time is silently clamped to the completion time rather than
    rejected.  Two properties follow, both covered by the test-suite:

    * a deadline-missing schedule is *not* an error here — its cost equals
      its ``evaluate_at="completion"`` cost exactly (no recovery credit, and
      never a sigma evaluated mid-schedule); feasibility checking is the
      caller's job (:meth:`repro.scheduling.Schedule.require_deadline`);
    * the deadline-mode cost is always less than or equal to the
      completion-mode cost, since resting past completion can only recover
      charge.
    """
    return evaluate_schedule(
        graph,
        sequence,
        assignment,
        model,
        deadline=deadline,
        evaluate_at=evaluate_at,
    ).cost
