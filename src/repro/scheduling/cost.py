"""Battery cost of a schedule (the paper's ``CalculateBatteryCost``).

The cost of a candidate solution is the apparent charge sigma drawn from the
battery by the time the last task completes, computed with the
Rakhmatov–Vrudhula model over the back-to-back discharge profile induced by
the task sequence and its design-point assignment.  An option allows
evaluating sigma at the deadline instead, which credits the recovery that
happens while the platform idles between completion and the deadline.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..battery import BatteryModel, LoadProfile, RakhmatovVrudhulaModel
from ..errors import ConfigurationError
from ..taskgraph import TaskGraph
from .assignment import DesignPointAssignment
from .schedule import Schedule

__all__ = ["battery_cost", "profile_for", "EVALUATION_MODES"]

#: Supported sigma evaluation points.
EVALUATION_MODES = ("completion", "deadline")


def profile_for(
    graph: TaskGraph,
    sequence: Sequence[str],
    assignment: DesignPointAssignment,
) -> LoadProfile:
    """Discharge profile of executing ``sequence`` back-to-back with ``assignment``."""
    return Schedule(graph, sequence, assignment).to_profile()


def battery_cost(
    graph: TaskGraph,
    sequence: Sequence[str],
    assignment: DesignPointAssignment,
    model: BatteryModel,
    deadline: Optional[float] = None,
    evaluate_at: str = "completion",
) -> float:
    """Apparent charge consumed by a candidate solution.

    Parameters
    ----------
    graph, sequence, assignment:
        The candidate solution.  The sequence must respect the graph's
        precedence edges and the assignment must cover every task.
    model:
        Battery model used as the cost function (normally a
        :class:`~repro.battery.RakhmatovVrudhulaModel`).
    deadline:
        Required when ``evaluate_at="deadline"``; ignored otherwise.
    evaluate_at:
        ``"completion"`` (default, matches the paper's Table 3, where sigma is
        reported alongside the sequence duration Delta) evaluates sigma at the
        makespan; ``"deadline"`` evaluates it at the deadline, crediting
        post-completion recovery.
    """
    if evaluate_at not in EVALUATION_MODES:
        raise ConfigurationError(
            f"evaluate_at must be one of {EVALUATION_MODES}, got {evaluate_at!r}"
        )
    schedule = Schedule(graph, sequence, assignment)
    profile = schedule.to_profile()
    if evaluate_at == "deadline":
        if deadline is None:
            raise ConfigurationError('evaluate_at="deadline" requires a deadline value')
        at_time = max(float(deadline), schedule.makespan)
    else:
        at_time = schedule.makespan
    return model.apparent_charge(profile, at_time=at_time)
