"""Design-point assignments: the mapping from tasks to chosen design points.

The paper represents this mapping with the selection matrix ``S`` (one row
per task, one column per design point, exactly one 1 per row).  At the
library's public API level the same information is carried by a
:class:`DesignPointAssignment`, a small immutable mapping from task name to
the *canonical column index* of the chosen design point (0-based, column 0
being the fastest / highest-power implementation — the paper's DP1).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from ..errors import ScheduleError, UnknownTaskError
from ..taskgraph import DesignPoint, Task, TaskGraph

__all__ = ["DesignPointAssignment"]


class DesignPointAssignment(Mapping[str, int]):
    """Immutable mapping ``task name -> chosen design-point column`` (0-based).

    Columns index each task's canonical ordering
    (:meth:`~repro.taskgraph.Task.ordered_design_points`): column 0 is the
    fastest, highest-current design point (the paper's DP1) and column
    ``m - 1`` the slowest, lowest-current one (the paper's DPm).
    """

    def __init__(self, choices: Mapping[str, int]) -> None:
        cleaned: Dict[str, int] = {}
        for name, column in choices.items():
            column = int(column)
            if column < 0:
                raise ScheduleError(
                    f"design-point column for task {name!r} must be >= 0, got {column}"
                )
            cleaned[str(name)] = column
        self._choices: Dict[str, int] = cleaned

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> int:
        return self._choices[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._choices)

    def __len__(self) -> int:
        return len(self._choices)

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}:{col + 1}" for name, col in sorted(self._choices.items()))
        return f"DesignPointAssignment({inner})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DesignPointAssignment):
            return self._choices == other._choices
        if isinstance(other, Mapping):
            return dict(self._choices) == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._choices.items())))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, graph: TaskGraph, column: int) -> "DesignPointAssignment":
        """Assign every task the same column (e.g. all-fastest or all-slowest)."""
        choices = {}
        for task in graph:
            if column >= task.num_design_points or column < -task.num_design_points:
                raise ScheduleError(
                    f"column {column} out of range for task {task.name!r} "
                    f"({task.num_design_points} design points)"
                )
            choices[task.name] = column % task.num_design_points
        return cls(choices)

    @classmethod
    def all_fastest(cls, graph: TaskGraph) -> "DesignPointAssignment":
        """Every task at its fastest (highest-power) design point."""
        return cls.uniform(graph, 0)

    @classmethod
    def all_slowest(cls, graph: TaskGraph) -> "DesignPointAssignment":
        """Every task at its slowest (lowest-power) design point."""
        return cls({task.name: task.num_design_points - 1 for task in graph})

    def replacing(self, name: str, column: int) -> "DesignPointAssignment":
        """Return a copy with the choice for one task changed."""
        updated = dict(self._choices)
        updated[name] = column
        return DesignPointAssignment(updated)

    # ------------------------------------------------------------------
    # graph-aware queries
    # ------------------------------------------------------------------
    def validate(self, graph: TaskGraph) -> None:
        """Check the assignment covers exactly the graph's tasks with valid columns."""
        graph_names = set(graph.task_names())
        missing = graph_names - set(self._choices)
        if missing:
            raise ScheduleError(f"assignment is missing tasks: {sorted(missing)}")
        extra = set(self._choices) - graph_names
        if extra:
            raise UnknownTaskError(f"assignment references unknown tasks: {sorted(extra)}")
        for name, column in self._choices.items():
            task = graph.task(name)
            if column >= task.num_design_points:
                raise ScheduleError(
                    f"task {name!r} has {task.num_design_points} design points "
                    f"but column {column} was assigned"
                )

    def design_point(self, graph: TaskGraph, name: str) -> DesignPoint:
        """The chosen :class:`DesignPoint` for a task."""
        task = graph.task(name)
        return task.ordered_design_points()[self[name]]

    def execution_time(self, graph: TaskGraph, name: str) -> float:
        """Execution time of a task under its chosen design point."""
        return self.design_point(graph, name).execution_time

    def current(self, graph: TaskGraph, name: str) -> float:
        """Current of a task under its chosen design point (mA)."""
        return self.design_point(graph, name).current

    def total_execution_time(self, graph: TaskGraph) -> float:
        """Sequential makespan: sum of all chosen execution times."""
        return sum(self.execution_time(graph, name) for name in graph.task_names())

    def total_energy(self, graph: TaskGraph) -> float:
        """Total average energy of the chosen design points (the paper's ``En``)."""
        return sum(self.design_point(graph, name).energy for name in graph.task_names())

    def labels(self, graph: TaskGraph, prefix: str = "P") -> Dict[str, str]:
        """Human-readable per-task labels in the paper's style (``P1`` .. ``Pm``)."""
        return {name: f"{prefix}{self[name] + 1}" for name in graph.task_names()}

    def to_dict(self) -> Dict[str, int]:
        """Plain dictionary copy (JSON-friendly, 0-based columns)."""
        return dict(self._choices)
