"""List scheduling: precedence-respecting sequences from task priorities.

The paper generates every task sequence with "a modified list based
scheduling algorithm": tasks whose predecessors have all been scheduled form
the *ready list*, and the ready task with the largest weight is scheduled
next.  Different weight functions produce the different sequences the
algorithm works with:

* ``SequenceDecEnergy`` — weight = average energy over the task's design
  points (used to seed the very first iteration);
* ``FindWeightedSequence`` — weight = total chosen-design-point current of
  the subgraph rooted at the task (Equation 4, used to refine the sequence
  between iterations);
* the baseline of [1] — weight = max(task current, mean subgraph current)
  (Equation 5).

This module provides the generic engine plus the two weight functions that
belong to the substrate; the Equation 4 weights live with the core
algorithm, and Equation 5 with the baselines.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ScheduleError
from ..taskgraph import Task, TaskGraph

__all__ = [
    "list_schedule",
    "sequence_by_weights",
    "sequence_by_decreasing_energy",
    "average_energy_weights",
]

PriorityFunction = Callable[[Task], float]


def list_schedule(
    graph: TaskGraph,
    priority: PriorityFunction,
    higher_first: bool = True,
) -> Tuple[str, ...]:
    """Produce a precedence-respecting total order using list scheduling.

    Parameters
    ----------
    graph:
        Task graph to sequence.
    priority:
        Function mapping a :class:`~repro.taskgraph.Task` to its weight.
    higher_first:
        When true (the paper's convention) the ready task with the largest
        weight is scheduled first; ties are broken by task insertion order so
        the result is deterministic.

    Returns
    -------
    tuple of task names covering the whole graph.
    """
    weights = {task.name: float(priority(task)) for task in graph}
    return sequence_by_weights(graph, weights, higher_first=higher_first)


def sequence_by_weights(
    graph: TaskGraph,
    weights: Mapping[str, float],
    higher_first: bool = True,
) -> Tuple[str, ...]:
    """List-schedule with explicit per-task weights.

    Every task must have a weight.  The ready list is re-evaluated after each
    scheduling decision; ties are broken by the graph's task insertion order,
    which keeps the output deterministic and reproducible.
    """
    names = graph.task_names()
    missing = [name for name in names if name not in weights]
    if missing:
        raise ScheduleError(f"weights missing for tasks: {missing}")

    insertion_rank = {name: index for index, name in enumerate(names)}
    remaining_preds: Dict[str, int] = {
        name: len(graph.predecessors(name)) for name in names
    }
    sequence: List[str] = []

    sign = -1.0 if higher_first else 1.0
    # (signed weight, insertion rank) is a unique total order over tasks,
    # so popping the heap minimum selects exactly the task the previous
    # sort-then-pop(0) loop chose — identical sequences, O(log n) a step.
    sort_key = lambda name: (sign * float(weights[name]), insertion_rank[name], name)
    ready: List[Tuple[float, int, str]] = [
        sort_key(name) for name in names if remaining_preds[name] == 0
    ]
    heapq.heapify(ready)

    while ready:
        chosen = heapq.heappop(ready)[2]
        sequence.append(chosen)
        for child in graph.successors(chosen):
            remaining_preds[child] -= 1
            if remaining_preds[child] == 0:
                heapq.heappush(ready, sort_key(child))

    if len(sequence) != len(names):
        raise ScheduleError(
            "list scheduling could not place every task; the graph contains a cycle"
        )
    return tuple(sequence)


def average_energy_weights(graph: TaskGraph) -> Dict[str, float]:
    """Per-task weights equal to the average energy of the task's design points."""
    return {task.name: task.average_energy for task in graph}


def sequence_by_decreasing_energy(graph: TaskGraph) -> Tuple[str, ...]:
    """The paper's ``SequenceDecEnergy``: ready tasks with larger average energy go first.

    This produces the initial sequence ``L`` used by the first iteration of
    the main algorithm.
    """
    return sequence_by_weights(graph, average_energy_weights(graph), higher_first=True)
