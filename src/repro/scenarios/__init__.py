"""Scenario catalogue: named, seeded, parameterized benchmark environments.

The ROADMAP's third axis — "handles as many scenarios as you can
imagine" — as a subsystem.  A :class:`ScenarioSpec` is pure data crossing
four dimensions:

* **DAG family** (:mod:`~repro.scenarios.families`) — estee-style seeded
  graph generators: chain, fork-join, layered, crossbar, map-reduce,
  series-parallel, random-Erdős, trees, diamonds, FFT, Gaussian
  elimination, plus serially replicated variants of the paper's G2/G3;
* **platform model** (:mod:`~repro.scenarios.platforms`) — where design
  points come from: the paper's voltage-scaling recipe, a physical DVS
  processor, or an FPGA bitstream library;
* **battery chemistry** (:data:`repro.battery.CHEMISTRIES`) — what sigma
  means: Rakhmatov–Vrudhula (the paper), Peukert, KiBaM, or ideal;
* **deadline tightness** — where the deadline sits between the
  all-fastest and all-slowest makespans.

Specs build :class:`~repro.scheduling.SchedulingProblem` instances
deterministically and carry a content hash, so catalogues can be
committed, diffed, and rebuilt bit-identically in any process.  The
default catalogue (:func:`default_registry`) is what
``python -m repro.cli suite`` runs and what ``docs/scenarios.md``
documents.

>>> from repro.scenarios import default_registry
>>> registry = default_registry()
>>> problem = registry.get("crossbar-4x3").build_problem()
>>> problem.graph.num_tasks
12
"""

from .families import FAMILIES, FamilyInfo, build_family, family_names, register_family
from .platforms import (
    PLATFORMS,
    DvsSynthesis,
    FpgaSynthesis,
    make_platform,
    platform_names,
)
from .registry import ScenarioRegistry, default_registry
from .report import catalogue_markdown, catalogue_table, leaderboard_markdown
from .spec import ScenarioSpec, canonical_json, problem_fingerprint
from .catalog import CORE_SCENARIOS, build_catalog

__all__ = [
    "ScenarioSpec",
    "ScenarioRegistry",
    "default_registry",
    "build_catalog",
    "CORE_SCENARIOS",
    "FAMILIES",
    "FamilyInfo",
    "register_family",
    "family_names",
    "build_family",
    "PLATFORMS",
    "DvsSynthesis",
    "FpgaSynthesis",
    "platform_names",
    "make_platform",
    "problem_fingerprint",
    "canonical_json",
    "catalogue_table",
    "catalogue_markdown",
    "leaderboard_markdown",
]
