"""The default scenario catalogue.

Named, seeded benchmark scenarios crossing the DAG families of
:mod:`repro.scenarios.families` with battery chemistries
(Rakhmatov–Vrudhula, Peukert, KiBaM, ideal), platform models
(voltage-scaling, DVS processor, FPGA fabric) and deadline-tightness tiers
(tight 0.2 / mid 0.5 / loose 0.8).

The catalogue is organised in blocks:

* **core** — the eight graphs of the original hand-rolled workload suite,
  re-expressed as specs (``repro.workloads.standard_suite`` is now a thin
  view over this block);
* **scaled-paper** — the paper's G2/G3 replicated in series;
* **families** — the estee-style generator families at larger sizes;
* **tightness** — tight/loose deadline tiers of representative graphs;
* **chemistry** — representative graphs under non-default battery models;
* **platform** — representative graphs with DVS- and FPGA-derived design
  points;
* **stochastic** — scenarios carrying the optional perturbation tier
  (duration jitter x failure rate) consumed by the runtime simulator
  (``repro.sim`` / ``python -m repro.cli simulate``); their *offline*
  problems are identical to the corresponding deterministic entries;
* **tournament** — the robustness-tournament grid (``tour-*``): three
  representative families x two chemistries x two jitter levels x four
  information modes (exact / blind / mean / noisy — what the online
  policies *believe* about durations, see :mod:`repro.sim.imode`),
  consumed by ``python -m repro.cli tournament``.

Regenerate the committed ``docs/scenarios.md`` from this module with
``python -m repro.cli docs`` (CI fails when the two drift apart).
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from .registry import ScenarioRegistry
from .spec import ScenarioSpec

__all__ = ["build_catalog", "CORE_SCENARIOS"]

#: Names of the core block — the legacy ``standard_suite`` workloads, in
#: the legacy order (the suite view depends on these names existing).
CORE_SCENARIOS = (
    "g2",
    "g3",
    "chain-10",
    "fork-join-2x4",
    "layered-4x3",
    "tree-out-3x2",
    "tree-in-3x2",
    "diamond-3",
)


def _spec(
    name: str,
    family: str,
    seed: int = 0,
    tightness: float = 0.5,
    family_params: Optional[Mapping[str, Any]] = None,
    chemistry: str = "rakhmatov",
    chemistry_params: Optional[Mapping[str, Any]] = None,
    platform: str = "voltage-scaling",
    platform_params: Optional[Mapping[str, Any]] = None,
    jitter: float = 0.0,
    jitter_model: str = "lognormal",
    failure_rate: float = 0.0,
    imode: str = "exact",
    imode_rel_error: float = 0.0,
    imode_seed: int = 0,
    description: str = "",
) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        family=family,
        family_params=family_params or {},
        seed=seed,
        tightness=tightness,
        platform=platform,
        platform_params=platform_params or {},
        chemistry=chemistry,
        chemistry_params=chemistry_params or {},
        jitter=jitter,
        jitter_model=jitter_model,
        failure_rate=failure_rate,
        imode=imode,
        imode_rel_error=imode_rel_error,
        imode_seed=imode_seed,
        description=description,
    )


def build_catalog() -> ScenarioRegistry:
    """Build a fresh instance of the default catalogue.

    >>> registry = build_catalog()
    >>> all(name in registry for name in CORE_SCENARIOS)
    True
    """
    registry = ScenarioRegistry()
    add = registry.register

    # ------------------------------------------------------------------
    # core: the legacy standard-suite workloads as specs
    # ------------------------------------------------------------------
    add(_spec("g2", "g2",
              description="paper Figure 5: robotic-arm controller (9 tasks, 4 DPs)"))
    add(_spec("g3", "g3",
              description="paper Table 1: fork-join example (15 tasks, 5 DPs)"))
    add(_spec("chain-10", "chain", seed=11,
              family_params={"num_tasks": 10},
              description="10-task pipeline"))
    add(_spec("fork-join-2x4", "fork-join", seed=21,
              family_params={"num_stages": 2, "branches_per_stage": 4},
              description="two fork-join stages with four branches"))
    add(_spec("layered-4x3", "layered", seed=31,
              family_params={"num_layers": 4, "layer_width": 3,
                             "edge_probability": 0.5},
              description="random layered DAG, 4 layers of 3 tasks"))
    add(_spec("tree-out-3x2", "tree", seed=41,
              family_params={"depth": 3, "branching": 2, "direction": "out"},
              description="binary out-tree of depth 3"))
    add(_spec("tree-in-3x2", "tree", seed=43,
              family_params={"depth": 3, "branching": 2, "direction": "in"},
              description="binary in-tree of depth 3"))
    add(_spec("diamond-3", "diamond", seed=51,
              family_params={"width": 3},
              description="3x3 wavefront grid"))

    # ------------------------------------------------------------------
    # scaled-paper: G2/G3 replicated in series
    # ------------------------------------------------------------------
    add(_spec("g3x2", "g3", family_params={"copies": 2},
              description="two G3 executions back to back (30 tasks)"))
    add(_spec("g3x3", "g3", family_params={"copies": 3},
              description="three G3 executions back to back (45 tasks)"))
    add(_spec("g2x3", "g2", family_params={"copies": 3},
              description="three G2 executions back to back (27 tasks)"))

    # ------------------------------------------------------------------
    # families: estee-style generators at larger sizes
    # ------------------------------------------------------------------
    add(_spec("chain-25", "chain", seed=12,
              family_params={"num_tasks": 25},
              description="25-task pipeline"))
    add(_spec("fork-join-3x5", "fork-join", seed=22,
              family_params={"num_stages": 3, "branches_per_stage": 5},
              description="three fork-join stages with five branches"))
    add(_spec("layered-6x4", "layered", seed=32,
              family_params={"num_layers": 6, "layer_width": 4,
                             "edge_probability": 0.4},
              description="random layered DAG, 6 layers of 4 tasks"))
    add(_spec("crossbar-4x3", "crossbar", seed=61,
              family_params={"num_layers": 4, "layer_width": 3},
              description="4 layers of 3 tasks, complete inter-layer wiring"))
    add(_spec("crossbar-3x5", "crossbar", seed=62,
              family_params={"num_layers": 3, "layer_width": 5},
              description="3 layers of 5 tasks, complete inter-layer wiring"))
    add(_spec("map-reduce-6x3", "map-reduce", seed=71,
              family_params={"num_maps": 6, "num_reduces": 3},
              description="6 maps, all-to-all shuffle into 3 reduces"))
    add(_spec("map-reduce-8x2", "map-reduce", seed=72,
              family_params={"num_maps": 8, "num_reduces": 2},
              description="8 maps, all-to-all shuffle into 2 reduces"))
    add(_spec("series-parallel-d3", "series-parallel", seed=81,
              family_params={"depth": 3},
              description="random series-parallel composition, depth 3"))
    add(_spec("series-parallel-d4", "series-parallel", seed=82,
              family_params={"depth": 4},
              description="random series-parallel composition, depth 4"))
    add(_spec("erdos-18", "erdos", seed=91,
              family_params={"num_tasks": 18, "edge_probability": 0.25},
              description="18-task random DAG, sparse"))
    add(_spec("erdos-24-dense", "erdos", seed=92,
              family_params={"num_tasks": 24, "edge_probability": 0.5},
              description="24-task random DAG, dense"))
    add(_spec("fft-8", "fft", seed=65,
              family_params={"num_points": 8},
              description="8-point FFT butterfly (32 tasks)"))
    add(_spec("gaussian-5", "gaussian-elimination", seed=66,
              family_params={"matrix_size": 5},
              description="Gaussian elimination on 5 columns (14 tasks)"))

    # ------------------------------------------------------------------
    # tightness: tight/loose deadline tiers of representative graphs
    # ------------------------------------------------------------------
    add(_spec("g3-tight", "g3", tightness=0.2,
              description="G3 with a tight deadline (tightness 0.2)"))
    add(_spec("g3-loose", "g3", tightness=0.8,
              description="G3 with a loose deadline (tightness 0.8)"))
    add(_spec("layered-4x3-tight", "layered", seed=31, tightness=0.2,
              family_params={"num_layers": 4, "layer_width": 3,
                             "edge_probability": 0.5},
              description="layered-4x3 with a tight deadline"))
    add(_spec("erdos-18-loose", "erdos", seed=91, tightness=0.8,
              family_params={"num_tasks": 18, "edge_probability": 0.25},
              description="erdos-18 with a loose deadline"))

    # ------------------------------------------------------------------
    # chemistry: the same graphs under other battery abstractions
    # ------------------------------------------------------------------
    add(_spec("g3-peukert", "g3", chemistry="peukert",
              chemistry_params={"exponent": 1.3},
              description="G3 costed by Peukert's law (k = 1.3)"))
    add(_spec("g3-kibam", "g3", chemistry="kibam",
              description="G3 costed by the kinetic battery model"))
    add(_spec("g3-ideal", "g3", chemistry="ideal",
              description="G3 costed by an ideal coulomb counter"))
    add(_spec("layered-4x3-kibam", "layered", seed=31, chemistry="kibam",
              family_params={"num_layers": 4, "layer_width": 3,
                             "edge_probability": 0.5},
              description="layered-4x3 costed by the kinetic battery model"))
    add(_spec("map-reduce-6x3-peukert", "map-reduce", seed=71,
              chemistry="peukert", chemistry_params={"exponent": 1.3},
              family_params={"num_maps": 6, "num_reduces": 3},
              description="map-reduce-6x3 costed by Peukert's law"))
    add(_spec("erdos-18-kibam", "erdos", seed=91, chemistry="kibam",
              family_params={"num_tasks": 18, "edge_probability": 0.25},
              description="erdos-18 costed by the kinetic battery model"))

    # ------------------------------------------------------------------
    # platform: DVS- and FPGA-derived design points
    # ------------------------------------------------------------------
    add(_spec("dvs-chain-12", "chain", seed=13, platform="dvs",
              family_params={"num_tasks": 12},
              description="12-task pipeline on a DVS processor (4 voltages)"))
    add(_spec("dvs-layered-5x3", "layered", seed=33, platform="dvs",
              family_params={"num_layers": 5, "layer_width": 3,
                             "edge_probability": 0.4},
              description="layered DAG on a DVS processor"))
    add(_spec("dvs-fork-join-2x4", "fork-join", seed=23, platform="dvs",
              family_params={"num_stages": 2, "branches_per_stage": 4},
              description="fork-join stages on a DVS processor"))
    add(_spec("fpga-layered-5x3", "layered", seed=34, platform="fpga",
              family_params={"num_layers": 5, "layer_width": 3,
                             "edge_probability": 0.4},
              description="layered DAG as FPGA bitstream alternatives"))
    add(_spec("fpga-map-reduce-4x2", "map-reduce", seed=73, platform="fpga",
              family_params={"num_maps": 4, "num_reduces": 2},
              description="map-reduce as FPGA bitstream alternatives"))
    add(_spec("fpga-series-parallel-d3", "series-parallel", seed=83,
              platform="fpga", family_params={"depth": 3},
              description="series-parallel composition on an FPGA fabric"))
    add(_spec("dvs-erdos-16-peukert", "erdos", seed=93, platform="dvs",
              chemistry="peukert", chemistry_params={"exponent": 1.2},
              family_params={"num_tasks": 16, "edge_probability": 0.3},
              description="random DAG on a DVS processor under Peukert's law"))

    # ------------------------------------------------------------------
    # stochastic: the perturbation tier (jitter level x failure rate)
    # ------------------------------------------------------------------
    add(_spec("g3-jitter10", "g3", jitter=0.10,
              description="G3 under 10% lognormal duration jitter"))
    add(_spec("g3-jitter25", "g3", jitter=0.25,
              description="G3 under 25% lognormal duration jitter"))
    add(_spec("g3-jitter10-fail5", "g3", jitter=0.10, failure_rate=0.05,
              description="G3 with 10% jitter and 5% per-attempt failures"))
    add(_spec("g2-jitter10-uniform", "g2", jitter=0.10, jitter_model="uniform",
              description="G2 under +/-10% uniform duration jitter"))
    add(_spec("g3-kibam-jitter10", "g3", chemistry="kibam", jitter=0.10,
              description="G3 on the kinetic battery model, 10% jitter"))
    add(_spec("g3-peukert-jitter10", "g3", chemistry="peukert",
              chemistry_params={"exponent": 1.3}, jitter=0.10,
              description="G3 under Peukert's law, 10% jitter"))
    add(_spec("layered-4x3-jitter15", "layered", seed=31, jitter=0.15,
              family_params={"num_layers": 4, "layer_width": 3,
                             "edge_probability": 0.5},
              description="layered-4x3 under 15% lognormal jitter"))
    add(_spec("crossbar-4x3-jitter20", "crossbar", seed=61, jitter=0.20,
              family_params={"num_layers": 4, "layer_width": 3},
              description="crossbar-4x3 under 20% lognormal jitter"))
    add(_spec("map-reduce-6x3-fail10", "map-reduce", seed=71,
              failure_rate=0.10,
              family_params={"num_maps": 6, "num_reduces": 3},
              description="map-reduce-6x3 with 10% per-attempt failures"))
    add(_spec("erdos-18-jitter25-fail5", "erdos", seed=91, jitter=0.25,
              failure_rate=0.05,
              family_params={"num_tasks": 18, "edge_probability": 0.25},
              description="erdos-18 with 25% jitter and 5% failures"))

    # ------------------------------------------------------------------
    # tournament: family x chemistry x jitter x information mode
    # ------------------------------------------------------------------
    tournament_bases = (
        ("g3", "g3", 0, None),
        ("layered-4x3", "layered", 31,
         {"num_layers": 4, "layer_width": 3, "edge_probability": 0.5}),
        ("erdos-18", "erdos", 91,
         {"num_tasks": 18, "edge_probability": 0.25}),
    )
    tournament_imodes = (
        ("exact", 0.0, 0),
        ("blind", 0.0, 0),
        ("mean", 0.0, 0),
        ("noisy", 0.3, 101),
    )
    for base, family, seed, family_params in tournament_bases:
        for chemistry in ("rakhmatov", "kibam"):
            for jitter in (0.10, 0.25):
                for imode, rel_error, belief_seed in tournament_imodes:
                    label = (
                        f"noisy({rel_error:g},{belief_seed}) beliefs"
                        if imode == "noisy" else f"{imode} beliefs"
                    )
                    add(_spec(
                        f"tour-{base}-{chemistry}-j{round(jitter * 100)}-{imode}",
                        family, seed=seed, family_params=family_params,
                        chemistry=chemistry, jitter=jitter,
                        imode=imode, imode_rel_error=rel_error,
                        imode_seed=belief_seed,
                        description=(f"tournament: {base} on {chemistry}, "
                                     f"{jitter:.0%} jitter, {label}"),
                    ))

    return registry
