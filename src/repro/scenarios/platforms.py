"""Platform synthesis adapters: where a scenario's design points come from.

The graph generators draw each task's design points from any object with a
``make_task(name, rng)`` interface.  This module provides the three
platform-backed implementations a :class:`~repro.scenarios.ScenarioSpec`
can name:

``"voltage-scaling"``
    The paper's own recipe (:class:`~repro.workloads.DesignPointSynthesis`):
    draw a base implementation and expand it through voltage-scaling
    factors — durations grow, currents shrink cubically.
``"dvs"``
    A physical :class:`~repro.platform.DvsProcessor`: each task is a seeded
    cycle count executed across a fixed supply-voltage ladder (alpha-power
    frequency law, cubic dynamic power, constant platform overhead).
``"fpga"``
    A physical :class:`~repro.platform.FpgaFabric`: each task is a seeded
    baseline runtime implemented at several parallelism widths
    (Amdahl-limited speedup versus active-area power).

All three produce power-monotone tasks with a uniform design-point count,
so any family crossed with any platform yields a problem every algorithm in
the library accepts.

>>> import random
>>> synthesis = make_platform("dvs", {"cycles_range": [40000.0, 50000.0]})
>>> task = synthesis.make_task("T1", random.Random(7))
>>> task.num_design_points
4
>>> task.is_power_monotone()
True
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from ..errors import ConfigurationError
from ..platform import DvsProcessor, FpgaFabric
from ..taskgraph import Task
from ..workloads.synthesis import DesignPointSynthesis, default_synthesis

__all__ = [
    "DvsSynthesis",
    "FpgaSynthesis",
    "PLATFORMS",
    "platform_names",
    "make_platform",
]

#: Default supply-voltage ladder of the DVS platform (volts, fastest first).
DEFAULT_VOLTAGES: Tuple[float, ...] = (1.8, 1.4, 1.1, 0.9)

#: Default parallelism widths of the FPGA platform (fastest first).
DEFAULT_PARALLELISM: Tuple[float, ...] = (8.0, 4.0, 2.0, 1.0)


@dataclass(frozen=True)
class DvsSynthesis:
    """Seeded task synthesis on a DVS processor.

    Each task is a cycle requirement drawn uniformly from ``cycles_range``
    (mega-cycles) and executed across the ``voltages`` ladder of the
    ``processor``; the resulting design points carry real operating
    voltages and platform currents.
    """

    processor: DvsProcessor = DvsProcessor()
    voltages: Tuple[float, ...] = DEFAULT_VOLTAGES
    cycles_range: Tuple[float, float] = (30_000.0, 150_000.0)

    def __post_init__(self) -> None:
        if not self.voltages:
            raise ConfigurationError("at least one supply voltage is required")
        lo, hi = self.cycles_range
        if lo <= 0 or hi < lo:
            raise ConfigurationError(f"invalid cycles_range {self.cycles_range!r}")

    @property
    def num_design_points(self) -> int:
        return len(self.voltages)

    def make_task(self, name: str, rng: random.Random) -> Task:
        cycles = rng.uniform(*self.cycles_range)
        return self.processor.make_task(name, cycles, self.voltages)


@dataclass(frozen=True)
class FpgaSynthesis:
    """Seeded task synthesis on an FPGA fabric.

    Each task is a ``parallelism = 1`` baseline runtime drawn uniformly
    from ``base_time_range`` and implemented at every width in
    ``parallelism_options`` (bitstream alternatives).
    """

    fabric: FpgaFabric = FpgaFabric()
    parallelism_options: Tuple[float, ...] = DEFAULT_PARALLELISM
    base_time_range: Tuple[float, float] = (4.0, 20.0)

    def __post_init__(self) -> None:
        if not self.parallelism_options:
            raise ConfigurationError("at least one parallelism option is required")
        lo, hi = self.base_time_range
        if lo <= 0 or hi < lo:
            raise ConfigurationError(f"invalid base_time_range {self.base_time_range!r}")

    @property
    def num_design_points(self) -> int:
        return len(self.parallelism_options)

    def make_task(self, name: str, rng: random.Random) -> Task:
        base_time = rng.uniform(*self.base_time_range)
        return self.fabric.make_task(name, base_time, self.parallelism_options)


# ----------------------------------------------------------------------
# the platform registry
# ----------------------------------------------------------------------
def _require_known(params: Dict[str, Any], allowed: set, platform: str) -> None:
    """Reject unknown parameter keys — a typo'd key must not silently build
    the default platform (the spec would describe a different experiment
    than the one that runs)."""
    unknown = set(params) - allowed
    if unknown:
        raise ConfigurationError(
            f"unknown {platform!r} platform parameter(s): {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )


def _build_voltage_scaling(params: Dict[str, Any]) -> DesignPointSynthesis:
    _require_known(
        params,
        {"factors", "num_design_points", "duration_range", "current_range",
         "duration_rule"},
        "voltage-scaling",
    )
    if "factors" in params and "num_design_points" in params:
        raise ConfigurationError(
            "give either 'factors' or 'num_design_points', not both"
        )
    if "factors" in params:
        factors = tuple(float(f) for f in params["factors"])
    else:
        factors = default_synthesis(int(params.get("num_design_points", 5))).factors
    return DesignPointSynthesis(
        factors=factors,
        duration_range=tuple(params.get("duration_range", (2.0, 12.0))),
        current_range=tuple(params.get("current_range", (300.0, 1000.0))),
        duration_rule=str(params.get("duration_rule", "inverse")),
    )


def _build_dvs(params: Dict[str, Any]) -> DvsSynthesis:
    _require_known(params, {"processor", "voltages", "cycles_range"}, "dvs")
    processor_params = dict(params.get("processor", {}))
    return DvsSynthesis(
        processor=DvsProcessor(**processor_params),
        voltages=tuple(float(v) for v in params.get("voltages", DEFAULT_VOLTAGES)),
        cycles_range=tuple(params.get("cycles_range", (30_000.0, 150_000.0))),
    )


def _build_fpga(params: Dict[str, Any]) -> FpgaSynthesis:
    _require_known(
        params, {"fabric", "parallelism_options", "base_time_range"}, "fpga"
    )
    fabric_params = dict(params.get("fabric", {}))
    return FpgaSynthesis(
        fabric=FpgaFabric(**fabric_params),
        parallelism_options=tuple(
            float(p) for p in params.get("parallelism_options", DEFAULT_PARALLELISM)
        ),
        base_time_range=tuple(params.get("base_time_range", (4.0, 20.0))),
    )


#: Platform model factories a scenario can name: ``factory(params) -> synthesis``.
PLATFORMS: Dict[str, Any] = {
    "voltage-scaling": _build_voltage_scaling,
    "dvs": _build_dvs,
    "fpga": _build_fpga,
}


def platform_names() -> Tuple[str, ...]:
    """All platform model keys, sorted."""
    return tuple(sorted(PLATFORMS))


def make_platform(platform: str, params: Mapping[str, Any]):
    """Instantiate the named platform synthesis from its parameter mapping."""
    try:
        factory = PLATFORMS[platform]
    except KeyError:
        raise ConfigurationError(
            f"unknown platform model {platform!r}; choose from {list(platform_names())}"
        ) from None
    return factory(dict(params))
