"""DAG family registry: named, parameterized task-graph generators.

A *family* is a named recipe for growing a task graph from a seed and a
parameter mapping — the estee benchmark-suite idea applied to this
library's generators.  Scenario specs
(:class:`~repro.scenarios.ScenarioSpec`) name a family plus its parameters
instead of carrying graph-building code, which keeps them pure data:
hashable, serialisable, and buildable in any process.

Every builder has the same shape::

    builder(synthesis, seed, name, **family_params) -> TaskGraph

where ``synthesis`` is any object with the ``make_task(name, rng)``
interface (a :class:`~repro.workloads.DesignPointSynthesis` or one of the
platform syntheses in :mod:`repro.scenarios.platforms`).  The paper-graph
families (``g2``/``g3``) carry their own published design points and ignore
``synthesis`` and ``seed``; their ``copies`` parameter chains replicas in
series for scaled variants.

>>> from repro.scenarios.families import build_family, family_names
>>> "fork-join" in family_names()
True
>>> graph = build_family("fork-join", None, seed=3, name="fj",
...                      num_stages=2, branches_per_stage=3)
>>> graph.num_tasks
9
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..taskgraph import TaskGraph, build_g2, build_g3
from ..workloads.generators import (
    chain_graph,
    crossbar_graph,
    diamond_graph,
    erdos_graph,
    fft_graph,
    fork_join_graph,
    gaussian_elimination_graph,
    layered_graph,
    map_reduce_graph,
    replicated_graph,
    series_parallel_graph,
    tree_graph,
)

__all__ = ["FamilyInfo", "FAMILIES", "register_family", "family_names", "build_family"]

#: A family builder: ``(synthesis, seed, name, **params) -> TaskGraph``.
FamilyBuilder = Callable[..., TaskGraph]


@dataclass(frozen=True)
class FamilyInfo:
    """One registered DAG family.

    ``uses_synthesis`` marks families whose tasks are drawn through the
    platform synthesis and seed; the paper-graph families (``g2``/``g3``)
    carry published design points instead, and scenario specs naming them
    must not pretend a platform or seed applies (see
    :class:`~repro.scenarios.ScenarioSpec` validation).
    """

    key: str
    builder: FamilyBuilder
    description: str
    uses_synthesis: bool = True


FAMILIES: Dict[str, FamilyInfo] = {}


def register_family(
    key: str,
    builder: FamilyBuilder,
    description: str,
    uses_synthesis: bool = True,
) -> None:
    """Add a family under ``key`` (later registrations replace earlier ones)."""
    FAMILIES[key] = FamilyInfo(
        key=key,
        builder=builder,
        description=description,
        uses_synthesis=uses_synthesis,
    )


def family_names() -> Tuple[str, ...]:
    """All registered family keys, sorted."""
    return tuple(sorted(FAMILIES))


def build_family(
    family: str,
    synthesis: Optional[Any],
    seed: int,
    name: str,
    **params: Any,
) -> TaskGraph:
    """Build one graph of the named family.

    Raises :class:`~repro.errors.ConfigurationError` for an unknown family;
    unknown ``params`` surface as ``TypeError`` from the builder, naming the
    offending keyword.
    """
    try:
        info = FAMILIES[family]
    except KeyError:
        raise ConfigurationError(
            f"unknown DAG family {family!r}; choose from {list(family_names())}"
        ) from None
    return info.builder(synthesis, seed, name, **params)


# ----------------------------------------------------------------------
# builders: synthetic families (seeded, synthesis-driven)
# ----------------------------------------------------------------------
def _chain(synthesis, seed, name, num_tasks=10):
    return chain_graph(num_tasks, synthesis=synthesis, seed=seed, name=name)


def _fork_join(synthesis, seed, name, num_stages=2, branches_per_stage=4):
    return fork_join_graph(
        num_stages, branches_per_stage, synthesis=synthesis, seed=seed, name=name
    )


def _layered(synthesis, seed, name, num_layers=4, layer_width=3, edge_probability=0.5):
    return layered_graph(
        num_layers,
        layer_width,
        edge_probability,
        synthesis=synthesis,
        seed=seed,
        name=name,
    )


def _crossbar(synthesis, seed, name, num_layers=4, layer_width=3):
    return crossbar_graph(
        num_layers, layer_width, synthesis=synthesis, seed=seed, name=name
    )


def _map_reduce(synthesis, seed, name, num_maps=4, num_reduces=2):
    return map_reduce_graph(
        num_maps, num_reduces, synthesis=synthesis, seed=seed, name=name
    )


def _series_parallel(synthesis, seed, name, depth=3, max_branches=3):
    return series_parallel_graph(
        depth, max_branches, synthesis=synthesis, seed=seed, name=name
    )


def _erdos(synthesis, seed, name, num_tasks=12, edge_probability=0.3):
    return erdos_graph(
        num_tasks, edge_probability, synthesis=synthesis, seed=seed, name=name
    )


def _tree(synthesis, seed, name, depth=3, branching=2, direction="out"):
    return tree_graph(
        depth, branching, direction, synthesis=synthesis, seed=seed, name=name
    )


def _diamond(synthesis, seed, name, width=3):
    return diamond_graph(width, synthesis=synthesis, seed=seed, name=name)


def _fft(synthesis, seed, name, num_points=4):
    return fft_graph(num_points, synthesis=synthesis, seed=seed, name=name)


def _gaussian(synthesis, seed, name, matrix_size=4):
    return gaussian_elimination_graph(
        matrix_size, synthesis=synthesis, seed=seed, name=name
    )


# ----------------------------------------------------------------------
# builders: the paper's graphs (fixed design points, scalable by replication)
# ----------------------------------------------------------------------
def _g2(synthesis, seed, name, copies=1):
    # A single copy keeps the verbatim paper graph (name included), so the
    # suite view stays byte-identical to the legacy hand-rolled suite.
    return replicated_graph(build_g2, copies, name=name if copies > 1 else "")


def _g3(synthesis, seed, name, copies=1):
    return replicated_graph(build_g3, copies, name=name if copies > 1 else "")


register_family("chain", _chain, "linear pipeline T1 -> ... -> Tn")
register_family(
    "fork-join", _fork_join, "repeated fork / parallel branches / join stages"
)
register_family(
    "layered", _layered, "random layered DAG with seeded inter-layer density"
)
register_family(
    "crossbar", _crossbar, "layered DAG with complete inter-layer wiring"
)
register_family(
    "map-reduce", _map_reduce, "scatter / map / all-to-all reduce / gather"
)
register_family(
    "series-parallel", _series_parallel, "random series-parallel composition"
)
register_family(
    "erdos", _erdos, "Erdős–Rényi random DAG over a fixed topological order"
)
register_family("tree", _tree, "complete out-tree (divide) or in-tree (reduce)")
register_family("diamond", _diamond, "wavefront grid of diamond dependencies")
register_family("fft", _fft, "butterfly dependence pattern of an in-place FFT")
register_family(
    "gaussian-elimination", _gaussian, "column-oriented Gaussian elimination"
)
register_family(
    "g2",
    _g2,
    "the paper's Figure 5 robotic-arm graph (replicable in series)",
    uses_synthesis=False,
)
register_family(
    "g3",
    _g3,
    "the paper's Table 1 fork-join graph (replicable in series)",
    uses_synthesis=False,
)
