"""The scenario registry: an ordered, named catalogue of specs.

A :class:`ScenarioRegistry` maps unique names to
:class:`~repro.scenarios.ScenarioSpec` entries, preserves registration
order (catalogue order is presentation order), and round-trips through
``to_dict``/``from_dict`` so a catalogue can be committed, diffed and
rebuilt.  The library's default catalogue lives in
:mod:`repro.scenarios.catalog` and is reachable through
:func:`default_registry`.

>>> from repro.scenarios import ScenarioSpec, ScenarioRegistry
>>> registry = ScenarioRegistry([
...     ScenarioSpec(name="a", family="chain", family_params={"num_tasks": 3}),
... ])
>>> registry.names()
('a',)
>>> ScenarioRegistry.from_dict(registry.to_dict()).get("a") == registry.get("a")
True
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from ..scheduling import SchedulingProblem
from .spec import ScenarioSpec

__all__ = ["ScenarioRegistry", "default_registry"]


class ScenarioRegistry:
    """An ordered collection of uniquely named scenario specs."""

    def __init__(self, specs: Iterable[ScenarioSpec] = ()) -> None:
        self._specs: "OrderedDict[str, ScenarioSpec]" = OrderedDict()
        for spec in specs:
            self.register(spec)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
        """Add a spec under its name; duplicates require ``replace=True``."""
        if not replace and spec.name in self._specs:
            raise ConfigurationError(
                f"scenario {spec.name!r} is already registered "
                "(pass replace=True to overwrite)"
            )
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ScenarioSpec:
        """The spec registered under ``name``."""
        try:
            return self._specs[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown scenario {name!r}; choose from {list(self.names())}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        """All scenario names, in registration order."""
        return tuple(self._specs)

    def specs(self) -> Tuple[ScenarioSpec, ...]:
        """All specs, in registration order."""
        return tuple(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self._specs.values())

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    # ------------------------------------------------------------------
    # selection and building
    # ------------------------------------------------------------------
    def select(
        self,
        names: Optional[Iterable[str]] = None,
        family: Optional[str] = None,
        chemistry: Optional[str] = None,
        platform: Optional[str] = None,
        stochastic: Optional[bool] = None,
        imode: Optional[object] = None,
    ) -> Tuple[ScenarioSpec, ...]:
        """Specs filtered by name list and/or attribute values.

        ``names`` preserves the registry's order (not the order given) and
        rejects unknown names; the attribute filters compose with it.
        ``stochastic`` filters on whether the spec carries a perturbation
        tier (``True``: only stochastic, ``False``: only deterministic).
        ``imode`` filters the information tier: ``True`` keeps only
        non-exact modes, ``False`` only exact ones, and a mode-kind string
        (e.g. ``"blind"``) keeps exactly that kind.
        """
        if names is not None:
            wanted = set(names)
            unknown = wanted - set(self._specs)
            if unknown:
                raise ConfigurationError(
                    f"unknown scenarios: {sorted(unknown)}; "
                    f"choose from {list(self.names())}"
                )
        else:
            wanted = None
        selected = []
        for spec in self._specs.values():
            if wanted is not None and spec.name not in wanted:
                continue
            if family is not None and spec.family != family:
                continue
            if chemistry is not None and spec.chemistry != chemistry:
                continue
            if platform is not None and spec.platform != platform:
                continue
            if stochastic is not None and spec.has_perturbation != stochastic:
                continue
            if imode is not None:
                if isinstance(imode, bool):
                    if spec.has_information_mode != imode:
                        continue
                elif spec.imode != imode:
                    continue
            selected.append(spec)
        return tuple(selected)

    def build_problems(
        self, names: Optional[Iterable[str]] = None
    ) -> List[SchedulingProblem]:
        """Build the problem instances of the selected (default: all) scenarios."""
        return [spec.build_problem() for spec in self.select(names=names)]

    def optimized(
        self, passes: str, names: Optional[Iterable[str]] = None
    ) -> "ScenarioRegistry":
        """A registry view with an optimize-pass list applied to every spec.

        Each selected spec is copied with its ``optimize`` field set to
        ``passes`` (e.g. ``"fuse"`` or ``"cull+fuse"`` — validated by the
        spec constructor), so the view's problems are built on rewritten
        graphs while the original registry stays untouched.  Scenario
        names are unchanged; content hashes grow the pass list.
        """
        return ScenarioRegistry(
            replace(spec, optimize=passes) for spec in self.select(names=names)
        )

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    def families(self) -> Tuple[str, ...]:
        """Distinct DAG families present, sorted."""
        return tuple(sorted({spec.family for spec in self}))

    def chemistries(self) -> Tuple[str, ...]:
        """Distinct battery chemistries present, sorted."""
        return tuple(sorted({spec.chemistry for spec in self}))

    def platforms(self) -> Tuple[str, ...]:
        """Distinct platform models present, sorted."""
        return tuple(sorted({spec.platform for spec in self}))

    def information_modes(self) -> Tuple[str, ...]:
        """Distinct information-mode kinds present, sorted."""
        return tuple(sorted({spec.imode for spec in self}))

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (inverse of :meth:`from_dict`)."""
        return {"scenarios": [spec.to_dict() for spec in self]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioRegistry":
        """Rebuild a registry from its :meth:`to_dict` form."""
        return cls(ScenarioSpec.from_dict(entry) for entry in data.get("scenarios", ()))

    def __repr__(self) -> str:
        return (
            f"ScenarioRegistry({len(self)} scenarios, "
            f"{len(self.families())} families, "
            f"{len(self.chemistries())} chemistries, "
            f"{len(self.platforms())} platforms)"
        )


_DEFAULT: Optional[ScenarioRegistry] = None


def default_registry() -> ScenarioRegistry:
    """The library's standard scenario catalogue (built once, cached).

    >>> registry = default_registry()
    >>> len(registry) >= 25
    True
    """
    global _DEFAULT
    if _DEFAULT is None:
        from .catalog import build_catalog

        _DEFAULT = build_catalog()
    return _DEFAULT
