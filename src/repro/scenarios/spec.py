"""The scenario specification: one named benchmark instance as pure data.

A :class:`ScenarioSpec` fully determines one
:class:`~repro.scheduling.SchedulingProblem` — DAG family and parameters,
seed, platform model (where design points come from), battery chemistry
(what sigma means), and deadline tightness — without holding any built
object.  Specs are frozen, hashable, JSON-round-trippable and
content-hashable, so a catalogue of them can be diffed, stored, shipped to
worker processes, and rebuilt bit-identically anywhere.

>>> spec = ScenarioSpec(name="demo", family="chain", seed=3,
...                     family_params={"num_tasks": 4}, tightness=0.5)
>>> problem = spec.build_problem()
>>> problem.graph.num_tasks
4
>>> ScenarioSpec.from_dict(spec.to_dict()) == spec
True
>>> len(spec.content_hash()) == 16
True
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Tuple

from ..battery import CHEMISTRIES, PAPER_BETA, BatterySpec
from ..battery.parameters import freeze_params as _freeze_params
from ..errors import ConfigurationError
from ..scheduling import SchedulingProblem
from ..taskgraph import TaskGraph
from .families import FAMILIES, build_family, family_names
from .platforms import PLATFORMS, make_platform, platform_names

__all__ = ["ScenarioSpec", "canonical_json", "problem_fingerprint"]

#: Frozen parameter mappings: sorted tuples of (key, value) pairs.
FrozenParams = Tuple[Tuple[str, Any], ...]

#: Human-readable deadline-tightness tiers (fractions of the
#: all-fastest..all-slowest makespan span).
TIGHTNESS_TIERS: Dict[str, float] = {"tight": 0.2, "mid": 0.5, "loose": 0.8}


def _thaw_value(value: Any) -> Any:
    """Inverse of :func:`_freeze_value` for JSON emission."""
    if isinstance(value, tuple):
        if value and all(
            isinstance(item, tuple) and len(item) == 2 and isinstance(item[0], str)
            for item in value
        ):
            return {key: _thaw_value(val) for key, val in value}
        return [_thaw_value(item) for item in value]
    return value


def _thaw_params(params: FrozenParams) -> Dict[str, Any]:
    """Frozen parameter pairs back to a plain dict."""
    return {key: _thaw_value(value) for key, value in params}


def _jsonable(value: Any) -> Any:
    """Make a value JSON-serialisable (inf/-inf become tagged strings)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def canonical_json(data: Any) -> str:
    """Deterministic JSON used for content hashing (sorted keys, no spaces)."""
    return json.dumps(_jsonable(data), sort_keys=True, separators=(",", ":"))


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def problem_fingerprint(problem: SchedulingProblem) -> str:
    """Content hash of a built problem instance.

    Covers everything that influences algorithm results — the full graph
    serialisation (tasks, design points, edges), the deadline and the
    battery description — and nothing presentational.  Two processes that
    build the same :class:`ScenarioSpec` must produce the same fingerprint;
    the scenario determinism tests assert exactly that.
    """
    battery = problem.battery
    graph = problem.graph.to_dict()
    graph["name"] = ""  # display label only — two same-content specs that
    # differ in name must fingerprint identically, like content_hash()
    payload = {
        "graph": graph,
        "deadline": problem.deadline,
        "battery": {
            "beta": battery.beta,
            "capacity": battery.capacity,
            "series_terms": battery.series_terms,
            "chemistry": battery.chemistry,
            "chemistry_params": dict(battery.chemistry_params),
        },
    }
    return _digest(canonical_json(payload))


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, seeded, parameterized benchmark scenario.

    Attributes
    ----------
    name:
        Unique catalogue name (e.g. ``"layered-6x4-kibam"``).
    family:
        DAG family key from :mod:`repro.scenarios.families`.
    family_params:
        Family builder parameters (e.g. ``{"num_layers": 6}``); accepted as
        a mapping, stored as a sorted tuple of pairs.
    seed:
        Seed for graph structure and design-point synthesis.
    tightness:
        Deadline position in ``[0, 1]`` between the all-fastest (0) and
        all-slowest (1) makespans.
    platform:
        Platform model key from :mod:`repro.scenarios.platforms` — where
        design points come from.
    platform_params:
        Platform synthesis parameters (e.g. a voltage ladder).
    chemistry:
        Battery chemistry key from :data:`repro.battery.CHEMISTRIES` — the
        abstraction under which sigma is computed.
    chemistry_params:
        Chemistry parameters (e.g. the Peukert exponent).
    beta:
        Rakhmatov–Vrudhula diffusion parameter carried by the battery spec
        (used by the default chemistry).
    jitter, jitter_model, failure_rate:
        The optional **stochastic tier**: multiplicative duration jitter
        (spread and distribution — ``"lognormal"`` or ``"uniform"``) and a
        per-attempt failure probability, consumed by the runtime simulator
        (:mod:`repro.sim`).  All-default values mean a deterministic
        scenario; the offline problem built by :meth:`build_problem` is
        unaffected either way.
    imode, imode_rel_error, imode_seed:
        The optional **information mode** of the stochastic tier: what the
        online policies *believe* about task durations (``"exact"``,
        ``"blind"``, ``"mean"`` or ``"noisy"`` — see
        :mod:`repro.sim.imode`).  ``imode_rel_error``/``imode_seed``
        parameterise the ``noisy`` mode's seeded belief factors and must
        stay at their defaults otherwise.  The default ``"exact"`` mode is
        today's behaviour and stays out of :meth:`content_hash`, so all
        pre-imode hashes, stores and job keys are untouched.
    optimize:
        Optional **optimize-pass list** (e.g. ``"fuse"`` or ``"cull+fuse"``
        — see :mod:`repro.taskgraph.optimize`) applied to the built graph
        by :meth:`build_problem`.  Only the sigma-preserving passes are
        accepted.  The default empty string means no rewriting — today's
        behaviour — and stays out of :meth:`content_hash`, mirroring the
        imode pattern so pre-existing hashes, stores and job keys never
        move.
    description:
        One-line human description for the catalogue (presentational; not
        part of the content hash).
    """

    name: str
    family: str
    family_params: FrozenParams = ()
    seed: int = 0
    tightness: float = 0.5
    platform: str = "voltage-scaling"
    platform_params: FrozenParams = ()
    chemistry: str = "rakhmatov"
    chemistry_params: FrozenParams = ()
    beta: float = PAPER_BETA
    jitter: float = 0.0
    jitter_model: str = "lognormal"
    failure_rate: float = 0.0
    imode: str = "exact"
    imode_rel_error: float = 0.0
    imode_seed: int = 0
    optimize: str = ""
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be a non-empty string")
        if self.family not in FAMILIES:
            raise ConfigurationError(
                f"unknown DAG family {self.family!r}; choose from {list(family_names())}"
            )
        if self.platform not in PLATFORMS:
            raise ConfigurationError(
                f"unknown platform model {self.platform!r}; "
                f"choose from {list(platform_names())}"
            )
        if self.chemistry not in CHEMISTRIES:
            raise ConfigurationError(
                f"unknown battery chemistry {self.chemistry!r}; "
                f"choose from {sorted(CHEMISTRIES)}"
            )
        if not (0.0 <= self.tightness <= 1.0):
            raise ConfigurationError(
                f"tightness must be within [0, 1], got {self.tightness!r}"
            )
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter!r}")
        if self.jitter_model not in ("lognormal", "uniform"):
            # Kept in sync with repro.sim.perturbation.JITTER_MODELS (not
            # imported here: scenarios sit below the sim layer).
            raise ConfigurationError(
                f"unknown jitter model {self.jitter_model!r}; "
                "choose from ('lognormal', 'uniform')"
            )
        if self.jitter_model == "uniform" and self.jitter >= 1.0:
            raise ConfigurationError(
                "uniform jitter must be < 1 (duration factors stay positive), "
                f"got {self.jitter!r}"
            )
        if not (0.0 <= self.failure_rate < 1.0):
            raise ConfigurationError(
                f"failure_rate must be within [0, 1), got {self.failure_rate!r}"
            )
        if self.imode not in ("exact", "blind", "mean", "noisy"):
            # Kept in sync with repro.sim.imode.INFORMATION_MODES (not
            # imported here: scenarios sit below the sim layer).
            raise ConfigurationError(
                f"unknown information mode {self.imode!r}; "
                "choose from ('exact', 'blind', 'mean', 'noisy')"
            )
        if self.imode == "noisy":
            if not self.imode_rel_error > 0:
                raise ConfigurationError(
                    "a noisy information mode needs imode_rel_error > 0, "
                    f"got {self.imode_rel_error!r}"
                )
        else:
            if self.imode_rel_error != 0.0:
                raise ConfigurationError(
                    "imode_rel_error only applies to the noisy information "
                    f"mode, not {self.imode!r}"
                )
            if self.imode_seed != 0:
                raise ConfigurationError(
                    "imode_seed only applies to the noisy information "
                    f"mode, not {self.imode!r}"
                )
        if self.optimize:
            from ..taskgraph.optimize import parse_passes

            parse_passes(self.optimize)  # raises ConfigurationError on junk
        if not FAMILIES[self.family].uses_synthesis:
            # Paper-graph families carry published design points; a platform
            # or seed on such a spec would describe an experiment different
            # from the one that actually runs.
            if self.platform != "voltage-scaling" or self.platform_params:
                raise ConfigurationError(
                    f"family {self.family!r} carries the paper's published "
                    "design points; a platform model has no effect on it — "
                    "remove platform/platform_params from the spec"
                )
            if self.seed != 0:
                raise ConfigurationError(
                    f"family {self.family!r} is fully determined by its "
                    "published data; a seed has no effect on it — remove it"
                )
        object.__setattr__(self, "family_params", _freeze_params(self.family_params))
        object.__setattr__(self, "platform_params", _freeze_params(self.platform_params))
        object.__setattr__(
            self, "chemistry_params", _freeze_params(self.chemistry_params)
        )

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def build_graph(self) -> TaskGraph:
        """Build this scenario's task graph (deterministic for the spec).

        >>> ScenarioSpec(name="c", family="chain", seed=1,
        ...              family_params={"num_tasks": 3}).build_graph().num_tasks
        3
        """
        synthesis = make_platform(self.platform, dict(self.platform_params))
        return build_family(
            self.family,
            synthesis,
            self.seed,
            self.name,
            **_thaw_params(self.family_params),
        )

    def battery_spec(self) -> BatterySpec:
        """The battery description this scenario's problems carry."""
        return BatterySpec(
            beta=self.beta,
            chemistry=self.chemistry,
            chemistry_params=self.chemistry_params,
        )

    def build_problem(self) -> SchedulingProblem:
        """Build the complete scheduling problem instance.

        The deadline sits at ``tightness`` between the graph's all-fastest
        and all-slowest makespans (see
        :func:`repro.workloads.problem_with_tightness`), so every scenario
        is feasible by construction.
        """
        from ..workloads.suite import problem_with_tightness

        graph = self.build_graph()
        if self.has_optimize:
            graph = self.optimization().graph
        return problem_with_tightness(
            graph,
            self.tightness,
            battery=self.battery_spec(),
            name=self.name,
        )

    @property
    def has_perturbation(self) -> bool:
        """True when the spec carries a non-trivial stochastic tier."""
        return self.jitter != 0.0 or self.failure_rate != 0.0

    @property
    def has_information_mode(self) -> bool:
        """True when policies see anything other than the exact durations."""
        return self.imode != "exact"

    @property
    def has_optimize(self) -> bool:
        """True when the spec carries a non-empty optimize-pass list."""
        return bool(self.optimize)

    def optimization(self):
        """The optimize-pass result for this spec's graph.

        Returns the :class:`~repro.taskgraph.OptimizedGraph` whose
        ``graph`` is what :meth:`build_problem` schedules and whose
        ``expand`` methods translate the final schedule back onto the
        unoptimized graph; ``None`` when no passes are set.
        """
        if not self.has_optimize:
            return None
        from ..taskgraph.optimize import optimize_graph, parse_passes

        return optimize_graph(self.build_graph(), parse_passes(self.optimize))

    def perturbation(self):
        """The stochastic tier as a :class:`repro.sim.PerturbationModel`.

        Always returns a model — a null one for deterministic scenarios —
        so simulation call sites need no branching.  (Imported lazily:
        the scenario layer sits below the sim layer.)
        """
        from ..sim.perturbation import PerturbationModel

        return PerturbationModel(
            jitter=self.jitter,
            jitter_model=self.jitter_model,
            failure_rate=self.failure_rate,
        )

    def information_mode(self):
        """The information tier as a :class:`repro.sim.InformationMode`.

        Like :meth:`perturbation`, always returns a mode — the exact one
        for full-information scenarios — so simulation call sites need no
        branching.  (The simulator treats an exact mode and no mode
        identically, bitwise.)
        """
        from ..sim.imode import InformationMode

        if self.imode == "noisy":
            return InformationMode.noisy(self.imode_rel_error, seed=self.imode_seed)
        return InformationMode(kind=self.imode)

    # ------------------------------------------------------------------
    # identity and serialisation
    # ------------------------------------------------------------------
    def content_hash(self) -> str:
        """Stable hash of everything that determines the built problem —
        plus, for stochastic scenarios, the perturbation tier (which
        determines the simulation workloads keyed on the spec).

        Excludes the presentational ``name``/``description`` fields: two
        differently named specs with equal content hash produce identical
        problems (up to the problem's display name).  The perturbation
        and information-mode fields enter the payload only when
        non-default, so the hashes of all deterministic / exact-mode
        scenarios are unchanged from before those tiers existed.
        """
        payload = {
            "family": self.family,
            "family_params": _thaw_params(self.family_params),
            "seed": self.seed,
            "tightness": self.tightness,
            "platform": self.platform,
            "platform_params": _thaw_params(self.platform_params),
            "chemistry": self.chemistry,
            "chemistry_params": _thaw_params(self.chemistry_params),
            "beta": self.beta,
        }
        if self.has_perturbation:
            payload["perturbation"] = {
                "jitter": self.jitter,
                "jitter_model": self.jitter_model,
                "failure_rate": self.failure_rate,
            }
        if self.has_information_mode:
            payload["imode"] = {
                "kind": self.imode,
                "rel_error": self.imode_rel_error,
                "seed": self.imode_seed,
            }
        if self.has_optimize:
            payload["optimize"] = self.optimize
        return _digest(canonical_json(payload))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (inverse of :meth:`from_dict`).

        The information-mode keys are emitted only when set — exact-mode
        dicts are byte-identical to pre-imode ones, which keeps every
        stored engine job key (hashed from this dict) stable.
        """
        data = {
            "name": self.name,
            "family": self.family,
            "family_params": _jsonable(_thaw_params(self.family_params)),
            "seed": self.seed,
            "tightness": self.tightness,
            "platform": self.platform,
            "platform_params": _jsonable(_thaw_params(self.platform_params)),
            "chemistry": self.chemistry,
            "chemistry_params": _jsonable(_thaw_params(self.chemistry_params)),
            "beta": self.beta,
            "jitter": self.jitter,
            "jitter_model": self.jitter_model,
            "failure_rate": self.failure_rate,
            "description": self.description,
        }
        if self.has_information_mode:
            data["imode"] = self.imode
            data["imode_rel_error"] = self.imode_rel_error
            data["imode_seed"] = self.imode_seed
        if self.has_optimize:
            data["optimize"] = self.optimize
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from its :meth:`to_dict` form."""
        return cls(
            name=str(data["name"]),
            family=str(data["family"]),
            family_params=dict(data.get("family_params", {})),
            seed=int(data.get("seed", 0)),
            tightness=float(data.get("tightness", 0.5)),
            platform=str(data.get("platform", "voltage-scaling")),
            platform_params=dict(data.get("platform_params", {})),
            chemistry=str(data.get("chemistry", "rakhmatov")),
            chemistry_params=dict(data.get("chemistry_params", {})),
            beta=float(data.get("beta", PAPER_BETA)),
            jitter=float(data.get("jitter", 0.0)),
            jitter_model=str(data.get("jitter_model", "lognormal")),
            failure_rate=float(data.get("failure_rate", 0.0)),
            imode=str(data.get("imode", "exact")),
            imode_rel_error=float(data.get("imode_rel_error", 0.0)),
            imode_seed=int(data.get("imode_seed", 0)),
            optimize=str(data.get("optimize", "")),
            description=str(data.get("description", "")),
        )

    def with_tightness(self, tightness: float, name: str = "") -> "ScenarioSpec":
        """A copy at a different deadline tightness (optionally renamed)."""
        return replace(
            self, tightness=tightness, name=name or f"{self.name}@{tightness:.2f}"
        )

    def summary(self) -> str:
        """One-line catalogue description."""
        line = (
            f"{self.name}: {self.family} family, {self.platform} platform, "
            f"{self.chemistry} chemistry, tightness {self.tightness:.2f}"
        )
        if self.has_perturbation or self.has_information_mode or self.has_optimize:
            parts = []
            if self.jitter:
                parts.append(f"{self.jitter_model} jitter {self.jitter:g}")
            if self.failure_rate:
                parts.append(f"failure rate {self.failure_rate:g}")
            if self.has_information_mode:
                if self.imode == "noisy":
                    parts.append(
                        f"imode noisy({self.imode_rel_error:g},{self.imode_seed})"
                    )
                else:
                    parts.append(f"imode {self.imode}")
            if self.has_optimize:
                parts.append(f"optimize {self.optimize}")
            line += f" ({', '.join(parts)})"
        return line
