"""Exhaustive search over sequences and assignments (small instances only).

Enumerates every topological order of the task graph and every design-point
combination, evaluating the battery cost of each feasible pair.  The state
space is ``(#topological orders) * m^n``, so a guard refuses instances whose
enumeration would exceed a configurable budget; within that budget the
result is the true optimum, which the test-suite uses to check that the
iterative heuristic and the annealer land close to (and never below) it.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, List, Optional, Sequence, Tuple

from ..battery import BatteryModel, LoadProfile
from ..errors import ConfigurationError, InfeasibleDeadlineError
from ..scheduling import DesignPointAssignment, SchedulingProblem
from ..taskgraph import TaskGraph
from .common import BaselineResult

__all__ = ["enumerate_topological_orders", "exhaustive_optimum"]


def enumerate_topological_orders(graph: TaskGraph, limit: Optional[int] = None) -> Iterator[Tuple[str, ...]]:
    """Yield every topological order of ``graph`` (optionally capped at ``limit``)."""
    names = graph.task_names()
    indegree = {name: len(graph.predecessors(name)) for name in names}
    produced = 0

    def backtrack(prefix: List[str], indegree: dict) -> Iterator[Tuple[str, ...]]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if len(prefix) == len(names):
            produced += 1
            yield tuple(prefix)
            return
        for name in names:
            if name in prefix or indegree[name] != 0:
                continue
            next_indegree = dict(indegree)
            next_indegree[name] = -1  # mark consumed
            for child in graph.successors(name):
                next_indegree[child] -= 1
            prefix.append(name)
            yield from backtrack(prefix, next_indegree)
            prefix.pop()
            if limit is not None and produced >= limit:
                return

    yield from backtrack([], indegree)


def exhaustive_optimum(
    problem: SchedulingProblem,
    model: Optional[BatteryModel] = None,
    max_states: int = 2_000_000,
) -> BaselineResult:
    """Brute-force the optimal (sequence, assignment) pair.

    Raises
    ------
    ConfigurationError
        When the instance would require more than ``max_states`` cost
        evaluations.
    InfeasibleDeadlineError
        When no combination meets the deadline.
    """
    graph = problem.graph
    deadline = problem.deadline
    battery_model = model if model is not None else problem.model()
    m = graph.uniform_design_point_count()
    n = graph.num_tasks

    orders = list(enumerate_topological_orders(graph))
    state_count = len(orders) * (m**n)
    if state_count > max_states:
        raise ConfigurationError(
            f"exhaustive search would evaluate {state_count} states "
            f"(> max_states={max_states}); use a smaller instance"
        )

    durations = {
        task.name: [dp.execution_time for dp in task.ordered_design_points()]
        for task in graph
    }
    currents = {
        task.name: [dp.current for dp in task.ordered_design_points()]
        for task in graph
    }

    best_cost = math.inf
    best: Optional[Tuple[Tuple[str, ...], Tuple[int, ...], float]] = None
    names = graph.task_names()

    for columns in itertools.product(range(m), repeat=n):
        column_by_name = dict(zip(names, columns))
        makespan = sum(durations[name][column_by_name[name]] for name in names)
        if makespan > deadline + 1e-9:
            continue
        for order in orders:
            profile = LoadProfile.from_back_to_back(
                durations=[durations[name][column_by_name[name]] for name in order],
                currents=[currents[name][column_by_name[name]] for name in order],
            )
            cost = battery_model.apparent_charge(profile, at_time=profile.end_time)
            if cost < best_cost:
                best_cost = cost
                best = (order, columns, makespan)

    if best is None:
        raise InfeasibleDeadlineError(
            f"no design-point combination meets the deadline {deadline:g}"
        )

    order, columns, makespan = best
    assignment = DesignPointAssignment(dict(zip(names, columns)))
    return BaselineResult(
        name="exhaustive",
        graph=graph,
        deadline=deadline,
        sequence=order,
        assignment=assignment,
        cost=best_cost,
        makespan=makespan,
    )
