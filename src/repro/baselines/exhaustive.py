"""Exhaustive search over sequences and assignments (small instances only).

Enumerates every topological order of the task graph and every design-point
combination, evaluating the battery cost of each feasible pair.  The state
space is ``(#topological orders) * m^n``, so a guard refuses instances whose
enumeration would exceed a configurable budget; within that budget the
result is the true optimum, which the test-suite uses to check that the
iterative heuristic and the annealer land close to (and never below) it.

For models with a vectorized schedule path (all four built-in chemistries),
orders are enumerated by a depth-first search that costs tasks as they are
placed: an interval's sigma contribution depends only on its design point
and its *time-to-end* (makespan minus completion time), both known the
moment it is placed, so a prefix's sigma is exact long before the order is
complete.  Each chemistry supplies a per-interval **contribution floor**
(:meth:`~repro.battery.ScheduleKernelMixin.contribution_floor`) — the
nominal charge ``I * Delta`` for the Rakhmatov–Vrudhula and kinetic models
(their rate-capacity excess only adds), the *exact* contribution for the
time-insensitive Peukert and ideal models — so the quantity

    prefix sigma + sum of remaining contribution floors

is a valid lower bound on every completion of the prefix and prunes the
subtree whenever it cannot beat the incumbent.  Shared prefixes across
orders are also costed once instead of once per order.  Models without the
vectorized path (or without a floor) fall back to the plain
enumerate-and-evaluate loop.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..battery import BatteryModel
from ..errors import ConfigurationError, InfeasibleDeadlineError
from ..scheduling import DesignPointAssignment, SchedulingProblem, evaluate_schedule
from ..taskgraph import TaskGraph
from .common import BaselineResult

__all__ = ["enumerate_topological_orders", "exhaustive_optimum"]


def enumerate_topological_orders(graph: TaskGraph, limit: Optional[int] = None) -> Iterator[Tuple[str, ...]]:
    """Yield every topological order of ``graph`` (optionally capped at ``limit``)."""
    names = graph.task_names()
    indegree = {name: len(graph.predecessors(name)) for name in names}
    produced = 0

    def backtrack(prefix: List[str], indegree: dict) -> Iterator[Tuple[str, ...]]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if len(prefix) == len(names):
            produced += 1
            yield tuple(prefix)
            return
        for name in names:
            if name in prefix or indegree[name] != 0:
                continue
            next_indegree = dict(indegree)
            next_indegree[name] = -1  # mark consumed
            for child in graph.successors(name):
                next_indegree[child] -= 1
            prefix.append(name)
            yield from backtrack(prefix, next_indegree)
            prefix.pop()
            if limit is not None and produced >= limit:
                return

    yield from backtrack([], indegree)


def exhaustive_optimum(
    problem: SchedulingProblem,
    model: Optional[BatteryModel] = None,
    max_states: int = 2_000_000,
) -> BaselineResult:
    """Brute-force the optimal (sequence, assignment) pair.

    Raises
    ------
    ConfigurationError
        When the instance would require more than ``max_states`` cost
        evaluations.
    InfeasibleDeadlineError
        When no combination meets the deadline.
    """
    graph = problem.graph
    deadline = problem.deadline
    battery_model = model if model is not None else problem.model()
    m = graph.uniform_design_point_count()
    n = graph.num_tasks

    # Count orders only up to the first count that blows the budget, so the
    # guard itself stays cheap on graphs with astronomically many orders.
    order_budget = max_states // (m**n) + 1
    order_count = sum(1 for _ in enumerate_topological_orders(graph, limit=order_budget))
    state_count = order_count * (m**n)
    if state_count > max_states:
        raise ConfigurationError(
            f"exhaustive search would evaluate {state_count} states or more "
            f"(> max_states={max_states}); use a smaller instance"
        )

    durations = {
        task.name: [dp.execution_time for dp in task.ordered_design_points()]
        for task in graph
    }
    currents = {
        task.name: [dp.current for dp in task.ordered_design_points()]
        for task in graph
    }
    names = graph.task_names()

    best = None
    pruned = False
    if hasattr(battery_model, "interval_contributions"):
        try:
            best = _pruned_search(
                graph, names, durations, currents, battery_model, deadline, m, n
            )
            pruned = True
        except (NotImplementedError, AttributeError):
            # Two shapes of "kernel but no floor": a ScheduleKernelMixin
            # subclass that never overrode the raising contribution_floor
            # stub (hasattr cannot tell it from a real implementation), and
            # a model implementing interval_contributions without the mixin
            # at all (no contribution_floor attribute; CachedBatteryModel
            # re-raises the miss as AttributeError).  Both take the
            # documented fallback; the probe raises before any candidate is
            # accepted, so nothing partial leaks out of the abandoned search.
            pruned = False
    if not pruned:
        orders = list(enumerate_topological_orders(graph))
        best = _legacy_search(
            orders, names, durations, currents, battery_model, deadline, m, n
        )

    if best is None:
        raise InfeasibleDeadlineError(
            f"no design-point combination meets the deadline {deadline:g}"
        )

    order, columns, makespan = best
    assignment = DesignPointAssignment(dict(zip(names, columns)))
    # Report the canonical cost of the winner (the DFS accumulates the same
    # sigma up to rounding; re-evaluating keeps the returned number
    # bit-identical to battery_cost of the same solution).
    cost = evaluate_schedule(graph, order, assignment, battery_model).cost
    return BaselineResult(
        name="exhaustive",
        graph=graph,
        deadline=deadline,
        sequence=order,
        assignment=assignment,
        cost=cost,
        makespan=makespan,
    )


def _pruned_search(
    graph: TaskGraph,
    names: Sequence[str],
    durations: Dict[str, List[float]],
    currents: Dict[str, List[float]],
    model: BatteryModel,
    deadline: float,
    m: int,
    n: int,
) -> Optional[Tuple[Tuple[str, ...], Tuple[int, ...], float]]:
    """DFS over (column combo, topological order) with prefix-sigma pruning."""
    successors = {name: graph.successors(name) for name in names}
    base_indegree = {name: len(graph.predecessors(name)) for name in names}

    # Per-(task, column) contribution floors, computed once: the chemistry's
    # guaranteed minimum contribution of the task at that design point,
    # whatever its eventual position.
    floors = {
        name: model.contribution_floor(
            np.asarray(durations[name]), np.asarray(currents[name])
        )
        for name in names
    }

    best_cost = math.inf
    best: Optional[Tuple[Tuple[str, ...], Tuple[int, ...], float]] = None

    for columns in itertools.product(range(m), repeat=n):
        column_by_name = dict(zip(names, columns))
        duration_of = {name: durations[name][column_by_name[name]] for name in names}
        current_of = {name: currents[name][column_by_name[name]] for name in names}
        makespan = sum(duration_of[name] for name in names)
        if makespan > deadline + 1e-9:
            continue
        floor_of = {name: float(floors[name][column_by_name[name]]) for name in names}
        total_floor = math.fsum(floor_of[name] for name in names)

        prefix: List[str] = []
        indegree = dict(base_indegree)

        def place(elapsed: float, sigma: float, remaining_floor: float) -> None:
            nonlocal best_cost, best
            # Placed tasks carry indegree -1, so the test also excludes them.
            ready = [name for name in names if indegree[name] == 0]
            if not ready:
                return
            # One vectorized call costs every ready candidate of this node.
            ready_durations = np.array([duration_of[name] for name in ready])
            ready_currents = np.array([current_of[name] for name in ready])
            time_to_end = np.maximum(makespan - elapsed - ready_durations, 0.0)
            contributions = model.interval_contributions(
                ready_durations, ready_currents, time_to_end
            )
            margin = 1e-9 * (1.0 + abs(best_cost)) if best_cost < math.inf else 0.0
            for pick, name in enumerate(ready):
                new_sigma = sigma + float(contributions[pick])
                if len(prefix) == n - 1:
                    if new_sigma < best_cost:
                        best_cost = new_sigma
                        best = (tuple(prefix) + (name,), columns, makespan)
                        margin = 1e-9 * (1.0 + abs(best_cost))
                    continue
                new_remaining = remaining_floor - floor_of[name]
                # Every unplaced task contributes at least its chemistry's
                # contribution floor wherever it lands, so this bound is
                # valid (and exact for time-insensitive chemistries) up to
                # float noise; the margin keeps pruning conservative.
                if new_sigma + new_remaining - margin >= best_cost:
                    continue
                prefix.append(name)
                indegree[name] = -1
                for child in successors[name]:
                    indegree[child] -= 1
                place(elapsed + duration_of[name], new_sigma, new_remaining)
                prefix.pop()
                indegree[name] = 0
                for child in successors[name]:
                    indegree[child] += 1

        place(0.0, 0.0, total_floor)

    return best


def _legacy_search(
    orders: Sequence[Tuple[str, ...]],
    names: Sequence[str],
    durations: Dict[str, List[float]],
    currents: Dict[str, List[float]],
    model: BatteryModel,
    deadline: float,
    m: int,
    n: int,
) -> Optional[Tuple[Tuple[str, ...], Tuple[int, ...], float]]:
    """Plain enumerate-and-evaluate loop for models without an array path."""
    best_cost = math.inf
    best: Optional[Tuple[Tuple[str, ...], Tuple[int, ...], float]] = None
    for columns in itertools.product(range(m), repeat=n):
        column_by_name = dict(zip(names, columns))
        makespan = sum(durations[name][column_by_name[name]] for name in names)
        if makespan > deadline + 1e-9:
            continue
        for order in orders:
            cost = model.schedule_charge(
                [durations[name][column_by_name[name]] for name in order],
                [currents[name][column_by_name[name]] for name in order],
            )
            if cost < best_cost:
                best_cost = cost
                best = (order, columns, makespan)
    return best
