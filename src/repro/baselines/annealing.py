"""Simulated-annealing baseline over joint (sequence, assignment) space.

The paper argues that metaheuristics such as simulated annealing are too
heavy to run *on* the battery-powered platform itself; the library still
implements one, both as a quality yardstick for the iterative heuristic on
synthetic workloads and to let users measure how close the heuristic gets to
a search that spends orders of magnitude more evaluations.

The state is a (precedence-respecting sequence, design-point assignment)
pair.  Neighbourhood moves either

* change one task's design point by one column, or
* move one task to a different position within the window of positions
  allowed by its predecessors and successors (which preserves validity by
  construction).

Deadline violations are admitted during the walk but penalised
proportionally to the overshoot, so the search can traverse infeasible
regions yet always reports a feasible incumbent when one exists.

Both neighbourhood moves are the
:class:`~repro.scheduling.IncrementalCostEvaluator`'s moves, so the walk is
driven incrementally *for every chemistry*: each candidate re-costs only
the schedule window its move touches instead of rebuilding a load profile
and re-evaluating the whole model, and rejected candidates leave the state
(and its cached per-interval contributions) untouched.  Incremental costs
are bit-identical to full re-evaluation, so the walk's trajectory is
exactly the one a full-recompute annealer with the same RNG stream would
take.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..battery import BatteryModel
from ..errors import ConfigurationError
from ..scheduling import (
    DesignPointAssignment,
    IncrementalCostEvaluator,
    SchedulingProblem,
    sequence_by_decreasing_energy,
)
from ..taskgraph import TaskGraph
from .common import BaselineResult

__all__ = ["AnnealingConfig", "simulated_annealing_baseline"]


@dataclass(frozen=True)
class AnnealingConfig:
    """Parameters of the annealing schedule."""

    iterations: int = 20000
    initial_temperature: float = 0.2
    """Initial temperature as a fraction of the starting cost."""
    final_temperature_ratio: float = 1e-3
    """Geometric cooling target: final T = initial T * ratio."""
    deadline_penalty: float = 10.0
    """Cost multiplier applied per unit of deadline overshoot (relative)."""
    seed: int = 2005

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if not (0 < self.final_temperature_ratio <= 1):
            raise ConfigurationError("final_temperature_ratio must be in (0, 1]")
        if self.initial_temperature <= 0:
            raise ConfigurationError("initial_temperature must be > 0")


def simulated_annealing_baseline(
    problem: SchedulingProblem,
    config: Optional[AnnealingConfig] = None,
    model: Optional[BatteryModel] = None,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> BaselineResult:
    """Anneal over sequences and assignments; returns the best feasible state found.

    Randomness is fully explicit so results are reproducible end-to-end:
    ``rng`` (an externally owned :class:`random.Random`) takes precedence,
    then ``seed``, then ``config.seed``.  Two calls with the same problem
    and the same seed walk the identical trajectory — independent of the
    cost engine, because the acceptance draw is consumed once per evaluated
    move rather than short-circuited behind the improving-move test (the
    pre-evaluator behaviour, under which same-seed trajectories depended on
    ULP-level rounding of the cost path).
    """
    config = config or AnnealingConfig()
    battery_model = model if model is not None else problem.model()
    graph = problem.graph
    deadline = problem.deadline
    if rng is None:
        rng = random.Random(config.seed if seed is None else seed)

    sequence = list(sequence_by_decreasing_energy(graph))
    m = graph.uniform_design_point_count()
    # Start from the fastest assignment so the walk begins feasible whenever
    # the instance is feasible at all.
    columns = {name: 0 for name in graph.task_names()}

    evaluator = IncrementalCostEvaluator(
        graph, sequence, DesignPointAssignment(columns), battery_model,
        track_undo=False,  # the walk only moves forward; rejects are never applied
    )

    def penalised(sigma: float, makespan: float) -> Tuple[float, bool]:
        feasible = makespan <= deadline + 1e-9
        if not feasible:
            overshoot = (makespan - deadline) / deadline
            sigma *= 1.0 + config.deadline_penalty * overshoot
        return sigma, feasible

    current_cost, current_feasible = penalised(evaluator.cost, evaluator.makespan)
    current_makespan = evaluator.makespan
    best = (
        list(sequence),
        dict(columns),
        current_cost,
        current_makespan,
        current_feasible,
    )

    initial_t = config.initial_temperature * max(current_cost, 1e-9)
    final_t = initial_t * config.final_temperature_ratio
    cooling = (final_t / initial_t) ** (1.0 / max(config.iterations - 1, 1))
    temperature = initial_t

    # Hot-loop views: the evaluator's live sequence/position state (re-read
    # after relocations commit) and the fixed task-order pool the design-point
    # draw samples from (``columns`` is mutated in place, never rebuilt, so
    # its iteration order — and with it the RNG stream — never changes).
    sequence = evaluator.state.sequence
    positions = evaluator.positions
    name_pool = list(columns)

    for _ in range(config.iterations):
        moved_column = None
        if rng.random() < 0.5:
            # Design-point move: shift one task by one column.
            name = rng.choice(name_pool)
            column = columns[name]
            delta = rng.choice((-1, 1))
            new_column = min(max(column + delta, 0), m - 1)
            if new_column == column:
                continue
            proposal = evaluator.propose_design_point(name, new_column)
            moved_column = (name, new_column)
        else:
            # Sequence move: relocate one task within its legal position range.
            name = rng.choice(sequence)
            target = _relocation_target(graph, sequence, positions, name, rng)
            if target is None:
                continue
            proposal = evaluator.propose_relocate(name, target)

        candidate_cost, candidate_feasible = penalised(
            proposal.cost, proposal.makespan
        )
        # The acceptance draw is consumed unconditionally (not short-circuited
        # behind the improving-move test) so the RNG stream — and with it the
        # whole trajectory — is invariant to ULP-level cost-engine noise: a
        # tie that one evaluation order ranks "equal" and another "one ULP
        # worse" accepts either way, with the same stream afterwards.
        draw = rng.random()
        accept = candidate_cost <= current_cost or draw < math.exp(
            (current_cost - candidate_cost) / max(temperature, 1e-12)
        )
        if accept:
            evaluator.apply(proposal)
            # Update the column mirror in place (incumbent snapshots below
            # copy, so this is safe) and re-read the evaluator's live
            # sequence/position views, which a relocation replaces.
            if moved_column is not None:
                columns[moved_column[0]] = moved_column[1]
            else:
                sequence = evaluator.state.sequence
                positions = evaluator.positions
            current_cost = candidate_cost
            current_makespan = proposal.makespan
            current_feasible = candidate_feasible
            better_feasibility = current_feasible and not best[4]
            better_cost = current_cost < best[2] and current_feasible >= best[4]
            if better_feasibility or better_cost:
                best = (
                    list(sequence),
                    dict(columns),
                    current_cost,
                    current_makespan,
                    current_feasible,
                )
        temperature *= cooling

    best_sequence, best_columns, best_cost, best_makespan, _ = best
    assignment = DesignPointAssignment(best_columns)
    return BaselineResult(
        name="simulated-annealing",
        graph=graph,
        deadline=deadline,
        sequence=tuple(best_sequence),
        assignment=assignment,
        cost=best_cost,
        makespan=best_makespan,
    )


def _relocation_target(
    graph: TaskGraph,
    sequence: List[str],
    positions: dict,
    name: str,
    rng: random.Random,
) -> Optional[int]:
    """A random legal new position for ``name``; None when it cannot move.

    Draws from the same distribution (and consumes the same RNG values) as
    the pre-evaluator implementation that rebuilt the sequence list.
    """
    index = positions[name]
    predecessors = graph.predecessors(name)
    successors = graph.successors(name)
    lower = max((positions[p] for p in predecessors), default=-1) + 1
    upper = min((positions[s] for s in successors), default=len(sequence)) - 1
    if upper <= lower and (upper < index or lower > index):
        return None
    if upper < lower:
        return None
    target = rng.randint(lower, upper)
    if target == index:
        return None
    return target
