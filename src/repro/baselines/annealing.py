"""Simulated-annealing baseline over joint (sequence, assignment) space.

The paper argues that metaheuristics such as simulated annealing are too
heavy to run *on* the battery-powered platform itself; the library still
implements one, both as a quality yardstick for the iterative heuristic on
synthetic workloads and to let users measure how close the heuristic gets to
a search that spends orders of magnitude more evaluations.

The state is a (precedence-respecting sequence, design-point assignment)
pair.  Neighbourhood moves either

* change one task's design point by one column, or
* move one task to a different position within the window of positions
  allowed by its predecessors and successors (which preserves validity by
  construction).

Deadline violations are admitted during the walk but penalised
proportionally to the overshoot, so the search can traverse infeasible
regions yet always reports a feasible incumbent when one exists.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..battery import BatteryModel, LoadProfile
from ..errors import ConfigurationError
from ..scheduling import (
    DesignPointAssignment,
    SchedulingProblem,
    sequence_by_decreasing_energy,
)
from ..taskgraph import TaskGraph
from .common import BaselineResult

__all__ = ["AnnealingConfig", "simulated_annealing_baseline"]


@dataclass(frozen=True)
class AnnealingConfig:
    """Parameters of the annealing schedule."""

    iterations: int = 20000
    initial_temperature: float = 0.2
    """Initial temperature as a fraction of the starting cost."""
    final_temperature_ratio: float = 1e-3
    """Geometric cooling target: final T = initial T * ratio."""
    deadline_penalty: float = 10.0
    """Cost multiplier applied per unit of deadline overshoot (relative)."""
    seed: int = 2005

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if not (0 < self.final_temperature_ratio <= 1):
            raise ConfigurationError("final_temperature_ratio must be in (0, 1]")
        if self.initial_temperature <= 0:
            raise ConfigurationError("initial_temperature must be > 0")


def simulated_annealing_baseline(
    problem: SchedulingProblem,
    config: Optional[AnnealingConfig] = None,
    model: Optional[BatteryModel] = None,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> BaselineResult:
    """Anneal over sequences and assignments; returns the best feasible state found.

    Randomness is fully explicit so results are reproducible end-to-end:
    ``rng`` (an externally owned :class:`random.Random`) takes precedence,
    then ``seed``, then ``config.seed``.  Two calls with the same problem
    and the same seed walk the identical trajectory.
    """
    config = config or AnnealingConfig()
    battery_model = model if model is not None else problem.model()
    graph = problem.graph
    deadline = problem.deadline
    if rng is None:
        rng = random.Random(config.seed if seed is None else seed)

    sequence = list(sequence_by_decreasing_energy(graph))
    m = graph.uniform_design_point_count()
    durations, currents = _design_point_tables(graph)
    # Start from the fastest assignment so the walk begins feasible whenever
    # the instance is feasible at all.
    columns = {name: 0 for name in graph.task_names()}

    def energy(seq: List[str], cols: dict) -> Tuple[float, float, bool]:
        profile = LoadProfile.from_back_to_back(
            durations=[durations[name][cols[name]] for name in seq],
            currents=[currents[name][cols[name]] for name in seq],
        )
        makespan = profile.end_time
        cost = battery_model.apparent_charge(profile, at_time=makespan)
        feasible = makespan <= deadline + 1e-9
        if not feasible:
            overshoot = (makespan - deadline) / deadline
            cost *= 1.0 + config.deadline_penalty * overshoot
        return cost, makespan, feasible

    current_cost, current_makespan, current_feasible = energy(sequence, columns)
    best = (
        list(sequence),
        dict(columns),
        current_cost,
        current_makespan,
        current_feasible,
    )

    initial_t = config.initial_temperature * max(current_cost, 1e-9)
    final_t = initial_t * config.final_temperature_ratio
    cooling = (final_t / initial_t) ** (1.0 / max(config.iterations - 1, 1))
    temperature = initial_t

    positions = {name: index for index, name in enumerate(sequence)}

    for _ in range(config.iterations):
        new_sequence = sequence
        new_columns = columns
        if rng.random() < 0.5:
            # Design-point move: shift one task by one column.
            name = rng.choice(list(columns))
            column = columns[name]
            delta = rng.choice((-1, 1))
            new_column = min(max(column + delta, 0), m - 1)
            if new_column == column:
                continue
            new_columns = dict(columns)
            new_columns[name] = new_column
        else:
            # Sequence move: relocate one task within its legal position range.
            name = rng.choice(sequence)
            new_sequence = _relocate(graph, sequence, positions, name, rng)
            if new_sequence is None:
                continue

        candidate_cost, candidate_makespan, candidate_feasible = energy(
            new_sequence, new_columns
        )
        accept = candidate_cost <= current_cost or rng.random() < math.exp(
            (current_cost - candidate_cost) / max(temperature, 1e-12)
        )
        if accept:
            sequence = list(new_sequence)
            columns = dict(new_columns)
            positions = {task: index for index, task in enumerate(sequence)}
            current_cost = candidate_cost
            current_makespan = candidate_makespan
            current_feasible = candidate_feasible
            better_feasibility = current_feasible and not best[4]
            better_cost = current_cost < best[2] and current_feasible >= best[4]
            if better_feasibility or better_cost:
                best = (
                    list(sequence),
                    dict(columns),
                    current_cost,
                    current_makespan,
                    current_feasible,
                )
        temperature *= cooling

    best_sequence, best_columns, best_cost, best_makespan, _ = best
    assignment = DesignPointAssignment(best_columns)
    return BaselineResult(
        name="simulated-annealing",
        graph=graph,
        deadline=deadline,
        sequence=tuple(best_sequence),
        assignment=assignment,
        cost=best_cost,
        makespan=best_makespan,
    )


def _design_point_tables(graph: TaskGraph):
    durations = {}
    currents = {}
    for task in graph:
        points = task.ordered_design_points()
        durations[task.name] = [dp.execution_time for dp in points]
        currents[task.name] = [dp.current for dp in points]
    return durations, currents


def _relocate(
    graph: TaskGraph,
    sequence: List[str],
    positions: dict,
    name: str,
    rng: random.Random,
) -> Optional[List[str]]:
    """Move ``name`` to a random legal position; None when it cannot move."""
    index = positions[name]
    predecessors = graph.predecessors(name)
    successors = graph.successors(name)
    lower = max((positions[p] for p in predecessors), default=-1) + 1
    upper = min((positions[s] for s in successors), default=len(sequence)) - 1
    if upper <= lower and (upper < index or lower > index):
        return None
    if upper < lower:
        return None
    target = rng.randint(lower, upper)
    if target == index:
        return None
    new_sequence = list(sequence)
    new_sequence.pop(index)
    new_sequence.insert(target, name)
    return new_sequence
