"""Minimum-energy design-point selection under a deadline (dynamic program).

This is the design-point allocation half of the comparison algorithm the
paper evaluates against (Section 5, "an approach in [1]"): Rakhmatov and
Vrudhula's energy-management work selects, for every task, the design point
that minimises the *total energy* of the task set subject to the sum of
execution times fitting the deadline.  Because every task contributes
exactly one choice, this is a multiple-choice knapsack, which the reference
solves with dynamic programming.

Execution times are real-valued (minutes with one decimal in the paper's
tables), so the time axis is discretised onto a uniform grid.  The grid is
chosen in two steps:

1. If every execution time is an (almost exact) integer multiple of one of a
   few decimal resolutions (1, 0.5, 0.1, ... minutes) and the deadline spans
   a manageable number of such cells, that resolution is used and the DP is
   *exact* — this covers the paper's data, whose durations have one decimal.
2. Otherwise the deadline is split into ``time_steps`` cells and every
   duration is rounded *up* to the grid, which keeps every solution the DP
   declares feasible genuinely feasible (the makespan can only be
   overestimated, by at most ``deadline / time_steps`` per task).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, InfeasibleDeadlineError
from ..scheduling import DesignPointAssignment
from ..taskgraph import TaskGraph

__all__ = ["minimum_energy_assignment"]

#: Decimal resolutions tried for an exact time grid, coarsest first.
_EXACT_RESOLUTIONS = (1.0, 0.5, 0.25, 0.1, 0.05, 0.025, 0.01, 0.005, 0.001)

#: Upper bound on the number of grid cells an "exact" resolution may need.
_MAX_EXACT_CELLS = 200_000


def _exact_resolution(durations, deadline: float) -> Optional[float]:
    """The coarsest decimal resolution representing every duration exactly.

    Returns ``None`` when no candidate resolution fits all durations (within
    a tiny tolerance) or when the deadline would need too many grid cells.
    """
    for resolution in _EXACT_RESOLUTIONS:
        if deadline / resolution > _MAX_EXACT_CELLS:
            return None
        if all(
            abs(duration / resolution - round(duration / resolution)) < 1e-6
            for duration in durations
        ):
            return resolution
    return None


def minimum_energy_assignment(
    graph: TaskGraph,
    deadline: float,
    time_steps: int = 2000,
) -> DesignPointAssignment:
    """Pick one design point per task minimising total energy within the deadline.

    Parameters
    ----------
    graph:
        Task graph (only the per-task design points matter: on a single
        processing element the makespan is order-independent).
    deadline:
        Completion deadline for the whole task set.
    time_steps:
        Number of grid cells the deadline is divided into for the dynamic
        program.  Larger values tighten the rounding at the cost of memory
        and time (table size is ``n_tasks * time_steps``).

    Returns
    -------
    DesignPointAssignment
        Energy-minimal assignment whose (rounded-up) makespan fits the
        deadline.

    Raises
    ------
    InfeasibleDeadlineError
        When even the all-fastest assignment cannot fit the deadline.
    """
    if time_steps < 10:
        raise ConfigurationError(f"time_steps must be >= 10, got {time_steps!r}")
    if deadline <= 0 or not math.isfinite(deadline):
        raise ConfigurationError(f"deadline must be finite and > 0, got {deadline!r}")

    tasks = graph.tasks()
    n = len(tasks)

    all_durations = [
        point.execution_time for task in tasks for point in task.design_points
    ]
    exact = _exact_resolution(all_durations, deadline)
    if exact is not None:
        resolution = exact
        time_steps = int(math.floor(deadline / resolution + 1e-9))
    else:
        resolution = deadline / time_steps

    # Pre-compute, per task, the (grid duration, energy, column) options,
    # dominated options removed (slower *and* at least as much energy).
    options: List[List[Tuple[int, float, int]]] = []
    for task in tasks:
        rows = []
        for column, point in enumerate(task.ordered_design_points()):
            if exact is not None:
                grid_duration = int(round(point.execution_time / resolution))
            else:
                grid_duration = int(math.ceil(point.execution_time / resolution - 1e-12))
            rows.append((grid_duration, point.energy, column))
        rows.sort()
        pruned: List[Tuple[int, float, int]] = []
        best_energy = math.inf
        for grid_duration, energy, column in rows:
            if energy < best_energy - 1e-15:
                pruned.append((grid_duration, energy, column))
                best_energy = energy
        options.append(pruned)

    if sum(opts[0][0] for opts in options) > time_steps:
        raise InfeasibleDeadlineError(
            f"deadline {deadline:g} cannot be met even with the fastest design points"
        )

    # dp[t] = minimal energy using the tasks processed so far within t grid
    # cells; choice[i][t] = column chosen for task i to achieve dp after task i.
    infinity = math.inf
    dp = np.full(time_steps + 1, infinity)
    dp[0] = 0.0
    choices: List[np.ndarray] = []

    for task_index, opts in enumerate(options):
        new_dp = np.full(time_steps + 1, infinity)
        choice = np.full(time_steps + 1, -1, dtype=int)
        for grid_duration, energy, column in opts:
            if grid_duration > time_steps:
                continue
            shifted = dp[: time_steps + 1 - grid_duration] + energy
            target = new_dp[grid_duration:]
            better = shifted < target
            target[better] = shifted[better]
            choice_slice = choice[grid_duration:]
            choice_slice[better] = column
        choices.append(choice)
        dp = new_dp

    best_budget = int(np.argmin(dp))
    if not math.isfinite(dp[best_budget]):
        raise InfeasibleDeadlineError(
            f"no design-point combination fits the deadline {deadline:g}"
        )

    # Backtrack the chosen columns.
    assignment: Dict[str, int] = {}
    budget = best_budget
    for task_index in range(n - 1, -1, -1):
        column = int(choices[task_index][budget])
        if column < 0:  # pragma: no cover - defensive; cannot happen if dp finite
            raise InfeasibleDeadlineError("dynamic program backtracking failed")
        task = tasks[task_index]
        grid_duration = next(
            gd for gd, _, col in options[task_index] if col == column
        )
        assignment[task.name] = column
        budget -= grid_duration

    return DesignPointAssignment(assignment)
