"""Baseline schedulers the paper compares against (or that bound its results).

* :func:`rakhmatov_baseline` — the Table 4 comparison algorithm: dynamic
  program minimising total energy under the deadline, followed by
  Equation-5 greedy sequencing.
* :func:`chowdhury_baseline` — last-task-first voltage downscaling ([7]).
* :func:`all_fastest_baseline` / :func:`all_slowest_baseline` /
  :func:`best_uniform_baseline` — uniform-column bounds.
* :func:`simulated_annealing_baseline` — heavyweight metaheuristic yardstick.
* :func:`exhaustive_optimum` — true optimum for small instances (testing).
"""

from .annealing import AnnealingConfig, simulated_annealing_baseline
from .bounds import (
    all_fastest_baseline,
    all_slowest_baseline,
    best_uniform_baseline,
    uniform_baseline,
)
from .chowdhury import chowdhury_baseline, last_task_first_assignment
from .common import BaselineResult
from .dp_energy import minimum_energy_assignment
from .exhaustive import enumerate_topological_orders, exhaustive_optimum
from .greedy_sequence import (
    equation5_weights,
    greedy_current_sequence,
    rakhmatov_baseline,
)

__all__ = [
    "BaselineResult",
    "minimum_energy_assignment",
    "equation5_weights",
    "greedy_current_sequence",
    "rakhmatov_baseline",
    "chowdhury_baseline",
    "last_task_first_assignment",
    "uniform_baseline",
    "all_fastest_baseline",
    "all_slowest_baseline",
    "best_uniform_baseline",
    "AnnealingConfig",
    "simulated_annealing_baseline",
    "enumerate_topological_orders",
    "exhaustive_optimum",
]
