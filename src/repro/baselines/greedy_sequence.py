"""Equation-5 greedy sequencing and the full [1]-style comparison baseline.

After its dynamic program has fixed one design point per task, the approach
the paper compares against (Section 5) orders the tasks with a greedy list
scheduler whose weights are

    w(v) = max( I_v , MeanI(G_v) )                       (Equation 5)

where ``I_v`` is the chosen design point's current of task ``v`` and
``MeanI(G_v)`` the mean chosen current over the subgraph rooted at ``v``.
Ready tasks with the largest weight are scheduled first.

:func:`rakhmatov_baseline` chains the two halves — minimum-energy
design-point selection (:mod:`repro.baselines.dp_energy`) followed by
Equation-5 sequencing — and evaluates the battery cost of the result, which
is exactly the comparison column of the paper's Table 4.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..battery import BatteryModel
from ..scheduling import (
    DesignPointAssignment,
    SchedulingProblem,
    evaluate_schedule,
    sequence_by_weights,
)
from ..taskgraph import TaskGraph
from .common import BaselineResult
from .dp_energy import minimum_energy_assignment

__all__ = ["equation5_weights", "greedy_current_sequence", "rakhmatov_baseline"]


def equation5_weights(
    graph: TaskGraph, assignment: DesignPointAssignment
) -> Dict[str, float]:
    """Equation 5 weights: ``max(own chosen current, mean subgraph chosen current)``."""
    assignment.validate(graph)
    chosen = {name: assignment.design_point(graph, name).current for name in graph.task_names()}
    weights: Dict[str, float] = {}
    for name in graph.task_names():
        members = graph.subgraph_rooted_at(name)
        mean_current = sum(chosen[member] for member in members) / len(members)
        weights[name] = max(chosen[name], mean_current)
    return weights


def greedy_current_sequence(
    graph: TaskGraph, assignment: DesignPointAssignment
) -> Tuple[str, ...]:
    """List-schedule the graph with Equation 5 weights (largest weight first)."""
    return sequence_by_weights(
        graph, equation5_weights(graph, assignment), higher_first=True
    )


def rakhmatov_baseline(
    problem: SchedulingProblem,
    model: Optional[BatteryModel] = None,
    time_steps: int = 2000,
) -> BaselineResult:
    """The comparison algorithm of Table 4: DP energy minimisation + Equation 5 order.

    Parameters
    ----------
    problem:
        Task graph, deadline and battery specification.
    model:
        Battery model used to *evaluate* the result (the baseline itself is
        battery-agnostic — that is its point); defaults to the problem's
        analytical model.
    time_steps:
        Time grid resolution handed to the dynamic program.
    """
    battery_model = model if model is not None else problem.model()
    assignment = minimum_energy_assignment(
        problem.graph, problem.deadline, time_steps=time_steps
    )
    sequence = greedy_current_sequence(problem.graph, assignment)
    # One canonical full evaluation through the evaluator stack.
    cost = evaluate_schedule(problem.graph, sequence, assignment, battery_model).cost
    return BaselineResult(
        name="dp-energy+greedy",
        graph=problem.graph,
        deadline=problem.deadline,
        sequence=sequence,
        assignment=assignment,
        cost=cost,
        makespan=assignment.total_execution_time(problem.graph),
    )
