"""Chowdhury–Chakrabarti style last-task-first voltage downscaling ([7]).

The related-work heuristic the paper cites as [7] starts from the fastest
(highest-voltage) implementation of every task and then walks the schedule
*backwards*, lowering each task's voltage level as far as the remaining
deadline slack permits.  The insight it encodes — slack is best spent on
tasks late in the discharge profile — is the same property the paper's own
algorithm builds on, which makes this a useful intermediate baseline between
the battery-blind dynamic program and the full iterative heuristic.

The sequence is produced with the same average-energy list scheduler the
core algorithm seeds itself with, so the comparison isolates the
design-point policy.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..battery import BatteryModel
from ..errors import InfeasibleDeadlineError
from ..scheduling import (
    DesignPointAssignment,
    SchedulingProblem,
    battery_cost,
    sequence_by_decreasing_energy,
)
from ..taskgraph import TaskGraph, validate_sequence
from .common import BaselineResult

__all__ = ["last_task_first_assignment", "chowdhury_baseline"]

_EPS = 1e-9


def last_task_first_assignment(
    graph: TaskGraph,
    sequence: Sequence[str],
    deadline: float,
) -> DesignPointAssignment:
    """Downscale tasks from the back of the sequence while the deadline holds.

    Every task starts at its fastest design point; tasks are then visited
    from the last to the first, and each is moved to the slowest design
    point that still lets the *whole* task set meet the deadline (given the
    choices already made for later tasks and the fastest choice for earlier
    ones).

    Raises
    ------
    InfeasibleDeadlineError
        When even the all-fastest assignment misses the deadline.
    """
    validate_sequence(graph, sequence)
    durations = {
        name: [dp.execution_time for dp in graph.task(name).ordered_design_points()]
        for name in sequence
    }
    chosen = {name: 0 for name in sequence}
    makespan = sum(durations[name][0] for name in sequence)
    if makespan > deadline + _EPS:
        raise InfeasibleDeadlineError(
            f"deadline {deadline:g} is below the all-fastest makespan {makespan:g}"
        )

    for name in reversed(list(sequence)):
        options = durations[name]
        current_column = chosen[name]
        # Try progressively slower design points, keeping the slowest that fits.
        for column in range(len(options) - 1, current_column, -1):
            candidate_makespan = makespan - options[current_column] + options[column]
            if candidate_makespan <= deadline + _EPS:
                makespan = candidate_makespan
                chosen[name] = column
                break
    return DesignPointAssignment(chosen)


def chowdhury_baseline(
    problem: SchedulingProblem,
    model: Optional[BatteryModel] = None,
    sequence: Optional[Sequence[str]] = None,
) -> BaselineResult:
    """Run the last-task-first downscaling heuristic on a problem instance."""
    battery_model = model if model is not None else problem.model()
    task_sequence: Tuple[str, ...] = (
        tuple(sequence) if sequence is not None else sequence_by_decreasing_energy(problem.graph)
    )
    assignment = last_task_first_assignment(
        problem.graph, task_sequence, problem.deadline
    )
    cost = battery_cost(problem.graph, task_sequence, assignment, battery_model)
    return BaselineResult(
        name="last-task-first",
        graph=problem.graph,
        deadline=problem.deadline,
        sequence=task_sequence,
        assignment=assignment,
        cost=cost,
        makespan=assignment.total_execution_time(problem.graph),
    )
