"""Trivial bounding baselines: uniform design-point assignments.

Two schedules bracket every algorithm's battery cost on a given sequence:

* **all-fastest** — every task at its highest-power design point: meets any
  feasible deadline but draws the largest currents (and the battery model
  punishes it further through the rate-capacity effect);
* **all-slowest** — every task at its lowest-power design point: the
  cheapest possible energy, but usually misses tight deadlines.

They anchor the sweep plots and give the tests cheap sanity bounds (the
iterative algorithm must never cost more than the cheapest *feasible*
uniform assignment).

:func:`best_uniform_baseline` evaluates all ``m`` uniform columns in one
batch call of the battery model's schedule path
(:meth:`~repro.battery.ScheduleKernelMixin.schedule_charge_batch`, shared
by all four chemistries) — one vectorized sigma computation instead of
``m`` independent ones — with per-column costs bit-identical to
:func:`~repro.scheduling.battery_cost`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..battery import BatteryModel
from ..scheduling import (
    DesignPointAssignment,
    SchedulingProblem,
    battery_cost,
    sequence_by_decreasing_energy,
)
from .common import BaselineResult

__all__ = ["uniform_baseline", "all_fastest_baseline", "all_slowest_baseline", "best_uniform_baseline"]


def uniform_baseline(
    problem: SchedulingProblem,
    column: int,
    model: Optional[BatteryModel] = None,
    sequence: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
) -> BaselineResult:
    """Evaluate the schedule that assigns every task the same design-point column."""
    battery_model = model if model is not None else problem.model()
    task_sequence: Tuple[str, ...] = (
        tuple(sequence) if sequence is not None else sequence_by_decreasing_energy(problem.graph)
    )
    assignment = DesignPointAssignment.uniform(problem.graph, column)
    cost = battery_cost(problem.graph, task_sequence, assignment, battery_model)
    return BaselineResult(
        name=name or f"uniform-column-{column + 1}",
        graph=problem.graph,
        deadline=problem.deadline,
        sequence=task_sequence,
        assignment=assignment,
        cost=cost,
        makespan=assignment.total_execution_time(problem.graph),
    )


def all_fastest_baseline(
    problem: SchedulingProblem, model: Optional[BatteryModel] = None
) -> BaselineResult:
    """Every task at its fastest (highest-power) design point."""
    return uniform_baseline(problem, column=0, model=model, name="all-fastest")


def all_slowest_baseline(
    problem: SchedulingProblem, model: Optional[BatteryModel] = None
) -> BaselineResult:
    """Every task at its slowest (lowest-power) design point (may miss the deadline)."""
    m = problem.graph.uniform_design_point_count()
    return uniform_baseline(problem, column=m - 1, model=model, name="all-slowest")


def best_uniform_baseline(
    problem: SchedulingProblem, model: Optional[BatteryModel] = None
) -> BaselineResult:
    """The cheapest *feasible* uniform-column assignment.

    This is the strongest baseline one can build without mixing design
    points across tasks; it corresponds to picking the widest feasible
    window column in the paper's terminology.  All columns share one batch
    sigma evaluation when the model supports it.
    """
    battery_model = model if model is not None else problem.model()
    graph = problem.graph
    m = graph.uniform_design_point_count()
    if hasattr(battery_model, "schedule_charge_batch"):
        sequence = sequence_by_decreasing_energy(graph)
        points = {
            task.name: task.ordered_design_points() for task in graph
        }
        durations = np.array(
            [[points[name][column].execution_time for name in sequence] for column in range(m)]
        )
        currents = np.array(
            [[points[name][column].current for name in sequence] for column in range(m)]
        )
        costs = battery_model.schedule_charge_batch(durations, currents)
        results = []
        for column in range(m):
            assignment = DesignPointAssignment.uniform(graph, column)
            results.append(
                BaselineResult(
                    name=f"uniform-column-{column + 1}",
                    graph=graph,
                    deadline=problem.deadline,
                    sequence=sequence,
                    assignment=assignment,
                    cost=float(costs[column]),
                    makespan=assignment.total_execution_time(graph),
                )
            )
    else:
        results = [
            uniform_baseline(problem, column=column, model=battery_model)
            for column in range(m)
        ]
    feasible = [result for result in results if result.feasible]
    pool = feasible if feasible else results
    best = min(pool, key=lambda result: result.cost)
    return BaselineResult(
        name="best-uniform",
        graph=best.graph,
        deadline=best.deadline,
        sequence=best.sequence,
        assignment=best.assignment,
        cost=best.cost,
        makespan=best.makespan,
    )
