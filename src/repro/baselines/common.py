"""Shared result type for the baseline schedulers.

Every baseline returns the same structure as the core algorithm's essential
output — a sequence, a design-point assignment and the battery cost of
executing them — so that the comparison experiments (Table 4 and the
extension sweeps) can treat all algorithms uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..scheduling import DesignPointAssignment, Schedule
from ..taskgraph import TaskGraph

__all__ = ["BaselineResult"]


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of one baseline scheduler on one problem instance."""

    name: str
    """Algorithm label used in reports (e.g. ``"dp-energy+greedy"``)."""

    graph: TaskGraph
    deadline: float
    sequence: Tuple[str, ...]
    assignment: DesignPointAssignment
    cost: float
    """Battery cost sigma at schedule completion (mA·min)."""

    makespan: float

    @property
    def feasible(self) -> bool:
        """True when the schedule meets the deadline."""
        return self.makespan <= self.deadline + 1e-9

    def schedule(self) -> Schedule:
        """Materialise the baseline's schedule."""
        return Schedule(self.graph, self.sequence, self.assignment)

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "ok" if self.feasible else "DEADLINE MISS"
        return (
            f"{self.name}: sigma={self.cost:.1f} mA·min, "
            f"makespan={self.makespan:.1f}/{self.deadline:g} ({status})"
        )
