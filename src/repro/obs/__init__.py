"""repro.obs: tracing, metrics and profiling across engine, evaluator and simulator.

The package is a strict no-op when disabled: a single module-level
:data:`RECORDER` (never rebound) carries an ``enabled`` flag, and every
instrumented hot path pays exactly one attribute check while recording is
off.  Enable it for a block with :func:`recording`::

    from repro import obs

    with obs.recording(trace="run.jsonl") as rec:
        ...  # run experiments; spans and counters stream to run.jsonl
    snapshot = rec.counters_snapshot()  # deterministic metrics only

Metric names starting with ``rt.`` are runtime-dependent (wall times, cache
probe outcomes, pool utilization) and are excluded from deterministic
snapshots; everything else is a pure function of (scenario, params, seed)
and identical between serial and parallel execution.

Submodules
----------
``core``
    ``Counter`` / ``Histogram`` / ``Span`` / ``Recorder`` and the global
    :data:`RECORDER`.
``sinks``
    ``MemorySink`` (tests) and ``JsonlSink`` (append-only trace file).
``report``
    Trace loading/validation, Chrome-trace export, summary tables
    (the ``repro stats`` subcommand).
"""

from .core import (
    RECORDER,
    Counter,
    Histogram,
    Recorder,
    Span,
    is_volatile,
    recording,
)
from .sinks import JsonlSink, MemorySink, TRACE_VERSION

__all__ = [
    "RECORDER",
    "Counter",
    "Histogram",
    "Recorder",
    "Span",
    "is_volatile",
    "recording",
    "JsonlSink",
    "MemorySink",
    "TRACE_VERSION",
]
