"""repro.obs: tracing, metrics and profiling across engine, evaluator and simulator.

The package is a strict no-op when disabled: a single module-level
:data:`RECORDER` (never rebound) carries an ``enabled`` flag, and every
instrumented hot path pays exactly one attribute check while recording is
off.  Enable it for a block with :func:`recording`::

    from repro import obs

    with obs.recording(trace="run.jsonl") as rec:
        ...  # run experiments; spans and counters stream to run.jsonl
    snapshot = rec.counters_snapshot()  # deterministic metrics only

Metric names starting with ``rt.`` are runtime-dependent (wall times, cache
probe outcomes, pool utilization) and are excluded from deterministic
snapshots; everything else is a pure function of (scenario, params, seed)
and identical between serial and parallel execution.

Submodules
----------
``core``
    ``Counter`` / ``Histogram`` / ``Span`` / ``Recorder`` and the global
    :data:`RECORDER`.
``context``
    :class:`TraceContext` — the capsule the engine ships to pool workers so
    worker-side spans carry true cross-process parent linkage.
``sinks``
    ``MemorySink`` (tests) and ``JsonlSink`` (append-only trace file, with an
    opt-in per-event fsync knob for crash-safe traces).
``report``
    Trace loading/validation (including salvage of crashed-run traces),
    Chrome-trace export, per-span self-time and critical-path summaries
    (the ``repro stats`` subcommand).
``diff``
    Trace-vs-trace comparison: counter deltas, bucket-wise histogram
    comparison, span aggregates (the ``repro obs diff`` subcommand).
``bench``
    The benchmark observatory: a registry over ``benchmarks/bench_*.py``
    with history, baseline deltas and regression verdicts (the
    ``repro bench`` subcommand).
"""

from .context import TraceContext
from .core import (
    RECORDER,
    Counter,
    Histogram,
    Recorder,
    Span,
    is_volatile,
    recording,
)
from .sinks import SUPPORTED_TRACE_VERSIONS, JsonlSink, MemorySink, TRACE_VERSION

__all__ = [
    "RECORDER",
    "Counter",
    "Histogram",
    "Recorder",
    "Span",
    "TraceContext",
    "is_volatile",
    "recording",
    "JsonlSink",
    "MemorySink",
    "TRACE_VERSION",
    "SUPPORTED_TRACE_VERSIONS",
]
