"""Trace-context propagation across process boundaries.

A :class:`TraceContext` is the tiny, picklable capsule the engine ships to
pool workers alongside each job so that spans recorded *inside* the worker
carry true causal linkage back to the parent process:

``trace_id``
    Identity of the whole recording session (one per :func:`repro.obs.recording`
    block); every span of a trace carries it.
``parent_id``
    The parent-side span that logically encloses the worker's work — the
    worker's root span (``engine.job`` / ``engine.batch``) records it as its
    ``parent_id``, which is how the Perfetto export nests a worker subtree
    under the parent's timeline.
``ctx_id``
    A parent-allocated namespace for the worker's span ids.  Worker-side span
    ids are ``"<ctx_id>/<n>"``, which keeps ids globally unique across the
    pool without coordination (two workers can never share a ``ctx_id``, and
    a recycled pid cannot alias an id).

Workers buffer their span events instead of writing to sinks (they have
none: the parent owns the trace file) with timestamps relative to context
activation; the buffered spans travel back on the job result's ``metrics``
payload and the parent re-emits them onto its own clock.  See
:meth:`repro.obs.core.Recorder.activate_context`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

__all__ = ["TraceContext"]


@dataclass(frozen=True)
class TraceContext:
    """Causal linkage shipped from a parent recorder to a worker process."""

    trace_id: str
    parent_id: Optional[str] = None
    ctx_id: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (the dataclass itself also pickles fine)."""
        return {
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "ctx_id": self.ctx_id,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceContext":
        return cls(
            trace_id=str(data["trace_id"]),
            parent_id=data.get("parent_id"),
            ctx_id=str(data.get("ctx_id", "")),
        )
