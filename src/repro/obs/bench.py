"""The benchmark observatory: registry, history, baselines, regression gates.

The repo's perf evidence used to be four point-in-time ``BENCH_*.json``
snapshots produced by hand-run scripts.  This module turns them into a
longitudinal system behind the ``repro bench`` CLI:

* a **registry** (:data:`REGISTRY`) describing every ``benchmarks/bench_*.py``
  driver — where its report lives and which metrics are *gated*;
* a **runner** that imports a driver in-process and invokes its
  ``run(smoke, output)`` entry point (every driver already carries internal
  absolute-floor gates that make its exit code meaningful on any machine);
* **delta checks** comparing a fresh report's gated metrics against the
  committed baseline with per-gate regression thresholds;
* an append-only **history** (``BENCH_history.jsonl``: one JSON object per
  observatory run with git sha, host fingerprint, gated metrics, verdicts);
* a **markdown renderer** for ``docs/benchmarks.md`` showing the trajectory.

Gate semantics: a gate names a "/"-separated path into the report JSON and a
maximum tolerated fractional regression.  For higher-is-better metrics a
candidate fails when ``value < baseline * (1 - threshold)``; for
lower-is-better, when ``value > baseline * (1 + threshold)``.  Full-mode
reports are compared numerically; smoke-mode reports are *not* numerically
comparable to full baselines, so for them the check degrades to the driver's
internal gates plus baseline presence/schema validation.
"""

from __future__ import annotations

import importlib.util
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

__all__ = [
    "GateSpec",
    "BenchSpec",
    "REGISTRY",
    "repo_root",
    "extract_metric",
    "gated_metrics",
    "run_bench",
    "check_report",
    "append_history",
    "load_history",
    "render_benchmarks_md",
    "run_observatory",
]

DEFAULT_HISTORY = "BENCH_history.jsonl"


@dataclass(frozen=True)
class GateSpec:
    """One regression-gated metric inside a bench report."""

    #: "/"-separated path into the report JSON, e.g. ``annealing/rakhmatov/speedup``.
    path: str
    #: Direction of goodness; gates compare candidate vs baseline accordingly.
    higher_is_better: bool = True
    #: Maximum tolerated fractional regression vs the committed baseline.
    threshold: float = 0.3


@dataclass(frozen=True)
class BenchSpec:
    """A registered benchmark driver."""

    name: str
    script: str
    report: str
    description: str
    gates: Tuple[GateSpec, ...]


#: Thresholds are deliberately loose for absolute-rate metrics (machine
#: dependent) and tighter for ratio metrics (speedups, overhead factors),
#: which mostly cancel host speed out.
REGISTRY: Tuple[BenchSpec, ...] = (
    BenchSpec(
        name="cost",
        script="bench_cost.py",
        report="BENCH_cost.json",
        description="cost-evaluation stack: eval rates + annealing/refine speedups",
        gates=(
            GateSpec("annealing/rakhmatov/speedup", threshold=0.4),
            GateSpec("refine/speedup", threshold=0.5),
        ),
    ),
    BenchSpec(
        name="sim",
        script="bench_sim.py",
        report="BENCH_sim.json",
        description="event-driven simulator throughput + batched Monte Carlo path",
        gates=(
            GateSpec("events/deadline-slack/events_per_sec", threshold=0.5),
            GateSpec("batch/deadline-slack/replications_per_sec", threshold=0.5),
        ),
    ),
    BenchSpec(
        name="obs",
        script="bench_obs.py",
        report="BENCH_obs.json",
        description="instrumentation coverage + disabled-path overhead factor",
        gates=(
            GateSpec("overhead/overhead_factor", higher_is_better=False, threshold=0.15),
        ),
    ),
    BenchSpec(
        name="graph",
        script="bench_graph.py",
        report="BENCH_graph.json",
        description="task-graph hot paths + optimization conformance",
        gates=(
            GateSpec("hot_paths/topological_order/speedup", threshold=0.5),
            GateSpec("hot_paths/edges/speedup", threshold=0.5),
        ),
    ),
)


def get_bench(name: str) -> BenchSpec:
    for spec in REGISTRY:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown bench {name!r}; known: {', '.join(s.name for s in REGISTRY)}")


def repo_root() -> Path:
    """Repository root (three levels above ``src/repro/obs``)."""
    return Path(__file__).resolve().parents[3]


def benchmarks_dir() -> Path:
    return repo_root() / "benchmarks"


def extract_metric(report: Mapping[str, Any], path: str) -> Optional[float]:
    """Resolve a "/"-separated gate path; None when any hop is missing.

    Integer components index into lists, everything else into dicts.
    """
    node: Any = report
    for part in path.split("/"):
        if isinstance(node, list):
            try:
                node = node[int(part)]
            except (ValueError, IndexError):
                return None
        elif isinstance(node, Mapping):
            if part not in node:
                return None
            node = node[part]
        else:
            return None
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def gated_metrics(spec: BenchSpec, report: Mapping[str, Any]) -> Dict[str, Optional[float]]:
    return {gate.path: extract_metric(report, gate.path) for gate in spec.gates}


def run_bench(spec: BenchSpec, smoke: bool, output: Union[str, Path]) -> int:
    """Import the driver in-process and run it; returns its exit code.

    The benchmarks directory is pushed onto ``sys.path`` for the import so
    drivers can share helpers (``benchmarks/_workloads.py``).
    """
    script = benchmarks_dir() / spec.script
    module_name = f"_repro_bench_{spec.name}"
    loader_spec = importlib.util.spec_from_file_location(module_name, script)
    if loader_spec is None or loader_spec.loader is None:
        raise FileNotFoundError(f"cannot load benchmark driver {script}")
    module = importlib.util.module_from_spec(loader_spec)
    bench_path = str(benchmarks_dir())
    sys.path.insert(0, bench_path)
    try:
        sys.modules[module_name] = module
        loader_spec.loader.exec_module(module)
        return int(module.run(smoke=smoke, output=str(output)))
    finally:
        sys.modules.pop(module_name, None)
        if sys.path and sys.path[0] == bench_path:
            sys.path.pop(0)


# ----------------------------------------------------------------------
# regression checks
# ----------------------------------------------------------------------

def _load_report(path: Path) -> Optional[Dict[str, Any]]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def check_report(
    spec: BenchSpec,
    report_path: Union[str, Path],
    baseline_path: Union[str, Path],
) -> Dict[str, Any]:
    """Gate a report against the committed baseline.

    Returns ``{"bench", "status", "problems", "deltas"}`` where status is
    ``pass`` / ``regression`` / ``error``.  Smoke-mode reports skip numeric
    deltas (see module docstring) but still require every gated path to be
    present in the baseline, so a gate can never silently rot.
    """
    verdict: Dict[str, Any] = {
        "bench": spec.name,
        "status": "pass",
        "problems": [],
        "deltas": [],
    }
    report = _load_report(Path(report_path))
    baseline = _load_report(Path(baseline_path))
    if report is None:
        verdict["status"] = "error"
        verdict["problems"].append(f"report {report_path} missing or unreadable")
        return verdict
    if baseline is None:
        verdict["status"] = "error"
        verdict["problems"].append(f"baseline {baseline_path} missing or unreadable")
        return verdict

    smoke = report.get("mode") == "smoke"
    for gate in spec.gates:
        base_value = extract_metric(baseline, gate.path)
        if base_value is None:
            verdict["status"] = "error"
            verdict["problems"].append(
                f"gated metric {gate.path!r} absent from baseline {baseline_path}"
            )
            continue
        if smoke:
            continue
        value = extract_metric(report, gate.path)
        if value is None:
            verdict["status"] = "error"
            verdict["problems"].append(
                f"gated metric {gate.path!r} absent from report {report_path}"
            )
            continue
        if gate.higher_is_better:
            change = (value - base_value) / base_value if base_value else 0.0
            regressed = value < base_value * (1.0 - gate.threshold)
        else:
            change = (base_value - value) / base_value if base_value else 0.0
            regressed = value > base_value * (1.0 + gate.threshold)
        delta = {
            "path": gate.path,
            "value": value,
            "baseline": base_value,
            "change_frac": change,  # positive = improvement, in the gate's direction
            "threshold": gate.threshold,
            "higher_is_better": gate.higher_is_better,
            "regressed": regressed,
        }
        verdict["deltas"].append(delta)
        if regressed:
            if verdict["status"] == "pass":
                verdict["status"] = "regression"
            verdict["problems"].append(
                f"{gate.path}: {value:.4g} vs baseline {base_value:.4g} "
                f"({change:+.1%} in the good direction, tolerance -{gate.threshold:.0%})"
            )
    if smoke and verdict["status"] == "pass":
        verdict["problems"].append(
            "smoke mode: numeric deltas skipped, driver-internal gates applied"
        )
    return verdict


# ----------------------------------------------------------------------
# history + environment fingerprint
# ----------------------------------------------------------------------

def git_sha(root: Optional[Path] = None) -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=str(root or repo_root()),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def env_meta() -> Dict[str, Any]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "cpus": os.cpu_count(),
    }


def append_history(path: Union[str, Path], entry: Mapping[str, Any]) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(dict(entry), sort_keys=True) + "\n")


def load_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    entries: List[Dict[str, Any]] = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError:
        return entries
    with handle:
        for line in handle:
            line = line.strip()
            if line:
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # torn tail of a crashed append; keep the rest
    return entries


# ----------------------------------------------------------------------
# docs/benchmarks.md rendering
# ----------------------------------------------------------------------

def _fmt_metric(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if value >= 1000:
        return f"{value:,.0f}"
    return f"{value:.3g}"


def render_benchmarks_md(history: Iterable[Mapping[str, Any]]) -> str:
    """Render the benchmark trajectory as the ``docs/benchmarks.md`` page."""
    entries = list(history)
    lines = [
        "# Benchmark trajectory",
        "",
        "Longitudinal record of the `repro bench` observatory "
        "(`BENCH_history.jsonl`).  Committed `BENCH_*.json` files are the "
        "regression baselines; `repro bench --check` gates fresh runs against "
        "them with the thresholds listed below.  Regenerate this page with "
        "`repro bench --render-docs`.",
        "",
        "## Gated metrics",
        "",
        "| bench | metric | direction | tolerance |",
        "| --- | --- | --- | --- |",
    ]
    for spec in REGISTRY:
        for gate in spec.gates:
            direction = "higher" if gate.higher_is_better else "lower"
            lines.append(
                f"| {spec.name} | `{gate.path}` | {direction} is better "
                f"| -{gate.threshold:.0%} |"
            )
    for spec in REGISTRY:
        bench_entries = [e for e in entries if e.get("bench") == spec.name]
        lines += ["", f"## {spec.name} — {spec.description}", ""]
        if not bench_entries:
            lines.append("_No observatory runs recorded yet._")
            continue
        gate_paths = [gate.path for gate in spec.gates]
        header = "| date (UTC) | git | mode | verdict | " + " | ".join(
            f"`{p}`" for p in gate_paths
        ) + " |"
        lines.append(header)
        lines.append("| --- | --- | --- | --- | " + " | ".join("---" for _ in gate_paths) + " |")
        for entry in bench_entries:
            stamp = time.strftime(
                "%Y-%m-%d %H:%M", time.gmtime(entry.get("started_unix", 0))
            )
            metrics = entry.get("metrics", {})
            cells = " | ".join(_fmt_metric(metrics.get(p)) for p in gate_paths)
            lines.append(
                f"| {stamp} | {entry.get('git_sha') or '—'} | {entry.get('mode', '?')} "
                f"| {entry.get('verdict', '?')} | {cells} |"
            )
    lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the observatory driver (powers `repro bench`)
# ----------------------------------------------------------------------

def run_observatory(
    names: Optional[Iterable[str]] = None,
    smoke: bool = False,
    run: bool = False,
    check: bool = False,
    history: Optional[Union[str, Path]] = None,
    reports_dir: Optional[Union[str, Path]] = None,
    update_baselines: bool = False,
    render_docs: Optional[Union[str, Path]] = None,
    log=print,
) -> int:
    """Run/check registered benches; returns a process exit code.

    ``reports_dir`` is where fresh reports are written (``--run``) and read
    from (``--check``).  It defaults to the repo root — the committed
    baselines — so a bare ``--check`` is a self-check that exits 0, and
    ``--run`` without ``update_baselines`` redirects to ``<root>/reports`` to
    avoid clobbering the baselines by accident.
    """
    root = repo_root()
    specs = [get_bench(name) for name in names] if names else list(REGISTRY)
    if reports_dir is None:
        reports_path = root if (not run or update_baselines) else root / "reports"
    else:
        reports_path = Path(reports_dir)
    history_path = Path(history) if history else root / DEFAULT_HISTORY

    exit_code = 0
    verdicts: List[Dict[str, Any]] = []
    for spec in specs:
        report_path = reports_path / spec.report
        baseline_path = root / spec.report
        mode = "smoke" if smoke else "full"
        driver_rc = 0
        started = time.time()
        if run:
            log(f"== bench {spec.name} ({mode}) -> {report_path}")
            reports_path.mkdir(parents=True, exist_ok=True)
            driver_rc = run_bench(spec, smoke=smoke, output=report_path)
            if driver_rc != 0:
                exit_code = 1
                log(f"bench {spec.name}: driver-internal gate FAILED (exit {driver_rc})")
        verdict: Optional[Dict[str, Any]] = None
        if check:
            verdict = check_report(spec, report_path, baseline_path)
            verdicts.append(verdict)
            status = verdict["status"]
            if status != "pass":
                exit_code = 1
            log(f"bench {spec.name}: check {status.upper()}")
            for problem in verdict["problems"]:
                log(f"  {problem}")
            for delta in verdict["deltas"]:
                marker = "REGRESSED" if delta["regressed"] else "ok"
                log(
                    f"  {delta['path']}: {delta['value']:.4g} "
                    f"(baseline {delta['baseline']:.4g}, {delta['change_frac']:+.1%}) {marker}"
                )
        if run:
            report = _load_report(report_path)
            overall = "fail" if driver_rc else (verdict or {}).get("status", "pass")
            entry = {
                "bench": spec.name,
                "mode": mode,
                "started_unix": started,
                "wall_s": time.time() - started,
                "git_sha": git_sha(root),
                "env": env_meta(),
                "driver_exit": driver_rc,
                "verdict": overall,
                "metrics": gated_metrics(spec, report) if report else {},
                "deltas": (verdict or {}).get("deltas", []),
            }
            append_history(history_path, entry)
            log(f"bench {spec.name}: appended to {history_path}")

    if render_docs:
        docs_path = Path(render_docs)
        docs_path.parent.mkdir(parents=True, exist_ok=True)
        docs_path.write_text(render_benchmarks_md(load_history(history_path)), encoding="utf-8")
        log(f"rendered {docs_path}")
    return exit_code
