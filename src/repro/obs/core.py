"""Instrumentation core: counters, histograms, spans, and the global recorder.

The module exposes a single :data:`RECORDER` instance that is **never
rebound** -- instrumented modules import the object once (``from ..obs import
RECORDER``) and guard hot paths with a single attribute check
(``RECORDER.enabled``).  When disabled (the default) every recording method is
a no-op, so the instrumented code paths pay one boolean test and nothing else.

Volatility convention
---------------------
Counter, histogram, and gauge *names* encode whether the metric is a
deterministic function of (scenario, params, seed) or depends on wall-clock /
process placement: names starting with ``rt.`` (runtime) are **volatile** and
are excluded from deterministic snapshots.  Everything else must be identical
between serial and parallel execution of the same jobs -- the test-suite
enforces this.

>>> from repro.obs import RECORDER, recording
>>> RECORDER.count("eval.apply")  # disabled: silently dropped
>>> with recording() as rec:
...     rec.count("eval.apply")
...     rec.count("eval.apply", 2)
...     rec.observe("eval.recompute_window", 5)
>>> rec.counters_snapshot()["counters"]["eval.apply"]
3
"""

from __future__ import annotations

import math
import os
import time
from typing import Any, Dict, List, Mapping, Optional

__all__ = [
    "Counter",
    "Histogram",
    "Recorder",
    "Span",
    "RECORDER",
    "recording",
    "is_volatile",
]

#: Prefix marking runtime-dependent (wall-clock / process-placement) metrics.
VOLATILE_PREFIX = "rt."


def is_volatile(name: str) -> bool:
    """True when ``name`` denotes a runtime-dependent (non-deterministic) metric."""
    return name.startswith(VOLATILE_PREFIX)


def _metric_key(name: str, label: Optional[str]) -> str:
    return name if label is None else f"{name}[{label}]"


def _bucket_bound(value: float) -> float:
    """Smallest power of two >= ``value`` (0.0 for non-positive values)."""
    if value <= 0.0:
        return 0.0
    return 2.0 ** math.ceil(math.log2(value))


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Histogram:
    """A value distribution with power-of-two buckets.

    ``count``/``total``/``buckets`` merge exactly across processes (the
    parallel executor ships per-job deltas back through the pool); ``min`` and
    ``max`` are process-local conveniences and are excluded from snapshots.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[float, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bound = _bucket_bound(value)
        self.buckets[bound] = self.buckets.get(bound, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def state(self) -> Dict[str, Any]:
        """Mergeable snapshot (JSON-safe; excludes process-local min/max)."""
        return {
            "count": self.count,
            "total": self.total,
            "buckets": {str(bound): n for bound, n in sorted(self.buckets.items())},
        }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        self.count += int(state.get("count", 0))
        self.total += float(state.get("total", 0.0))
        for key, n in state.get("buckets", {}).items():
            bound = float(key)
            self.buckets[bound] = self.buckets.get(bound, 0) + int(n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.4g})"


def _delta_histogram_state(after: Mapping[str, Any], before: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    if before is None:
        return dict(after, buckets=dict(after["buckets"]))
    before_buckets = before.get("buckets", {})
    buckets = {
        key: n - before_buckets.get(key, 0)
        for key, n in after["buckets"].items()
        if n - before_buckets.get(key, 0)
    }
    return {
        "count": after["count"] - before.get("count", 0),
        "total": after["total"] - before.get("total", 0.0),
        "buckets": buckets,
    }


class Span:
    """A timed region; on exit it feeds a volatile timer and emits an event.

    Nesting is expressed through timestamps: spans opened while another span
    is active carry ``ts`` ranges contained in the parent's, which is how the
    Chrome-trace viewer reconstructs the hierarchy.
    """

    __slots__ = ("_recorder", "name", "label", "_start")

    def __init__(self, recorder: "Recorder", name: str, label: Optional[str]) -> None:
        self._recorder = recorder
        self.name = name
        self.label = label
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        rec = self._recorder
        if rec.enabled:
            rec.record_span(self.name, self.label, self._start, time.perf_counter() - self._start)


class _NullSpan:
    """Shared no-op span returned while the recorder is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Recorder:
    """Process-aware metric registry with pluggable event sinks.

    All recording methods are no-ops while :attr:`enabled` is False, so an
    always-present recorder costs instrumented code one attribute check.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, float] = {}
        self._sinks: List[Any] = []
        self._t0 = time.perf_counter()
        self.pid = os.getpid()

    # -- lifecycle -----------------------------------------------------

    def reset(self) -> None:
        """Drop all metrics and sinks; re-anchor the span clock."""
        self._counters.clear()
        self._histograms.clear()
        self._gauges.clear()
        self._sinks = []
        self._t0 = time.perf_counter()
        self.pid = os.getpid()

    def add_sink(self, sink: Any) -> None:
        self._sinks.append(sink)

    def remove_sink(self, sink: Any) -> None:
        self._sinks = [s for s in self._sinks if s is not sink]

    @property
    def sinks(self) -> List[Any]:
        return list(self._sinks)

    # -- recording -----------------------------------------------------

    def counter(self, name: str, label: Optional[str] = None) -> Counter:
        key = _metric_key(name, label)
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter(key)
        return counter

    def count(self, name: str, n: int = 1, label: Optional[str] = None) -> None:
        if self.enabled:
            self.counter(name, label).inc(n)

    def histogram(self, name: str, label: Optional[str] = None) -> Histogram:
        key = _metric_key(name, label)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram(key)
        return hist

    def observe(self, name: str, value: float, label: Optional[str] = None) -> None:
        if self.enabled:
            self.histogram(name, label).observe(value)

    def gauge(self, name: str, value: float, label: Optional[str] = None) -> None:
        if self.enabled:
            key = _metric_key(name, label)
            self._gauges[key] = value
            self._emit({"type": "gauge", "name": key, "value": value, "pid": self.pid})

    def span(self, name: str, label: Optional[str] = None):
        """Context manager timing a region; no-op while disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, label)

    def record_span(self, name: str, label: Optional[str], start: float, duration: float) -> None:
        """Record a completed span (used by Span.__exit__ and pool synthesis)."""
        if not self.enabled:
            return
        self.histogram(f"{VOLATILE_PREFIX}span.{name}").observe(duration)
        self._emit(
            {
                "type": "span",
                "name": name,
                "label": label,
                "ts": start - self._t0,
                "dur": duration,
                "pid": self.pid,
            }
        )

    def event(self, payload: Mapping[str, Any]) -> None:
        """Forward an arbitrary event dict to the sinks."""
        if self.enabled:
            self._emit(dict(payload))

    def _emit(self, event: Dict[str, Any]) -> None:
        for sink in self._sinks:
            sink.write(event)

    # -- snapshots, deltas, merging ------------------------------------

    def counters_snapshot(self, include_volatile: bool = False) -> Dict[str, Any]:
        """Sorted, JSON-safe snapshot of counters and histogram states.

        With ``include_volatile=False`` (the default) only deterministic
        metrics are returned -- the object compared bitwise by the
        determinism tests.
        """
        counters = {
            key: counter.value
            for key, counter in sorted(self._counters.items())
            if include_volatile or not is_volatile(key)
        }
        histograms = {
            key: hist.state()
            for key, hist in sorted(self._histograms.items())
            if include_volatile or not is_volatile(key)
        }
        return {"counters": counters, "histograms": histograms}

    def metrics_delta(self, before: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
        """Difference between the current state and a prior full snapshot.

        Used by job runners to ship per-job metrics across the process pool;
        includes volatile metrics (the snapshot layer filters later).
        """
        after = self.counters_snapshot(include_volatile=True)
        before_counters = before.get("counters", {}) if before else {}
        before_histograms = before.get("histograms", {}) if before else {}
        counters = {
            key: value - before_counters.get(key, 0)
            for key, value in after["counters"].items()
            if value - before_counters.get(key, 0)
        }
        histograms = {
            key: state
            for key, state in (
                (key, _delta_histogram_state(state, before_histograms.get(key)))
                for key, state in after["histograms"].items()
            )
            if state["count"]
        }
        return {"counters": counters, "histograms": histograms}

    def merge_metrics(self, metrics: Optional[Mapping[str, Any]]) -> None:
        """Fold a :meth:`metrics_delta` payload from another process back in."""
        if not self.enabled or not metrics:
            return
        for key, value in metrics.get("counters", {}).items():
            self._counters.setdefault(key, Counter(key)).inc(value)
        for key, state in metrics.get("histograms", {}).items():
            self._histograms.setdefault(key, Histogram(key)).merge_state(state)

    # -- reporting -----------------------------------------------------

    @property
    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    @property
    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    def summary_lines(self) -> List[str]:
        """Human-readable metric summary (used by ``--metrics``)."""
        from .report import recorder_summary_lines

        return recorder_summary_lines(self)


#: The process-wide recorder.  Never rebound -- toggle ``RECORDER.enabled``.
RECORDER = Recorder()


class recording:
    """Context manager enabling :data:`RECORDER` for a block.

    Resets the recorder on entry (fresh counters, fresh span clock), attaches
    an optional JSONL trace sink, and on exit flushes counter/histogram
    footers to the sink and disables recording again.
    """

    def __init__(self, trace: Optional[str] = None) -> None:
        self._trace = trace
        self._sink = None

    def __enter__(self) -> Recorder:
        RECORDER.reset()
        if self._trace is not None:
            from .sinks import JsonlSink

            self._sink = JsonlSink(self._trace)
            RECORDER.add_sink(self._sink)
        RECORDER.enabled = True
        return RECORDER

    def __exit__(self, *exc_info: object) -> None:
        try:
            if self._sink is not None:
                self._sink.write_footer(RECORDER)
                RECORDER.remove_sink(self._sink)
                self._sink.close()
                self._sink = None
        finally:
            RECORDER.enabled = False
