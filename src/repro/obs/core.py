"""Instrumentation core: counters, histograms, spans, and the global recorder.

The module exposes a single :data:`RECORDER` instance that is **never
rebound** -- instrumented modules import the object once (``from ..obs import
RECORDER``) and guard hot paths with a single attribute check
(``RECORDER.enabled``).  When disabled (the default) every recording method is
a no-op, so the instrumented code paths pay one boolean test and nothing else.

Volatility convention
---------------------
Counter, histogram, and gauge *names* encode whether the metric is a
deterministic function of (scenario, params, seed) or depends on wall-clock /
process placement: names starting with ``rt.`` (runtime) are **volatile** and
are excluded from deterministic snapshots.  Everything else must be identical
between serial and parallel execution of the same jobs -- the test-suite
enforces this.

>>> from repro.obs import RECORDER, recording
>>> RECORDER.count("eval.apply")  # disabled: silently dropped
>>> with recording() as rec:
...     rec.count("eval.apply")
...     rec.count("eval.apply", 2)
...     rec.observe("eval.recompute_window", 5)
>>> rec.counters_snapshot()["counters"]["eval.apply"]
3
"""

from __future__ import annotations

import math
import os
import time
import uuid
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Histogram",
    "Recorder",
    "Span",
    "RECORDER",
    "recording",
    "is_volatile",
]

#: Prefix marking runtime-dependent (wall-clock / process-placement) metrics.
VOLATILE_PREFIX = "rt."


def is_volatile(name: str) -> bool:
    """True when ``name`` denotes a runtime-dependent (non-deterministic) metric."""
    return name.startswith(VOLATILE_PREFIX)


def _metric_key(name: str, label: Optional[str]) -> str:
    return name if label is None else f"{name}[{label}]"


def _bucket_bound(value: float) -> float:
    """Smallest power of two >= ``value`` (0.0 for non-positive values)."""
    if value <= 0.0:
        return 0.0
    return 2.0 ** math.ceil(math.log2(value))


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Histogram:
    """A value distribution with power-of-two buckets.

    ``count``/``total``/``buckets`` merge exactly across processes (the
    parallel executor ships per-job deltas back through the pool); ``min`` and
    ``max`` are process-local conveniences and are excluded from snapshots.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[float, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bound = _bucket_bound(value)
        self.buckets[bound] = self.buckets.get(bound, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def state(self) -> Dict[str, Any]:
        """Mergeable snapshot (JSON-safe; excludes process-local min/max)."""
        return {
            "count": self.count,
            "total": self.total,
            "buckets": {str(bound): n for bound, n in sorted(self.buckets.items())},
        }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        self.count += int(state.get("count", 0))
        self.total += float(state.get("total", 0.0))
        for key, n in state.get("buckets", {}).items():
            bound = float(key)
            self.buckets[bound] = self.buckets.get(bound, 0) + int(n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.4g})"


def _delta_histogram_state(after: Mapping[str, Any], before: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    if before is None:
        return dict(after, buckets=dict(after["buckets"]))
    before_buckets = before.get("buckets", {})
    buckets = {
        key: n - before_buckets.get(key, 0)
        for key, n in after["buckets"].items()
        if n - before_buckets.get(key, 0)
    }
    return {
        "count": after["count"] - before.get("count", 0),
        "total": after["total"] - before.get("total", 0.0),
        "buckets": buckets,
    }


class Span:
    """A timed region; on exit it feeds a volatile timer and emits an event.

    Every span carries a recorder-allocated ``span_id`` and the id of the
    span that was active when it opened (``parent_id``), so the event stream
    encodes the genuine call tree — including across process boundaries,
    where a worker's root span parents onto the id shipped in via
    :class:`~repro.obs.context.TraceContext`.  Timestamp containment still
    holds (children open and close inside their parent), but the viewer no
    longer has to infer the hierarchy from it.
    """

    __slots__ = ("_recorder", "name", "label", "_start", "span_id", "parent_id")

    def __init__(self, recorder: "Recorder", name: str, label: Optional[str]) -> None:
        self._recorder = recorder
        self.name = name
        self.label = label
        self._start = 0.0
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None

    def __enter__(self) -> "Span":
        rec = self._recorder
        if rec.enabled:
            self.parent_id = rec.current_span_id()
            self.span_id = rec.new_span_id()
            rec._span_stack.append(self.span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        rec = self._recorder
        if rec.enabled:
            if self.span_id is not None and rec._span_stack and rec._span_stack[-1] == self.span_id:
                rec._span_stack.pop()
            rec.record_span(
                self.name,
                self.label,
                self._start,
                time.perf_counter() - self._start,
                span_id=self.span_id,
                parent_id=self.parent_id,
            )


class _NullSpan:
    """Shared no-op span returned while the recorder is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Recorder:
    """Process-aware metric registry with pluggable event sinks.

    All recording methods are no-ops while :attr:`enabled` is False, so an
    always-present recorder costs instrumented code one attribute check.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, float] = {}
        self._sinks: List[Any] = []
        self._t0 = time.perf_counter()
        self.pid = os.getpid()
        self.trace_id = uuid.uuid4().hex[:16]
        self._span_stack: List[str] = []
        self._span_seq = 0
        self._ctx_prefix: Optional[str] = None
        self._ctx_t0 = 0.0
        self._span_buffer: Optional[List[Dict[str, Any]]] = None

    # -- lifecycle -----------------------------------------------------

    def reset(self) -> None:
        """Drop all metrics and sinks; re-anchor the span clock."""
        self._counters.clear()
        self._histograms.clear()
        self._gauges.clear()
        self._sinks = []
        self._t0 = time.perf_counter()
        self.pid = os.getpid()
        self.trace_id = uuid.uuid4().hex[:16]
        self._span_stack = []
        self._span_seq = 0
        self._ctx_prefix = None
        self._ctx_t0 = 0.0
        self._span_buffer = None

    def add_sink(self, sink: Any) -> None:
        self._sinks.append(sink)

    def remove_sink(self, sink: Any) -> None:
        self._sinks = [s for s in self._sinks if s is not sink]

    @property
    def sinks(self) -> List[Any]:
        return list(self._sinks)

    # -- recording -----------------------------------------------------

    def counter(self, name: str, label: Optional[str] = None) -> Counter:
        key = _metric_key(name, label)
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter(key)
        return counter

    def count(self, name: str, n: int = 1, label: Optional[str] = None) -> None:
        if self.enabled:
            self.counter(name, label).inc(n)

    def histogram(self, name: str, label: Optional[str] = None) -> Histogram:
        key = _metric_key(name, label)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram(key)
        return hist

    def observe(self, name: str, value: float, label: Optional[str] = None) -> None:
        if self.enabled:
            self.histogram(name, label).observe(value)

    def gauge(self, name: str, value: float, label: Optional[str] = None) -> None:
        if self.enabled:
            key = _metric_key(name, label)
            self._gauges[key] = value
            self._emit({"type": "gauge", "name": key, "value": value, "pid": self.pid})

    def span(self, name: str, label: Optional[str] = None):
        """Context manager timing a region; no-op while disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, label)

    # -- span identity and cross-process context -----------------------

    def new_span_id(self) -> str:
        """Allocate a span id, unique across the whole trace.

        Inside an activated :class:`~repro.obs.context.TraceContext` the ids
        live in the parent-allocated ``ctx_id`` namespace; otherwise they are
        namespaced by pid, which is unique among concurrently live processes.
        """
        self._span_seq += 1
        prefix = self._ctx_prefix if self._ctx_prefix is not None else f"{self.pid:x}"
        return f"{prefix}/{self._span_seq:x}"

    def current_span_id(self) -> Optional[str]:
        """Id of the innermost active span (the parent of a span opened now)."""
        return self._span_stack[-1] if self._span_stack else None

    def activate_context(self, ctx) -> None:
        """Enter a shipped :class:`~repro.obs.context.TraceContext` (worker side).

        Adopts the parent's ``trace_id``, seeds the active-span stack with the
        parent-side enclosing span (so the first span opened here — the job's
        root — parents onto it), switches span-id allocation into the
        context's namespace, and starts *buffering* span events instead of
        emitting them: workers have no sinks, so buffered spans travel back on
        the job result and the parent re-emits them (see
        :meth:`emit_remote_spans`).  Buffered timestamps are relative to this
        activation, which the parent maps onto its own clock.
        """
        if not self.enabled:
            return
        self.trace_id = ctx.trace_id
        self._span_stack = [ctx.parent_id] if ctx.parent_id else []
        self._ctx_prefix = ctx.ctx_id or None
        self._span_seq = 0
        self._span_buffer = []
        self._ctx_t0 = time.perf_counter()

    def deactivate_context(self) -> Tuple[List[Dict[str, Any]], float]:
        """Leave the active context; returns ``(buffered spans, wall seconds)``.

        The wall time covers activation to deactivation and therefore bounds
        every buffered span's ``ts + dur`` — the parent uses it to anchor the
        remap of worker timestamps onto its own clock.
        """
        spans = self._span_buffer or []
        elapsed = time.perf_counter() - self._ctx_t0 if self._span_buffer is not None else 0.0
        self._span_buffer = None
        self._span_stack = []
        self._ctx_prefix = None
        return spans, elapsed

    def emit_remote_spans(self, spans: List[Dict[str, Any]], anchor: float) -> None:
        """Re-emit spans buffered in another process onto this trace.

        ``anchor`` is the absolute ``time.perf_counter()`` moment (on *this*
        process's clock) at which the remote context's t=0 is taken to fall;
        each buffered event's relative ``ts`` is shifted onto the span clock
        accordingly.  Counters were already merged through
        :meth:`merge_metrics` (including the ``rt.span.*`` timers the worker
        observed), so this only forwards the events to the sinks — no double
        counting.
        """
        if not self.enabled:
            return
        offset = anchor - self._t0
        for event in spans:
            shifted = dict(event)
            shifted["ts"] = event["ts"] + offset
            self._emit(shifted)

    def record_span(
        self,
        name: str,
        label: Optional[str],
        start: float,
        duration: float,
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ) -> None:
        """Record a completed span (used by Span.__exit__ and pool synthesis).

        ``start`` is an absolute ``time.perf_counter()`` value; the emitted
        event carries it relative to the span clock (recorder start, or
        context activation while a context is active).  Callers that already
        hold ids (``Span``) pass them; synthesized spans — e.g. the queue
        waits the parallel executor records — get a fresh id and parent onto
        the currently active span.
        """
        if not self.enabled:
            return
        self.histogram(f"{VOLATILE_PREFIX}span.{name}").observe(duration)
        if span_id is None:
            span_id = self.new_span_id()
        if parent_id is None:
            parent_id = self.current_span_id()
        event = {
            "type": "span",
            "name": name,
            "label": label,
            "dur": duration,
            "pid": self.pid,
            "span_id": span_id,
            "parent_id": parent_id,
            "trace_id": self.trace_id,
        }
        if self._span_buffer is not None:
            event["ts"] = start - self._ctx_t0
            self._span_buffer.append(event)
        else:
            event["ts"] = start - self._t0
            self._emit(event)

    def event(self, payload: Mapping[str, Any]) -> None:
        """Forward an arbitrary event dict to the sinks."""
        if self.enabled:
            self._emit(dict(payload))

    def _emit(self, event: Dict[str, Any]) -> None:
        for sink in self._sinks:
            sink.write(event)

    # -- snapshots, deltas, merging ------------------------------------

    def counters_snapshot(self, include_volatile: bool = False) -> Dict[str, Any]:
        """Sorted, JSON-safe snapshot of counters and histogram states.

        With ``include_volatile=False`` (the default) only deterministic
        metrics are returned -- the object compared bitwise by the
        determinism tests.
        """
        counters = {
            key: counter.value
            for key, counter in sorted(self._counters.items())
            if include_volatile or not is_volatile(key)
        }
        histograms = {
            key: hist.state()
            for key, hist in sorted(self._histograms.items())
            if include_volatile or not is_volatile(key)
        }
        return {"counters": counters, "histograms": histograms}

    def metrics_delta(self, before: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
        """Difference between the current state and a prior full snapshot.

        Used by job runners to ship per-job metrics across the process pool;
        includes volatile metrics (the snapshot layer filters later).
        """
        after = self.counters_snapshot(include_volatile=True)
        before_counters = before.get("counters", {}) if before else {}
        before_histograms = before.get("histograms", {}) if before else {}
        counters = {
            key: value - before_counters.get(key, 0)
            for key, value in after["counters"].items()
            if value - before_counters.get(key, 0)
        }
        histograms = {
            key: state
            for key, state in (
                (key, _delta_histogram_state(state, before_histograms.get(key)))
                for key, state in after["histograms"].items()
            )
            if state["count"]
        }
        return {"counters": counters, "histograms": histograms}

    def merge_metrics(self, metrics: Optional[Mapping[str, Any]]) -> None:
        """Fold a :meth:`metrics_delta` payload from another process back in."""
        if not self.enabled or not metrics:
            return
        for key, value in metrics.get("counters", {}).items():
            self._counters.setdefault(key, Counter(key)).inc(value)
        for key, state in metrics.get("histograms", {}).items():
            self._histograms.setdefault(key, Histogram(key)).merge_state(state)

    # -- reporting -----------------------------------------------------

    @property
    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    @property
    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    def summary_lines(self) -> List[str]:
        """Human-readable metric summary (used by ``--metrics``)."""
        from .report import recorder_summary_lines

        return recorder_summary_lines(self)


#: The process-wide recorder.  Never rebound -- toggle ``RECORDER.enabled``.
RECORDER = Recorder()


class recording:
    """Context manager enabling :data:`RECORDER` for a block.

    Resets the recorder on entry (fresh counters, fresh span clock, fresh
    ``trace_id``), attaches an optional JSONL trace sink, and on exit flushes
    counter/histogram footers to the sink and disables recording again.
    ``fsync=True`` makes the sink flush every event to disk as it is written
    (crash-safe traces; see :class:`repro.obs.sinks.JsonlSink`).
    """

    def __init__(self, trace: Optional[str] = None, fsync: bool = False) -> None:
        self._trace = trace
        self._fsync = fsync
        self._sink = None

    def __enter__(self) -> Recorder:
        RECORDER.reset()
        if self._trace is not None:
            from .sinks import JsonlSink

            self._sink = JsonlSink(self._trace, fsync=self._fsync, trace_id=RECORDER.trace_id)
            RECORDER.add_sink(self._sink)
        RECORDER.enabled = True
        return RECORDER

    def __exit__(self, *exc_info: object) -> None:
        try:
            if self._sink is not None:
                self._sink.write_footer(RECORDER)
                RECORDER.remove_sink(self._sink)
                self._sink.close()
                self._sink = None
        finally:
            RECORDER.enabled = False
