"""Trace-vs-trace comparison: the ``repro obs diff A B`` subcommand.

Turns two JSONL traces into a structured delta so overhead and determinism
claims become one-command checks:

* **Counter deltas** — per-counter ``(a, b, b-a)``, split into deterministic
  and volatile (``rt.``) groups.  Any deterministic counter that differs is
  *drift*: the two runs did different logical work, which for
  serial-vs-parallel pairs of the same scenario is a determinism bug.
* **Histogram comparison** — bucket-wise count deltas plus count/total/mean
  shifts per distribution, so a latency regression shows up as mass moving to
  higher power-of-two buckets rather than as a single blurred mean.
* **Span aggregates** — per-span-name count and total-duration deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .core import is_volatile
from .report import TraceData

__all__ = ["TraceDiff", "diff_traces", "diff_summary_lines"]


@dataclass
class TraceDiff:
    """Structured difference between two traces (``a`` = baseline, ``b`` = candidate)."""

    a_label: str = "a"
    b_label: str = "b"
    #: name -> (a, b) for every counter present in either trace.
    counters: Dict[str, Any] = field(default_factory=dict)
    #: deterministic counters whose values differ — empty means no drift.
    drift: List[str] = field(default_factory=list)
    #: name -> {"a": state|None, "b": state|None, "bucket_deltas": {bound: b-a}}
    histograms: Dict[str, Any] = field(default_factory=dict)
    #: span name -> {"count_a", "count_b", "total_a", "total_b"}
    spans: Dict[str, Any] = field(default_factory=dict)

    @property
    def deterministic_match(self) -> bool:
        return not self.drift


def _span_aggregates(trace: TraceData) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for span in trace.spans:
        row = out.setdefault(span["name"], {"count": 0, "total": 0.0})
        row["count"] += 1
        row["total"] += span["dur"]
    return out


def diff_traces(a: TraceData, b: TraceData, a_label: str = "a", b_label: str = "b") -> TraceDiff:
    """Compare two loaded traces; see the module docstring for semantics."""
    diff = TraceDiff(a_label=a_label, b_label=b_label)

    for name in sorted(set(a.counters) | set(b.counters)):
        va = a.counters.get(name, 0)
        vb = b.counters.get(name, 0)
        diff.counters[name] = (va, vb)
        if va != vb and not is_volatile(name):
            diff.drift.append(name)

    hists_a = {h["name"]: h for h in a.histograms}
    hists_b = {h["name"]: h for h in b.histograms}
    for name in sorted(set(hists_a) | set(hists_b)):
        ha = hists_a.get(name)
        hb = hists_b.get(name)
        buckets_a = ha.get("buckets", {}) if ha else {}
        buckets_b = hb.get("buckets", {}) if hb else {}
        bucket_deltas = {
            bound: buckets_b.get(bound, 0) - buckets_a.get(bound, 0)
            for bound in sorted(set(buckets_a) | set(buckets_b), key=float)
            if buckets_b.get(bound, 0) != buckets_a.get(bound, 0)
        }
        diff.histograms[name] = {"a": ha, "b": hb, "bucket_deltas": bucket_deltas}

    spans_a = _span_aggregates(a)
    spans_b = _span_aggregates(b)
    for name in sorted(set(spans_a) | set(spans_b)):
        sa = spans_a.get(name, {"count": 0, "total": 0.0})
        sb = spans_b.get(name, {"count": 0, "total": 0.0})
        diff.spans[name] = {
            "count_a": int(sa["count"]),
            "count_b": int(sb["count"]),
            "total_a": sa["total"],
            "total_b": sb["total"],
        }
    return diff


def _mean(state: Optional[Dict[str, Any]]) -> float:
    if not state or not state.get("count"):
        return 0.0
    return state["total"] / state["count"]


def diff_summary_lines(diff: TraceDiff, changed_only: bool = True) -> List[str]:
    """Render a :class:`TraceDiff` as summary tables.

    ``changed_only`` hides identical counters/histograms (the common case for
    determinism checks, where almost everything matches).
    """
    from ..analysis.tables import TextTable

    lines: List[str] = [f"diff: {diff.a_label} -> {diff.b_label}"]
    if diff.deterministic_match:
        lines.append("deterministic metrics: MATCH (no drift)")
    else:
        lines.append(
            f"deterministic metrics: DRIFT in {len(diff.drift)} counter(s): "
            + ", ".join(diff.drift)
        )

    counter_rows = [
        (name, va, vb)
        for name, (va, vb) in diff.counters.items()
        if not changed_only or va != vb
    ]
    if counter_rows:
        table = TextTable(
            title="Counter deltas", headers=("counter", diff.a_label, diff.b_label, "delta")
        )
        for name, va, vb in counter_rows:
            table.add_row(name, va, vb, vb - va)
        lines.append("")
        lines.append(table.to_text())

    hist_rows = []
    for name, entry in diff.histograms.items():
        mean_a = _mean(entry["a"])
        mean_b = _mean(entry["b"])
        if changed_only and not entry["bucket_deltas"] and mean_a == mean_b:
            continue
        hist_rows.append((name, entry, mean_a, mean_b))
    if hist_rows:
        table = TextTable(
            title="Histogram comparison",
            headers=("histogram", f"mean {diff.a_label}", f"mean {diff.b_label}", "buckets moved"),
            precision=4,
        )
        for name, entry, mean_a, mean_b in hist_rows:
            moved = sum(abs(n) for n in entry["bucket_deltas"].values())
            table.add_row(name, mean_a, mean_b, moved)
        lines.append("")
        lines.append(table.to_text())
        for name, entry, _, _ in hist_rows:
            if entry["bucket_deltas"]:
                shifts = ", ".join(
                    f"<={float(bound):g}: {delta:+d}"
                    for bound, delta in entry["bucket_deltas"].items()
                )
                lines.append(f"  {name}: {shifts}")

    span_rows = [
        (name, row)
        for name, row in diff.spans.items()
        if not changed_only
        or row["count_a"] != row["count_b"]
        or abs(row["total_b"] - row["total_a"]) > 1e-9
    ]
    if span_rows:
        table = TextTable(
            title="Span aggregates",
            headers=(
                "span",
                f"n {diff.a_label}",
                f"n {diff.b_label}",
                f"s {diff.a_label}",
                f"s {diff.b_label}",
            ),
            precision=4,
        )
        for name, row in span_rows:
            table.add_row(name, row["count_a"], row["count_b"], row["total_a"], row["total_b"])
        lines.append("")
        lines.append(table.to_text())

    if len(lines) == 2:
        lines.append("no differences beyond volatile timings")
    return lines
