"""Trace loading, validation, Chrome-trace export and summary rendering.

Consumes JSONL traces written by :class:`repro.obs.sinks.JsonlSink` and
powers the ``repro stats`` CLI subcommand.  Version-2 traces carry span
ids (``span_id``/``parent_id``/``trace_id``), which unlocks the causal
views: per-span *self time* (duration minus the duration of direct
children) and the *critical path* (the chain of enclosing spans that ends
latest — where wall-clock actually went).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .core import Recorder, is_volatile
from .sinks import SUPPORTED_TRACE_VERSIONS

__all__ = [
    "TraceData",
    "load_trace",
    "validate_trace",
    "span_children",
    "span_self_times",
    "critical_path",
    "chrome_trace",
    "write_chrome_trace",
    "trace_summary_lines",
    "recorder_summary_lines",
]

_KNOWN_TYPES = ("meta", "span", "gauge", "counters", "histogram")
_REQUIRED_FIELDS = {
    "meta": ("version",),
    "span": ("name", "ts", "dur"),
    "gauge": ("name", "value"),
    "counters": ("counts",),
    "histogram": ("name", "count", "total", "buckets"),
}


@dataclass
class TraceData:
    """Parsed contents of a JSONL trace file.

    ``complete`` is False when the trace was salvaged from a crashed run
    (truncated line and/or missing counter footers); ``problems`` then
    describes the gap.
    """

    path: Optional[Path] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    gauges: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    histograms: List[Dict[str, Any]] = field(default_factory=list)
    complete: bool = True
    problems: List[str] = field(default_factory=list)


def load_trace(path: Union[str, Path], salvage: bool = False) -> TraceData:
    """Parse a JSONL trace; raises ValueError on malformed lines.

    With ``salvage=True`` a malformed line — typically the torn final write
    of a crashed run — stops parsing instead of raising: everything before
    it is reconstructed, ``trace.complete`` turns False, and
    ``trace.problems`` reports the gap (including missing counter footers,
    which a crashed run never got to write).  Use the ``fsync`` knob of
    :class:`~repro.obs.sinks.JsonlSink` to keep such traces near-lossless.
    """
    trace = TraceData(path=Path(path))
    saw_footer = False
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                if not salvage:
                    raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
                trace.complete = False
                trace.problems.append(
                    f"line {lineno}: truncated or corrupt; salvaged the "
                    f"{len(trace.spans)} spans recorded before it"
                )
                break
            kind = event.get("type")
            if kind == "meta":
                trace.meta = event
            elif kind == "span":
                trace.spans.append(event)
            elif kind == "gauge":
                trace.gauges[event["name"]] = event["value"]
            elif kind == "counters":
                trace.counters.update(event["counts"])
                saw_footer = True
            elif kind == "histogram":
                trace.histograms.append(event)
    if salvage and not saw_footer:
        trace.complete = False
        trace.problems.append(
            "no counter footer: the recording session never closed "
            "(crashed run?); counters and histograms are unavailable"
        )
    return trace


def validate_trace(path: Union[str, Path]) -> List[str]:
    """Schema-check every line; returns a list of problems (empty = valid).

    Beyond per-line schema checks this verifies the causal integrity of
    version-2 traces: every span's ``parent_id`` must resolve to the
    ``span_id`` of another span in the trace (cross-process links included —
    worker spans re-emitted by the parent must still find their parent).
    """
    problems: List[str] = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        return [f"{path}: cannot open: {exc}"]
    span_ids = set()
    parent_refs: List[Tuple[int, str]] = []
    with handle:
        first_kind: Optional[str] = None
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                problems.append(f"line {lineno}: blank line")
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"line {lineno}: not valid JSON ({exc})")
                continue
            if not isinstance(event, dict):
                problems.append(f"line {lineno}: not a JSON object")
                continue
            kind = event.get("type")
            if first_kind is None:
                first_kind = kind
                if kind != "meta":
                    problems.append(f"line {lineno}: first event must be meta, got {kind!r}")
                elif event.get("version") not in SUPPORTED_TRACE_VERSIONS:
                    problems.append(
                        f"line {lineno}: unsupported trace version {event.get('version')!r}"
                    )
            if kind not in _KNOWN_TYPES:
                problems.append(f"line {lineno}: unknown event type {kind!r}")
                continue
            for field_name in _REQUIRED_FIELDS[kind]:
                if field_name not in event:
                    problems.append(f"line {lineno}: {kind} event missing {field_name!r}")
            if kind == "span":
                if event.get("span_id") is not None:
                    span_ids.add(event["span_id"])
                if event.get("parent_id") is not None:
                    parent_refs.append((lineno, event["parent_id"]))
        if first_kind is None:
            problems.append("empty trace file")
    for lineno, parent in parent_refs:
        if parent not in span_ids:
            problems.append(
                f"line {lineno}: span parent_id {parent!r} does not resolve "
                "to any span in the trace"
            )
    return problems


# ----------------------------------------------------------------------
# causal views: span tree, self time, critical path
# ----------------------------------------------------------------------

def span_children(trace: TraceData) -> Dict[Optional[str], List[Dict[str, Any]]]:
    """Spans grouped by ``parent_id`` (None = roots), in emission order.

    Spans without ids (version-1 traces) all land under None.
    """
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    known = {span.get("span_id") for span in trace.spans if span.get("span_id")}
    for span in trace.spans:
        parent = span.get("parent_id")
        if parent is not None and parent not in known:
            parent = None  # orphan (salvaged trace): treat as a root
        children.setdefault(parent, []).append(span)
    return children


def span_self_times(trace: TraceData) -> Dict[str, Dict[str, float]]:
    """Per-span-name aggregates including *self time*.

    Self time is a span's duration minus the summed durations of its direct
    children — the wall-clock actually spent in the span's own code rather
    than delegated further down.  For id-less (version-1) spans self time
    equals duration.  Returns ``name -> {count, total, self_total, max}``.
    """
    child_totals: Dict[str, float] = {}
    for span in trace.spans:
        parent = span.get("parent_id")
        if parent is not None:
            child_totals[parent] = child_totals.get(parent, 0.0) + span["dur"]
    aggregate: Dict[str, Dict[str, float]] = {}
    for span in trace.spans:
        row = aggregate.setdefault(
            span["name"], {"count": 0, "total": 0.0, "self_total": 0.0, "max": 0.0}
        )
        row["count"] += 1
        row["total"] += span["dur"]
        row["max"] = max(row["max"], span["dur"])
        span_id = span.get("span_id")
        own = span["dur"] - (child_totals.get(span_id, 0.0) if span_id else 0.0)
        row["self_total"] += max(0.0, own)
    return aggregate


def critical_path(trace: TraceData) -> List[Dict[str, Any]]:
    """The chain of spans that determines when the trace *ends*.

    Starts from the root span with the latest end time and repeatedly
    descends into the child whose end time is latest — the classic
    end-anchored critical path of a nested-span profile.  Each returned
    entry carries ``name``, ``label``, ``dur`` and ``self`` (duration minus
    direct children).  Empty for traces without spans.
    """
    children = span_children(trace)
    path: List[Dict[str, Any]] = []

    def end(span: Dict[str, Any]) -> float:
        return span["ts"] + span["dur"]

    frontier = children.get(None, [])
    while frontier:
        span = max(frontier, key=end)
        kids = children.get(span.get("span_id"), []) if span.get("span_id") else []
        child_total = sum(kid["dur"] for kid in kids)
        path.append(
            {
                "name": span["name"],
                "label": span.get("label"),
                "dur": span["dur"],
                "self": max(0.0, span["dur"] - child_total),
            }
        )
        frontier = kids
    return path


def chrome_trace(trace: TraceData) -> Dict[str, Any]:
    """Convert a trace to the Chrome-trace / Perfetto JSON object format.

    Spans become complete ("X") events with microsecond timestamps — carrying
    their causal ids in ``args`` — and final counter values become counter
    ("C") samples so they show up in the UI.  Worker-recorded spans keep
    their own ``pid``, so Perfetto renders one track per process with the
    parent/child links intact.
    """
    events: List[Dict[str, Any]] = []
    end_us = 0.0
    for span in trace.spans:
        ts_us = span["ts"] * 1e6
        dur_us = span["dur"] * 1e6
        end_us = max(end_us, ts_us + dur_us)
        event = {
            "ph": "X",
            "name": span["name"],
            "cat": span["name"].split(".", 1)[0],
            "ts": ts_us,
            "dur": dur_us,
            "pid": span.get("pid", 0),
            "tid": 0,
        }
        args: Dict[str, Any] = {}
        if span.get("label"):
            args["label"] = span["label"]
        if span.get("span_id"):
            args["span_id"] = span["span_id"]
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        if args:
            event["args"] = args
        events.append(event)
    pid = trace.meta.get("pid") or (trace.spans[0].get("pid", 0) if trace.spans else 0)
    for name, value in sorted(trace.counters.items()):
        events.append(
            {
                "ph": "C",
                "name": name,
                "ts": end_us,
                "pid": pid,
                "tid": 0,
                "args": {"value": value},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: TraceData, path: Union[str, Path]) -> None:
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(trace), handle, sort_keys=True)
        handle.write("\n")


def _counter_table(counters: Dict[str, int]) -> "Any":
    from ..analysis.tables import TextTable

    table = TextTable(
        title="Counters (rt.* = runtime-dependent)", headers=("counter", "value")
    )
    for name, value in sorted(counters.items()):
        table.add_row(name, value)
    return table


def _histogram_table(rows: List[Dict[str, Any]]) -> "Any":
    from ..analysis.tables import TextTable

    table = TextTable(
        title="Distributions",
        headers=("histogram", "count", "total", "mean"),
        precision=4,
    )
    for row in sorted(rows, key=lambda r: r["name"]):
        count = row["count"]
        total = row["total"]
        table.add_row(row["name"], count, total, total / count if count else 0.0)
    return table


def _span_table(trace: TraceData) -> "Any":
    from ..analysis.tables import TextTable

    table = TextTable(
        title="Spans (self = excluding child spans)",
        headers=("span", "count", "total_s", "self_s", "mean_s", "max_s"),
        precision=4,
    )
    for name, row in sorted(span_self_times(trace).items()):
        table.add_row(
            name,
            int(row["count"]),
            row["total"],
            row["self_total"],
            row["total"] / row["count"],
            row["max"],
        )
    return table


def _runtime_table(trace: TraceData) -> Optional["Any"]:
    """Derived runtime health metrics: pool utilization, cache hit rates.

    The underlying gauges/counters are volatile (``rt.``-prefixed) raw
    material; this table turns them into the ratios people actually ask for.
    Returns None when the trace recorded none of them.
    """
    from ..analysis.tables import TextTable

    rows: List[Tuple[str, float, str]] = []
    utilization = trace.gauges.get("rt.engine.pool.utilization")
    if utilization is not None:
        rows.append(("engine.pool.utilization", utilization, "busy worker-seconds / pool capacity"))
    for layer, hits_key, miss_key in (
        ("engine.cache", "rt.engine.cache.hits", "rt.engine.cache.misses"),
        ("eval.cache", "rt.eval.cache.hit", "rt.eval.cache.miss"),
    ):
        hits = trace.counters.get(hits_key, 0)
        misses = trace.counters.get(miss_key, 0)
        if hits or misses:
            rows.append(
                (f"{layer}.hit_rate", hits / (hits + misses), f"{hits} hits / {misses} misses")
            )
    if not rows:
        return None
    table = TextTable(
        title="Runtime (derived from rt.* metrics)",
        headers=("metric", "value", "detail"),
        precision=4,
    )
    for name, value, detail in rows:
        table.add_row(name, value, detail)
    return table


def _critical_path_lines(trace: TraceData) -> List[str]:
    path = critical_path(trace)
    if not path:
        return []
    lines = ["critical path (end-anchored):"]
    for depth, hop in enumerate(path):
        label = f" [{hop['label']}]" if hop["label"] else ""
        lines.append(
            f"  {'  ' * depth}{hop['name']}{label}: "
            f"{hop['dur']:.4f}s total, {hop['self']:.4f}s self"
        )
    return lines


def trace_summary_lines(trace: TraceData) -> List[str]:
    """Render a loaded trace as human-readable summary tables."""
    lines: List[str] = []
    if trace.path is not None:
        lines.append(f"trace: {trace.path}")
    if not trace.complete:
        for problem in trace.problems:
            lines.append(f"SALVAGED: {problem}")
    deterministic = sum(1 for name in trace.counters if not is_volatile(name))
    lines.append(
        f"{len(trace.spans)} spans, {len(trace.counters)} counters "
        f"({deterministic} deterministic), {len(trace.histograms)} histograms"
    )
    if trace.spans:
        lines.append("")
        lines.append(_span_table(trace).to_text())
        cp = _critical_path_lines(trace)
        if cp:
            lines.append("")
            lines.extend(cp)
    runtime = _runtime_table(trace)
    if runtime is not None:
        lines.append("")
        lines.append(runtime.to_text())
    if trace.counters:
        lines.append("")
        lines.append(_counter_table(trace.counters).to_text())
    if trace.histograms:
        lines.append("")
        lines.append(_histogram_table(trace.histograms).to_text())
    for name, value in sorted(trace.gauges.items()):
        lines.append(f"gauge {name} = {value:.4g}")
    return lines


def recorder_summary_lines(recorder: Recorder) -> List[str]:
    """Render a live recorder's metrics (the CLI ``--metrics`` report)."""
    snapshot = recorder.counters_snapshot(include_volatile=True)
    lines: List[str] = []
    if snapshot["counters"]:
        lines.append(_counter_table(snapshot["counters"]).to_text())
    histogram_rows = [
        {"name": name, **state} for name, state in snapshot["histograms"].items()
    ]
    if histogram_rows:
        if lines:
            lines.append("")
        lines.append(_histogram_table(histogram_rows).to_text())
    for name, value in sorted(recorder.gauges.items()):
        lines.append(f"gauge {name} = {value:.4g}")
    if not lines:
        lines.append("no metrics recorded")
    return lines
