"""Trace loading, validation, Chrome-trace export and summary rendering.

Consumes JSONL traces written by :class:`repro.obs.sinks.JsonlSink` and
powers the ``repro stats`` CLI subcommand.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .core import Recorder, is_volatile
from .sinks import TRACE_VERSION

__all__ = [
    "TraceData",
    "load_trace",
    "validate_trace",
    "chrome_trace",
    "write_chrome_trace",
    "trace_summary_lines",
    "recorder_summary_lines",
]

_KNOWN_TYPES = ("meta", "span", "gauge", "counters", "histogram")
_REQUIRED_FIELDS = {
    "meta": ("version",),
    "span": ("name", "ts", "dur"),
    "gauge": ("name", "value"),
    "counters": ("counts",),
    "histogram": ("name", "count", "total", "buckets"),
}


@dataclass
class TraceData:
    """Parsed contents of a JSONL trace file."""

    path: Optional[Path] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    gauges: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    histograms: List[Dict[str, Any]] = field(default_factory=list)


def load_trace(path: Union[str, Path]) -> TraceData:
    """Parse a JSONL trace; raises ValueError on malformed lines."""
    trace = TraceData(path=Path(path))
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            kind = event.get("type")
            if kind == "meta":
                trace.meta = event
            elif kind == "span":
                trace.spans.append(event)
            elif kind == "gauge":
                trace.gauges[event["name"]] = event["value"]
            elif kind == "counters":
                trace.counters.update(event["counts"])
            elif kind == "histogram":
                trace.histograms.append(event)
    return trace


def validate_trace(path: Union[str, Path]) -> List[str]:
    """Schema-check every line; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        return [f"{path}: cannot open: {exc}"]
    with handle:
        first_kind: Optional[str] = None
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                problems.append(f"line {lineno}: blank line")
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"line {lineno}: not valid JSON ({exc})")
                continue
            if not isinstance(event, dict):
                problems.append(f"line {lineno}: not a JSON object")
                continue
            kind = event.get("type")
            if first_kind is None:
                first_kind = kind
                if kind != "meta":
                    problems.append(f"line {lineno}: first event must be meta, got {kind!r}")
                elif event.get("version") != TRACE_VERSION:
                    problems.append(
                        f"line {lineno}: unsupported trace version {event.get('version')!r}"
                    )
            if kind not in _KNOWN_TYPES:
                problems.append(f"line {lineno}: unknown event type {kind!r}")
                continue
            for field_name in _REQUIRED_FIELDS[kind]:
                if field_name not in event:
                    problems.append(f"line {lineno}: {kind} event missing {field_name!r}")
        if first_kind is None:
            problems.append("empty trace file")
    return problems


def chrome_trace(trace: TraceData) -> Dict[str, Any]:
    """Convert a trace to the Chrome-trace / Perfetto JSON object format.

    Spans become complete ("X") events with microsecond timestamps; final
    counter values become counter ("C") samples so they show up in the UI.
    """
    events: List[Dict[str, Any]] = []
    end_us = 0.0
    for span in trace.spans:
        ts_us = span["ts"] * 1e6
        dur_us = span["dur"] * 1e6
        end_us = max(end_us, ts_us + dur_us)
        event = {
            "ph": "X",
            "name": span["name"],
            "cat": span["name"].split(".", 1)[0],
            "ts": ts_us,
            "dur": dur_us,
            "pid": span.get("pid", 0),
            "tid": 0,
        }
        if span.get("label"):
            event["args"] = {"label": span["label"]}
        events.append(event)
    pid = trace.meta.get("pid") or (trace.spans[0].get("pid", 0) if trace.spans else 0)
    for name, value in sorted(trace.counters.items()):
        events.append(
            {
                "ph": "C",
                "name": name,
                "ts": end_us,
                "pid": pid,
                "tid": 0,
                "args": {"value": value},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: TraceData, path: Union[str, Path]) -> None:
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(trace), handle, sort_keys=True)
        handle.write("\n")


def _counter_table(counters: Dict[str, int]) -> "Any":
    from ..analysis.tables import TextTable

    table = TextTable(
        title="Counters (rt.* = runtime-dependent)", headers=("counter", "value")
    )
    for name, value in sorted(counters.items()):
        table.add_row(name, value)
    return table


def _histogram_table(rows: List[Dict[str, Any]]) -> "Any":
    from ..analysis.tables import TextTable

    table = TextTable(
        title="Distributions",
        headers=("histogram", "count", "total", "mean"),
        precision=4,
    )
    for row in sorted(rows, key=lambda r: r["name"]):
        count = row["count"]
        total = row["total"]
        table.add_row(row["name"], count, total, total / count if count else 0.0)
    return table


def _span_table(spans: List[Dict[str, Any]]) -> "Any":
    from ..analysis.tables import TextTable

    aggregate: Dict[str, List[float]] = {}
    for span in spans:
        aggregate.setdefault(span["name"], []).append(span["dur"])
    table = TextTable(
        title="Spans",
        headers=("span", "count", "total_s", "mean_s", "max_s"),
        precision=4,
    )
    for name, durations in sorted(aggregate.items()):
        table.add_row(
            name,
            len(durations),
            sum(durations),
            sum(durations) / len(durations),
            max(durations),
        )
    return table


def trace_summary_lines(trace: TraceData) -> List[str]:
    """Render a loaded trace as human-readable summary tables."""
    lines: List[str] = []
    if trace.path is not None:
        lines.append(f"trace: {trace.path}")
    deterministic = sum(1 for name in trace.counters if not is_volatile(name))
    lines.append(
        f"{len(trace.spans)} spans, {len(trace.counters)} counters "
        f"({deterministic} deterministic), {len(trace.histograms)} histograms"
    )
    if trace.spans:
        lines.append("")
        lines.append(_span_table(trace.spans).to_text())
    if trace.counters:
        lines.append("")
        lines.append(_counter_table(trace.counters).to_text())
    if trace.histograms:
        lines.append("")
        lines.append(_histogram_table(trace.histograms).to_text())
    for name, value in sorted(trace.gauges.items()):
        lines.append(f"gauge {name} = {value:.4g}")
    return lines


def recorder_summary_lines(recorder: Recorder) -> List[str]:
    """Render a live recorder's metrics (the CLI ``--metrics`` report)."""
    snapshot = recorder.counters_snapshot(include_volatile=True)
    lines: List[str] = []
    if snapshot["counters"]:
        lines.append(_counter_table(snapshot["counters"]).to_text())
    histogram_rows = [
        {"name": name, **state} for name, state in snapshot["histograms"].items()
    ]
    if histogram_rows:
        if lines:
            lines.append("")
        lines.append(_histogram_table(histogram_rows).to_text())
    for name, value in sorted(recorder.gauges.items()):
        lines.append(f"gauge {name} = {value:.4g}")
    if not lines:
        lines.append("no metrics recorded")
    return lines
