"""Event sinks for the recorder: in-memory (tests) and append-only JSONL.

Trace file schema (one JSON object per line):

``{"type": "meta", "version": 2, "pid": ..., "trace_id": ..., "started_unix": ...}``
    First line of every trace.
``{"type": "span", "name": ..., "label": ..., "ts": s, "dur": s, "pid": ...,
"span_id": ..., "parent_id": ..., "trace_id": ...}``
    A timed region; ``ts`` is seconds since the recorder was enabled.
    ``span_id``/``parent_id`` encode the causal tree — ``parent_id`` is the
    ``span_id`` of the enclosing span (possibly recorded in another process)
    or ``null`` for roots.
``{"type": "gauge", "name": ..., "value": ..., "pid": ...}``
    A point-in-time measurement.
``{"type": "counters", "counts": {name: int, ...}}``
    Footer: final counter values (written when the recording session closes).
``{"type": "histogram", "name": ..., "count": ..., "total": ..., "buckets": ...}``
    Footer: one line per histogram.

Version 1 traces (no span ids) are still loadable; see
:func:`repro.obs.report.load_trace`.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Union

__all__ = ["MemorySink", "JsonlSink", "TRACE_VERSION", "SUPPORTED_TRACE_VERSIONS"]

TRACE_VERSION = 2

#: Versions :func:`repro.obs.report.load_trace` accepts (2 adds span ids).
SUPPORTED_TRACE_VERSIONS = (1, 2)


class MemorySink:
    """Collects events in a list; the test-suite's sink of choice."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def write(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def by_type(self, kind: str) -> List[Dict[str, Any]]:
        return [event for event in self.events if event.get("type") == kind]


class JsonlSink:
    """Append-only JSONL event log with a meta header and metric footers.

    Parameters
    ----------
    path:
        Trace file to create (parent directories are made on demand).
    fsync:
        Crash-safety knob: when true, every line is flushed *and* fsynced to
        disk as it is written, so a crashed or killed run leaves a salvageable
        trace (see ``load_trace(..., salvage=True)``) at the cost of one
        syscall pair per event.  Off by default — the footers are only
        guaranteed durable on :meth:`close` either way.
    """

    def __init__(self, path: Union[str, Path], fsync: bool = False, trace_id: str = "") -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")
        self._write_line(
            {
                "type": "meta",
                "version": TRACE_VERSION,
                "pid": None,
                "trace_id": trace_id or None,
                "started_unix": time.time(),
            }
        )

    def _write_line(self, event: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        if self.fsync:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def write(self, event: Dict[str, Any]) -> None:
        self._write_line(event)

    def write_footer(self, recorder: Any) -> None:
        """Flush final counters, histograms and gauges as footer lines."""
        snapshot = recorder.counters_snapshot(include_volatile=True)
        self._write_line({"type": "counters", "counts": snapshot["counters"]})
        for name, state in snapshot["histograms"].items():
            self._write_line({"type": "histogram", "name": name, **state})
        for name, value in sorted(recorder.gauges.items()):
            self._write_line({"type": "gauge", "name": name, "value": value, "pid": recorder.pid})

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()
