"""The paper's contribution: iterative battery-aware sequencing and assignment.

Public entry points:

* :func:`battery_aware_schedule` / :class:`BatteryAwareScheduler` — the
  top-level iterative algorithm (``BatteryAwareSQNDPAllocation``);
* :func:`evaluate_windows`, :func:`choose_design_points`,
  :func:`calculate_dpf`, :func:`find_weighted_sequence` — the individual
  pseudocode routines, exposed for study, testing and the illustrative
  example;
* the factor functions (``slack_ratio`` .. ``design_point_fraction``) and the
  :class:`SequencedMatrices` helper they operate on.
"""

from .choose import (
    ChooseResult,
    DesignPointEvaluation,
    calculate_dpf,
    choose_design_points,
    promote_until_feasible,
)
from .config import SchedulerConfig
from .factors import (
    FactorValues,
    FactorWeights,
    current_increase_fraction,
    current_ratio,
    design_point_fraction,
    energy_ratio,
    slack_ratio,
    suitability,
    windowed_design_point_fraction,
)
from .iterative import BatteryAwareScheduler, battery_aware_schedule
from .matrices import SequencedMatrices
from .refine import refine_solution
from .result import IterationRecord, SchedulingSolution
from .weighted import equation4_weights, find_weighted_sequence
from .windows import (
    WindowEvaluation,
    WindowRecord,
    evaluate_windows,
    initial_window_start,
)

__all__ = [
    "battery_aware_schedule",
    "BatteryAwareScheduler",
    "refine_solution",
    "SchedulerConfig",
    "SchedulingSolution",
    "IterationRecord",
    "SequencedMatrices",
    "WindowEvaluation",
    "WindowRecord",
    "evaluate_windows",
    "initial_window_start",
    "choose_design_points",
    "calculate_dpf",
    "promote_until_feasible",
    "ChooseResult",
    "DesignPointEvaluation",
    "find_weighted_sequence",
    "equation4_weights",
    "FactorValues",
    "FactorWeights",
    "slack_ratio",
    "current_ratio",
    "energy_ratio",
    "current_increase_fraction",
    "design_point_fraction",
    "windowed_design_point_fraction",
    "suitability",
]
