"""Window search over design-point columns (``EvaluateWindows``, Figure 1).

A *window* restricts which design-point columns ``ChooseDesignPoints`` may
consider: window ``k:m`` (1-based, as printed in the paper's Table 3) allows
columns ``k`` through ``m``.  The search first finds the widest window whose
*most powerful allowed column alone* still meets the deadline (or reports the
deadline infeasible if even column 1 cannot), then slides the window start
towards column 1, running the design-point chooser once per window, and keeps
the assignment with the smallest battery cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..battery import BatteryModel
from ..errors import AlgorithmError, InfeasibleDeadlineError
from ..scheduling import DesignPointAssignment
from .choose import choose_design_points, promote_until_feasible
from .factors import FactorWeights
from .matrices import SequencedMatrices

__all__ = ["WindowRecord", "WindowEvaluation", "initial_window_start", "evaluate_windows"]

_EPS = 1e-9


@dataclass(frozen=True)
class WindowRecord:
    """Result of running the design-point chooser for one window."""

    window_start: int
    """First allowed column, 0-based (``0`` means the full ``1:m`` window)."""

    label: str
    """The paper-style window label, e.g. ``"2:5"``."""

    cost: float
    """Battery cost sigma of the produced assignment (mA·min)."""

    makespan: float
    """Completion time Delta of the produced assignment (time units)."""

    feasible: bool
    """True when the makespan does not exceed the deadline."""

    assignment: DesignPointAssignment
    """Task-keyed design-point assignment produced for this window."""


@dataclass(frozen=True)
class WindowEvaluation:
    """All windows evaluated for one sequence, plus the winning one."""

    records: Tuple[WindowRecord, ...]
    best: WindowRecord

    @property
    def best_cost(self) -> float:
        """Battery cost of the winning window."""
        return self.best.cost

    def record_for(self, label: str) -> Optional[WindowRecord]:
        """Look up a window record by its paper-style label (e.g. ``"3:5"``)."""
        for record in self.records:
            if record.label == label:
                return record
        return None


def initial_window_start(matrices: SequencedMatrices, deadline: float) -> int:
    """The widest valid starting window (0-based column index).

    Mirrors the first loop of ``EvaluateWindows``: start from column ``m-1``
    (1-based) and move towards column 1 until the column's all-tasks
    completion time ``CT(k)`` fits the deadline.  Raises
    :class:`InfeasibleDeadlineError` when even ``CT(1)`` (every task at its
    fastest design point) exceeds the deadline.
    """
    m = matrices.m
    if deadline < matrices.column_time(0) - _EPS:
        raise InfeasibleDeadlineError(
            f"deadline {deadline:g} cannot be met: even the fastest design points "
            f"need {matrices.column_time(0):g}"
        )
    if m == 1:
        return 0
    window_start = m - 2  # 1-based m-1
    while deadline < matrices.column_time(window_start) - _EPS and window_start > 0:
        window_start -= 1
    return window_start


def evaluate_windows(
    matrices: SequencedMatrices,
    deadline: float,
    model: BatteryModel,
    weights: Optional[FactorWeights] = None,
    require_feasible: bool = True,
    repair_infeasible: bool = True,
    record_evaluations: bool = False,
) -> WindowEvaluation:
    """The paper's ``EvaluateWindows`` for one sequence.

    Runs :func:`~repro.core.choose.choose_design_points` once per window from
    the widest valid starting window down to the full ``1:m`` window and
    returns every per-window record together with the minimum-cost one.

    Parameters
    ----------
    require_feasible:
        When true (default) only deadline-respecting windows compete for the
        "best" slot, matching the paper's claim that every iteration yields a
        valid schedule.  Infeasible windows are still reported in ``records``
        with ``feasible=False``.
    repair_infeasible:
        When true, an assignment that misses the deadline is repaired by
        promoting minimum-average-energy tasks to faster design points within
        the window (see :func:`~repro.core.choose.promote_until_feasible`)
        before being recorded.
    weights:
        Optional factor weights forwarded to the design-point chooser
        (ablation support).
    """
    start = initial_window_start(matrices, deadline)
    records = []
    for window_start in range(start, -1, -1):
        result = choose_design_points(
            matrices,
            window_start=window_start,
            deadline=deadline,
            weights=weights,
            record_evaluations=record_evaluations,
        )
        selection = result.selection
        makespan = result.makespan
        if makespan > deadline + _EPS and repair_infeasible:
            try:
                selection = promote_until_feasible(matrices, selection, window_start, deadline)
                makespan = matrices.total_time(selection)
            except AlgorithmError:
                pass  # keep the unrepaired assignment, marked infeasible below
        cost = _selection_cost(matrices, selection, model)
        records.append(
            WindowRecord(
                window_start=window_start,
                label=f"{window_start + 1}:{matrices.m}",
                cost=cost,
                makespan=makespan,
                feasible=makespan <= deadline + _EPS,
                assignment=matrices.to_assignment(selection),
            )
        )

    best = _pick_best(records, require_feasible)
    return WindowEvaluation(records=tuple(records), best=best)


def _selection_cost(
    matrices: SequencedMatrices, selection: np.ndarray, model: BatteryModel
) -> float:
    """Battery cost of executing the sequence back-to-back with ``selection``.

    Routed through the model's vectorized schedule path (the same canonical
    computation as :func:`~repro.scheduling.battery_cost`), so the window
    search never materialises load profiles on its hot path.
    """
    return model.schedule_charge(
        matrices.selection_durations(selection),
        matrices.selection_currents(selection),
    )


def _pick_best(records, require_feasible: bool) -> WindowRecord:
    candidates = [r for r in records if r.feasible] if require_feasible else list(records)
    if not candidates:
        if require_feasible:
            raise InfeasibleDeadlineError(
                "no window produced a deadline-respecting assignment"
            )
        candidates = list(records)
    return min(candidates, key=lambda r: (r.cost, r.window_start))
