"""Design-point selection for a fixed sequence and window (Figure 1/2).

This module implements the inner pair of routines from the paper's
pseudocode:

* ``ChooseDesignPoints`` (:func:`choose_design_points`) walks the sequence
  *backwards* — the last task is pinned to its lowest-power design point
  (using slack late in the schedule is provably better than using it early,
  Section 3) and every earlier task is then assigned the design point with
  the smallest suitability ``B`` among the columns allowed by the current
  window.

* ``CalculateDPF`` (:func:`calculate_dpf`) evaluates one *tagged* candidate:
  starting from the tentative selection it promotes the cheapest free tasks
  (in energy-vector order) to progressively faster design points until the
  deadline is met, then scores how many high-power design points that forced
  (DPF) and what the resulting assignment's current profile and energy look
  like (CIF, ENR).  If the deadline cannot be met even with every free task
  at the window's fastest column, DPF is infinite, which vetoes the tagged
  candidate whenever any feasible alternative exists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import AlgorithmError
from .factors import (
    FactorValues,
    FactorWeights,
    current_increase_fraction,
    current_ratio,
    energy_ratio,
    slack_ratio,
    windowed_design_point_fraction,
)
from .matrices import SequencedMatrices

__all__ = [
    "DesignPointEvaluation",
    "ChooseResult",
    "calculate_dpf",
    "choose_design_points",
    "promote_until_feasible",
]

_EPS = 1e-9


@dataclass(frozen=True)
class DesignPointEvaluation:
    """Factor breakdown for one (task position, column) candidate."""

    position: int
    column: int
    factors: FactorValues

    @property
    def suitability(self) -> float:
        """The combined ``B`` value of the candidate."""
        return self.factors.suitability


@dataclass(frozen=True)
class ChooseResult:
    """Output of :func:`choose_design_points`."""

    selection: np.ndarray
    evaluations: Tuple[DesignPointEvaluation, ...]
    makespan: float

    def evaluations_for(self, position: int) -> Tuple[DesignPointEvaluation, ...]:
        """All candidate evaluations recorded for one sequence position."""
        return tuple(e for e in self.evaluations if e.position == position)


def calculate_dpf(
    matrices: SequencedMatrices,
    selection: np.ndarray,
    window_start: int,
    tagged_position: int,
    deadline: float,
) -> Tuple[float, float, float, np.ndarray]:
    """The paper's ``CalculateDPF``: returns ``(ENR, CIF, DPF, promoted_selection)``.

    Parameters
    ----------
    matrices:
        Sequence-ordered matrices for the current iteration.
    selection:
        Tentative selection vector: positions after ``tagged_position`` hold
        their fixed columns, ``tagged_position`` holds the tagged candidate
        column, and earlier (free) positions hold the lowest-power column.
        The array is not modified; a promoted copy is returned.
    window_start:
        First (most powerful) column allowed by the current window, 0-based.
    tagged_position:
        Sequence position of the task whose candidate is being evaluated.
    deadline:
        Task-graph deadline ``d``.
    """
    sel = np.array(selection, dtype=int, copy=True)
    n, m = matrices.n, matrices.m

    # Free tasks are the positions before the tagged one; a task becomes
    # "fixed in E" once it reaches the window's most powerful column.
    fixed_in_e = set(range(tagged_position, n))
    fixed_in_e.update(pos for pos in range(tagged_position) if sel[pos] <= window_start)

    total_time = matrices.total_time(sel)
    dpf: Optional[float] = None
    while total_time > deadline + _EPS:
        promotable = next(
            (pos for pos in matrices.energy_vector if pos not in fixed_in_e), None
        )
        if promotable is None:
            dpf = math.inf
            break
        sel[promotable] -= 1
        if sel[promotable] <= window_start:
            fixed_in_e.add(promotable)
        total_time = matrices.total_time(sel)

    if dpf is None:
        if tagged_position == 0:
            # The first task in the sequence has no free tasks above it; the
            # paper replaces DPF by the slack ratio to press the remaining
            # slack into use.
            dpf = slack_ratio(total_time, deadline)
        else:
            dpf = windowed_design_point_fraction(
                sel, m, window_start, range(tagged_position)
            )

    currents = matrices.selection_currents(sel)
    cif = current_increase_fraction(currents)
    enr = energy_ratio(
        matrices.total_energy(sel), matrices.energy_min, matrices.energy_max
    )
    return enr, cif, dpf, sel


def choose_design_points(
    matrices: SequencedMatrices,
    window_start: int,
    deadline: float,
    weights: Optional[FactorWeights] = None,
    record_evaluations: bool = True,
) -> ChooseResult:
    """The paper's ``ChooseDesignPoints`` for one window.

    Walks the sequence from the last task to the first.  The last task is
    fixed at the lowest-power column; every other task is assigned the
    window column minimising the suitability ``B`` (ties are broken in
    favour of the lower-power column, which is the first one examined).

    Parameters
    ----------
    weights:
        Optional per-factor weights; ``None`` reproduces the paper's plain
        sum.  Used by the ablation experiments.
    record_evaluations:
        When true every candidate's factor breakdown is kept in the result
        (useful for the illustrative example and the documentation); turn it
        off in tight benchmarking loops.
    """
    n, m = matrices.n, matrices.m
    if not (0 <= window_start < m):
        raise AlgorithmError(f"window_start {window_start} out of range for m={m}")

    selection = matrices.lowest_power_selection()
    evaluations: List[DesignPointEvaluation] = []

    # Fix the last task in the sequence to its lowest-power design point.
    fixed_time = float(matrices.durations[n - 1, m - 1])

    for position in range(n - 2, -1, -1):
        best_column = m - 1
        best_b = math.inf
        for column in range(m - 1, window_start - 1, -1):
            trial = selection.copy()
            trial[position] = column
            elapsed = fixed_time + float(matrices.durations[position, column])
            sr = slack_ratio(elapsed, deadline)
            cr = current_ratio(
                float(matrices.currents[position, column]),
                matrices.current_min,
                matrices.current_max,
            )
            enr, cif, dpf, _ = calculate_dpf(
                matrices, trial, window_start, position, deadline
            )
            factors = FactorValues(
                slack_ratio=sr,
                current_ratio=cr,
                energy_ratio=enr,
                current_increase_fraction=cif,
                design_point_fraction=dpf,
            )
            b_value = factors.suitability if weights is None else factors.weighted(weights)
            if record_evaluations:
                evaluations.append(
                    DesignPointEvaluation(position=position, column=column, factors=factors)
                )
            if b_value < best_b:
                best_b = b_value
                best_column = column
        selection[position] = best_column
        fixed_time += float(matrices.durations[position, best_column])

    return ChooseResult(
        selection=selection,
        evaluations=tuple(evaluations),
        makespan=matrices.total_time(selection),
    )


def promote_until_feasible(
    matrices: SequencedMatrices,
    selection: np.ndarray,
    window_start: int,
    deadline: float,
) -> np.ndarray:
    """Repair an assignment that misses the deadline by promoting cheap tasks.

    Applies the same promotion rule as :func:`calculate_dpf` — move the
    free task with the smallest average energy one column towards higher
    power, repeatedly — but over *all* tasks, not just the ones before a
    tagged position.  Returns a new selection vector; raises
    :class:`AlgorithmError` when even the window's fastest column for every
    task cannot meet the deadline.

    The paper asserts that every iteration yields a deadline-respecting
    schedule; this helper is the safety net the library applies (when
    enabled in the configuration) for degenerate instances in which forcing
    the last task to its lowest-power design point makes the greedy
    bottom-up pass overshoot the deadline.
    """
    sel = np.array(selection, dtype=int, copy=True)
    total_time = matrices.total_time(sel)
    exhausted = set(
        pos for pos in range(matrices.n) if sel[pos] <= window_start
    )
    while total_time > deadline + _EPS:
        promotable = next(
            (pos for pos in matrices.energy_vector if pos not in exhausted), None
        )
        if promotable is None:
            raise AlgorithmError(
                f"cannot meet deadline {deadline:g} within window starting at column "
                f"{window_start + 1}"
            )
        sel[promotable] -= 1
        if sel[promotable] <= window_start:
            exhausted.add(promotable)
        total_time = matrices.total_time(sel)
    return sel
