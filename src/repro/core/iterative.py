"""Top-level iterative driver (``BatteryAwareSQNDPAllocation``, Figure 1).

One outer iteration does three things:

1. build the sequence-ordered matrices for the current task order ``L`` and
   run the window search (:func:`~repro.core.windows.evaluate_windows`),
   which returns the minimum-battery-cost design-point assignment ``S`` over
   all windows;
2. compute the Equation 4 weighted sequence ``L_w`` from ``S`` and evaluate
   its battery cost under the same assignment — if re-ordering alone already
   helps, the iteration's cost is updated; and
3. compare the iteration's best cost with the previous iteration's: if it
   did not improve, stop; otherwise adopt ``L_w`` as the sequence for the
   next iteration.

The returned :class:`~repro.core.result.SchedulingSolution` holds the best
(sequence, assignment) pair seen across all iterations together with the
full per-iteration history needed to regenerate the paper's Tables 2 and 3.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..battery import BatteryModel
from ..errors import ConfigurationError
from ..scheduling import (
    SchedulingProblem,
    evaluate_schedule,
    sequence_by_decreasing_energy,
)
from ..taskgraph import TaskGraph, validate_sequence
from .config import SchedulerConfig
from .matrices import SequencedMatrices
from .result import IterationRecord, SchedulingSolution
from .weighted import find_weighted_sequence
from .windows import evaluate_windows

__all__ = ["battery_aware_schedule", "BatteryAwareScheduler"]


def battery_aware_schedule(
    problem: SchedulingProblem,
    config: Optional[SchedulerConfig] = None,
    initial_sequence: Optional[Sequence[str]] = None,
    model: Optional[BatteryModel] = None,
) -> SchedulingSolution:
    """Run the paper's iterative heuristic on a scheduling problem.

    Parameters
    ----------
    problem:
        Task graph + deadline + battery specification.
    config:
        Algorithm configuration; defaults reproduce the paper.
    initial_sequence:
        Optional replacement for the ``SequenceDecEnergy`` seed sequence
        (must respect the graph's precedence edges).  Exposed for
        experimentation and testing.
    model:
        Optional battery model override; defaults to the analytical model
        described by ``problem.battery``.

    Returns
    -------
    SchedulingSolution
        The best feasible schedule found, with per-iteration history.
    """
    return BatteryAwareScheduler(config).solve(
        problem, initial_sequence=initial_sequence, model=model
    )


class BatteryAwareScheduler:
    """Object-oriented wrapper around :func:`battery_aware_schedule`.

    Holding the configuration in an object makes it convenient to run the
    same setup over many problems (as the sweep experiments do).
    """

    def __init__(self, config: Optional[SchedulerConfig] = None) -> None:
        self.config = config or SchedulerConfig()

    # ------------------------------------------------------------------
    def solve(
        self,
        problem: SchedulingProblem,
        initial_sequence: Optional[Sequence[str]] = None,
        model: Optional[BatteryModel] = None,
    ) -> SchedulingSolution:
        """Solve one problem instance; see :func:`battery_aware_schedule`."""
        config = self.config
        graph = problem.graph
        deadline = problem.deadline
        problem.require_feasible()
        battery_model = model if model is not None else problem.model()

        if initial_sequence is None:
            sequence: Tuple[str, ...] = sequence_by_decreasing_energy(graph)
        else:
            validate_sequence(graph, initial_sequence)
            sequence = tuple(initial_sequence)

        previous_cost = math.inf
        best_cost = math.inf
        best_sequence = sequence
        best_assignment = None
        iterations: List[IterationRecord] = []
        converged = False

        for index in range(1, config.max_iterations + 1):
            record = self._run_iteration(
                graph, sequence, deadline, battery_model, index
            )
            iterations.append(record)

            # Track the best candidate seen anywhere (window result or the
            # re-ordered weighted sequence under the same assignment).
            if record.best_window.cost < best_cost:
                best_cost = record.best_window.cost
                best_sequence = record.sequence
                best_assignment = record.assignment
            if record.improved_by_weighted and record.weighted_cost < best_cost:
                best_cost = record.weighted_cost
                best_sequence = record.weighted_sequence
                best_assignment = record.assignment

            # The paper's stopping rule: no improvement over the previous
            # iteration terminates the search.
            if record.cost >= previous_cost - config.improvement_tolerance:
                converged = True
                break
            previous_cost = record.cost
            sequence = record.weighted_sequence

        if best_assignment is None:  # pragma: no cover - defensive, max_iterations >= 1
            raise ConfigurationError("scheduler did not run any iteration")

        makespan = best_assignment.total_execution_time(graph)
        return SchedulingSolution(
            graph=graph,
            deadline=deadline,
            sequence=best_sequence,
            assignment=best_assignment,
            cost=best_cost,
            makespan=makespan,
            iterations=tuple(iterations),
            converged=converged,
        )

    # ------------------------------------------------------------------
    def _run_iteration(
        self,
        graph: TaskGraph,
        sequence: Tuple[str, ...],
        deadline: float,
        model: BatteryModel,
        index: int,
    ) -> IterationRecord:
        config = self.config
        matrices = SequencedMatrices(graph, sequence)
        window_evaluation = evaluate_windows(
            matrices,
            deadline=deadline,
            model=model,
            weights=config.factor_weights,
            require_feasible=config.require_feasible_windows,
            repair_infeasible=config.repair_infeasible,
            record_evaluations=config.record_evaluations,
        )
        assignment = window_evaluation.best.assignment

        # One full canonical evaluation through the evaluator stack (the
        # window search before it re-costs candidates the same way).
        weighted_sequence = find_weighted_sequence(graph, assignment)
        weighted_cost = evaluate_schedule(
            graph,
            weighted_sequence,
            assignment,
            model,
            deadline=deadline,
            evaluate_at=config.evaluate_at,
        ).cost
        weighted_makespan = assignment.total_execution_time(graph)

        min_cost = window_evaluation.best.cost
        improved_by_weighted = weighted_cost < min_cost - config.improvement_tolerance
        if improved_by_weighted:
            min_cost = weighted_cost

        return IterationRecord(
            index=index,
            sequence=tuple(sequence),
            windows=window_evaluation,
            weighted_sequence=tuple(weighted_sequence),
            weighted_cost=weighted_cost,
            weighted_makespan=weighted_makespan,
            cost=min_cost,
            improved_by_weighted=improved_by_weighted,
        )
