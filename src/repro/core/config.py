"""Configuration of the iterative scheduler.

The defaults reproduce the paper's algorithm exactly; the extra knobs exist
for the robustness and ablation experiments described in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..scheduling.cost import EVALUATION_MODES
from .factors import FactorWeights

__all__ = ["SchedulerConfig"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Tuning knobs for :func:`repro.core.battery_aware_schedule`.

    Attributes
    ----------
    max_iterations:
        Hard cap on the number of outer iterations.  The paper's stopping
        rule (no improvement between consecutive iterations) normally fires
        after a handful of iterations; the cap only guards against
        pathological oscillation.
    evaluate_at:
        Where the battery cost sigma is evaluated: ``"completion"`` (paper
        default, at the schedule's makespan) or ``"deadline"`` (credits
        recovery during the idle tail).
    factor_weights:
        Optional per-factor weights for the suitability ``B``; ``None`` means
        the paper's plain sum.  Used by the ablation experiments.
    require_feasible_windows:
        Only let deadline-respecting windows win the per-iteration
        comparison.
    repair_infeasible:
        Repair window assignments that overshoot the deadline by promoting
        cheap tasks to faster design points.
    record_evaluations:
        Keep the per-candidate factor breakdowns inside each window record
        (memory-heavier; useful for tracing the illustrative example).
    improvement_tolerance:
        Minimum cost decrease (mA·min) that counts as an improvement for the
        stopping rule.
    """

    max_iterations: int = 25
    evaluate_at: str = "completion"
    factor_weights: Optional[FactorWeights] = None
    require_feasible_windows: bool = True
    repair_infeasible: bool = True
    record_evaluations: bool = False
    improvement_tolerance: float = 1e-9

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {self.max_iterations!r}"
            )
        if self.evaluate_at not in EVALUATION_MODES:
            raise ConfigurationError(
                f"evaluate_at must be one of {EVALUATION_MODES}, got {self.evaluate_at!r}"
            )
        if self.improvement_tolerance < 0:
            raise ConfigurationError("improvement_tolerance must be >= 0")
