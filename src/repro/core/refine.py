"""Local-search refinement of a schedule (extension beyond the paper).

The paper stops as soon as an outer iteration fails to improve.  A cheap way
to squeeze out a little more battery capacity — and a natural "future work"
extension — is a hill-climbing pass over the final solution:

* **sequence moves**: swap two adjacent tasks when the precedence edges
  allow it (this directly exploits the battery model's preference for
  non-increasing current profiles);
* **assignment moves**: shift a single task one design-point column up or
  down, provided the deadline still holds.

Moves are applied greedily (best-improvement per sweep) until a full sweep
finds nothing better or the sweep budget is exhausted.  The result is
returned as a new :class:`~repro.core.result.SchedulingSolution` carrying
the original iteration history, so it can be dropped into any code that
consumes scheduler output.

Both move kinds are exactly the neighbourhood moves of the
:class:`~repro.scheduling.IncrementalCostEvaluator` (an adjacent swap is a
relocation by one position), so the sweep is driven through one evaluator:
each candidate re-costs only the schedule prefix the move touches, and an
accepted move becomes the next state via ``apply`` instead of a rebuild.
"""

from __future__ import annotations

from typing import Optional

from ..battery import BatteryModel
from ..errors import ConfigurationError
from ..scheduling import IncrementalCostEvaluator, SchedulingProblem
from .result import SchedulingSolution

__all__ = ["refine_solution"]


def refine_solution(
    problem: SchedulingProblem,
    solution: SchedulingSolution,
    model: Optional[BatteryModel] = None,
    max_sweeps: int = 20,
) -> SchedulingSolution:
    """Hill-climb around a solution with adjacent swaps and single-column shifts.

    Parameters
    ----------
    problem:
        The problem the solution belongs to (supplies the graph, deadline and
        battery model).
    solution:
        Starting point, normally the output of
        :func:`~repro.core.battery_aware_schedule`.
    model:
        Battery model override; defaults to the problem's analytical model.
    max_sweeps:
        Upper bound on full improvement sweeps (each sweep examines every
        adjacent pair and every single-column shift once).

    Returns
    -------
    SchedulingSolution
        With a cost no larger than the input's; all other metadata (iteration
        history, convergence flag) is carried over unchanged.
    """
    if max_sweeps < 1:
        raise ConfigurationError("max_sweeps must be >= 1")
    graph = problem.graph
    deadline = problem.deadline
    battery_model = model if model is not None else problem.model()

    evaluator = IncrementalCostEvaluator(
        graph, solution.sequence, solution.assignment, battery_model,
        track_undo=False,  # the sweep commits improvements only, never undoes
    )
    best_cost = solution.cost

    edges = set(graph.edges())
    design_point_counts = {task.name: task.num_design_points for task in graph}

    for _ in range(max_sweeps):
        improved = False

        # Adjacent sequence swaps (precedence-safe by construction: only the
        # direct edge between the two swapped tasks can be violated).  A swap
        # of positions (i, i+1) is the relocate move "put sequence[i] at
        # position i+1".
        for index in range(len(evaluator.sequence) - 1):
            sequence = evaluator.sequence
            first, second = sequence[index], sequence[index + 1]
            if (first, second) in edges:
                continue
            proposal = evaluator.propose_relocate(first, index + 1)
            if proposal.cost < best_cost - 1e-9:
                evaluator.apply(proposal)
                best_cost = proposal.cost
                improved = True

        # Single-task design-point shifts.
        for name in evaluator.sequence:
            for delta in (-1, 1):
                column = evaluator.columns[name] + delta
                if not (0 <= column < design_point_counts[name]):
                    continue
                if evaluator.candidate_makespan(name, column) > deadline + 1e-9:
                    continue
                proposal = evaluator.propose_design_point(name, column)
                if proposal.cost < best_cost - 1e-9:
                    evaluator.apply(proposal)
                    best_cost = proposal.cost
                    improved = True

        if not improved:
            break

    assignment = evaluator.assignment()
    return SchedulingSolution(
        graph=graph,
        deadline=deadline,
        sequence=evaluator.sequence,
        assignment=assignment,
        cost=best_cost,
        makespan=assignment.total_execution_time(graph),
        iterations=solution.iterations,
        converged=solution.converged,
    )
