"""Local-search refinement of a schedule (extension beyond the paper).

The paper stops as soon as an outer iteration fails to improve.  A cheap way
to squeeze out a little more battery capacity — and a natural "future work"
extension — is a hill-climbing pass over the final solution:

* **sequence moves**: swap two adjacent tasks when the precedence edges
  allow it (this directly exploits the battery model's preference for
  non-increasing current profiles);
* **assignment moves**: shift a single task one design-point column up or
  down, provided the deadline still holds.

Moves are applied greedily (best-improvement per sweep) until a full sweep
finds nothing better or the sweep budget is exhausted.  The result is
returned as a new :class:`~repro.core.result.SchedulingSolution` carrying
the original iteration history, so it can be dropped into any code that
consumes scheduler output.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..battery import BatteryModel
from ..errors import ConfigurationError
from ..scheduling import DesignPointAssignment, SchedulingProblem, battery_cost
from .result import SchedulingSolution

__all__ = ["refine_solution"]


def refine_solution(
    problem: SchedulingProblem,
    solution: SchedulingSolution,
    model: Optional[BatteryModel] = None,
    max_sweeps: int = 20,
) -> SchedulingSolution:
    """Hill-climb around a solution with adjacent swaps and single-column shifts.

    Parameters
    ----------
    problem:
        The problem the solution belongs to (supplies the graph, deadline and
        battery model).
    solution:
        Starting point, normally the output of
        :func:`~repro.core.battery_aware_schedule`.
    model:
        Battery model override; defaults to the problem's analytical model.
    max_sweeps:
        Upper bound on full improvement sweeps (each sweep examines every
        adjacent pair and every single-column shift once).

    Returns
    -------
    SchedulingSolution
        With a cost no larger than the input's; all other metadata (iteration
        history, convergence flag) is carried over unchanged.
    """
    if max_sweeps < 1:
        raise ConfigurationError("max_sweeps must be >= 1")
    graph = problem.graph
    deadline = problem.deadline
    battery_model = model if model is not None else problem.model()

    sequence: List[str] = list(solution.sequence)
    columns = dict(solution.assignment)
    best_cost = solution.cost

    def evaluate(seq: List[str], cols: dict) -> float:
        return battery_cost(graph, seq, DesignPointAssignment(cols), battery_model)

    edges = set(graph.edges())
    design_point_counts = {task.name: task.num_design_points for task in graph}
    durations = {
        task.name: [dp.execution_time for dp in task.ordered_design_points()]
        for task in graph
    }
    makespan = sum(durations[name][columns[name]] for name in sequence)

    for _ in range(max_sweeps):
        improved = False

        # Adjacent sequence swaps (precedence-safe by construction: only the
        # direct edge between the two swapped tasks can be violated).
        for index in range(len(sequence) - 1):
            first, second = sequence[index], sequence[index + 1]
            if (first, second) in edges:
                continue
            candidate = list(sequence)
            candidate[index], candidate[index + 1] = second, first
            cost = evaluate(candidate, columns)
            if cost < best_cost - 1e-9:
                sequence = candidate
                best_cost = cost
                improved = True

        # Single-task design-point shifts.
        for name in sequence:
            for delta in (-1, 1):
                column = columns[name] + delta
                if not (0 <= column < design_point_counts[name]):
                    continue
                new_makespan = (
                    makespan - durations[name][columns[name]] + durations[name][column]
                )
                if new_makespan > deadline + 1e-9:
                    continue
                candidate_columns = dict(columns)
                candidate_columns[name] = column
                cost = evaluate(sequence, candidate_columns)
                if cost < best_cost - 1e-9:
                    columns = candidate_columns
                    makespan = new_makespan
                    best_cost = cost
                    improved = True

        if not improved:
            break

    assignment = DesignPointAssignment(columns)
    return SchedulingSolution(
        graph=graph,
        deadline=deadline,
        sequence=tuple(sequence),
        assignment=assignment,
        cost=best_cost,
        makespan=assignment.total_execution_time(graph),
        iterations=solution.iterations,
        converged=solution.converged,
    )
