"""The five suitability factors and their combination (Section 4).

The suitability ``B`` of assigning a particular design point to the task
currently under consideration is the sum of five dimensionless factors, each
of which the paper wants to be *small*:

* **SR** (slack ratio) — fraction of the deadline still unused by the tasks
  fixed so far plus the tagged one; small SR means the slack is being spent.
* **CR** (current ratio) — the design point's current normalised over the
  global current range; small CR favours low-current design points.
* **ENR** (energy ratio) — total energy of the tentative assignment
  normalised between the all-minimum and all-maximum energies.
* **CIF** (current increase fraction) — fraction of adjacent positions in
  the sequence whose current increases; the battery model rewards
  non-increasing discharge profiles, so small CIF is better.
* **DPF** (design-point fraction) — penalises how many high-power design
  points the *free* (not yet decided) tasks would be forced into in order to
  still meet the deadline; infinite when the deadline cannot be met at all.

This module implements each factor as a standalone, documented function so
that they can be tested and ablated independently; the in-algorithm
composition lives in :mod:`repro.core.choose`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "FactorValues",
    "FactorWeights",
    "slack_ratio",
    "current_ratio",
    "energy_ratio",
    "current_increase_fraction",
    "design_point_fraction",
    "windowed_design_point_fraction",
    "suitability",
]


@dataclass(frozen=True)
class FactorValues:
    """The five factor values for one candidate design point, plus their sum."""

    slack_ratio: float
    current_ratio: float
    energy_ratio: float
    current_increase_fraction: float
    design_point_fraction: float

    @property
    def suitability(self) -> float:
        """The paper's ``B = SR + CR + ENR + CIF + DPF`` (lower is better)."""
        return (
            self.slack_ratio
            + self.current_ratio
            + self.energy_ratio
            + self.current_increase_fraction
            + self.design_point_fraction
        )

    def weighted(self, weights: "FactorWeights") -> float:
        """Weighted combination used by the ablation experiments."""
        return (
            weights.slack_ratio * self.slack_ratio
            + weights.current_ratio * self.current_ratio
            + weights.energy_ratio * self.energy_ratio
            + weights.current_increase_fraction * self.current_increase_fraction
            + weights.design_point_fraction * self.design_point_fraction
        )


@dataclass(frozen=True)
class FactorWeights:
    """Per-factor multipliers (all 1.0 reproduces the paper's ``B``).

    The ablation experiment (DESIGN.md E8) zeroes one weight at a time to
    measure how much each factor contributes to solution quality.
    """

    slack_ratio: float = 1.0
    current_ratio: float = 1.0
    energy_ratio: float = 1.0
    current_increase_fraction: float = 1.0
    design_point_fraction: float = 1.0

    @classmethod
    def paper(cls) -> "FactorWeights":
        """The unweighted sum used in the paper."""
        return cls()

    @classmethod
    def without(cls, factor: str) -> "FactorWeights":
        """All-ones weights with one named factor disabled."""
        valid = {
            "slack_ratio",
            "current_ratio",
            "energy_ratio",
            "current_increase_fraction",
            "design_point_fraction",
        }
        if factor not in valid:
            raise ConfigurationError(f"unknown factor {factor!r}; choose from {sorted(valid)}")
        return cls(**{factor: 0.0})


# ---------------------------------------------------------------------------
# individual factors
# ---------------------------------------------------------------------------

def slack_ratio(elapsed_time: float, deadline: float) -> float:
    """``SR = (d - t) / d`` — the fraction of the deadline left unused.

    ``elapsed_time`` is the execution time accounted for so far (fixed tasks
    plus the tagged candidate).  The value may be negative when the deadline
    is already exceeded, which correctly makes such candidates look *better*
    on this factor alone — the DPF factor is responsible for rejecting
    genuinely infeasible choices.
    """
    if deadline <= 0:
        raise ConfigurationError(f"deadline must be > 0, got {deadline!r}")
    return (deadline - elapsed_time) / deadline


def current_ratio(current: float, current_min: float, current_max: float) -> float:
    """``CR = (I - I_min) / (I_max - I_min)``, normalised to [0, 1].

    ``current_min`` / ``current_max`` are the global extremes over every
    design point of every task.  When all currents are identical the ratio is
    defined as 0 (the factor then carries no information).
    """
    spread = current_max - current_min
    if spread <= 0:
        return 0.0
    return (current - current_min) / spread


def energy_ratio(total_energy: float, energy_min: float, energy_max: float) -> float:
    """``ENR = (En - E_min) / (E_max - E_min)``, normalised to [0, 1].

    ``E_min`` / ``E_max`` are the sequence energies with every task at its
    cheapest / most expensive design point.  Degenerates to 0 when the two
    bounds coincide.
    """
    spread = energy_max - energy_min
    if spread <= 0:
        return 0.0
    return (total_energy - energy_min) / spread


def current_increase_fraction(currents: Sequence[float]) -> float:
    """Fraction of adjacent pairs whose current increases (``CIF``).

    A non-increasing discharge profile is optimal for the battery model when
    dependencies are ignored (Section 3), so the factor penalises sequences /
    assignments that create rising current steps.  Sequences with fewer than
    two tasks have no transitions and score 0.
    """
    values = list(currents)
    if len(values) < 2:
        return 0.0
    increases = sum(1 for a, b in zip(values, values[1:]) if a < b)
    return increases / (len(values) - 1)


def design_point_fraction(
    selection: Sequence[int],
    num_design_points: int,
    free_positions: Iterable[int],
) -> float:
    """Equation 2/3: penalty for free tasks pushed onto high-power design points.

    ``DPF = sum_k (m - k) * f * F_k`` with ``f = 1/(m-1)`` and
    ``F_k`` the fraction of *free* tasks assigned to column ``k``
    (``k`` is 1-based in the paper; ``selection`` uses 0-based columns here).
    The most power-hungry column is penalised with weight 1, the least
    power-hungry one with weight 0.

    Matches the paper's Figure 4 worked example: with ``m = 4`` and free
    tasks T1 (column 2, i.e. DP2) and T2 (DP4), DPF = 1/3.
    """
    free = list(free_positions)
    if num_design_points < 2:
        return 0.0
    if not free:
        return 0.0
    f = 1.0 / (num_design_points - 1)
    total = 0.0
    for k in range(num_design_points):  # 0-based column
        occupancy = sum(1 for position in free if selection[position] == k)
        fraction = occupancy / len(free)
        weight = (num_design_points - 1 - k) * f
        total += weight * fraction
    return total


def windowed_design_point_fraction(
    selection: Sequence[int],
    num_design_points: int,
    window_start: int,
    free_positions: Iterable[int],
) -> float:
    """The Figure 2 pseudocode's window-relative DPF.

    Only the columns inside the window ``[window_start, m-1]`` can hold
    tasks; the penalty weight decreases linearly from 1 for the window's
    most powerful column to ``1/(m - window_start - 1)`` for its second-least
    powerful column, and 0 for the least powerful column.  With
    ``window_start = 0`` this coincides with :func:`design_point_fraction`.
    """
    free = list(free_positions)
    width = num_design_points - window_start
    if width < 2 or not free:
        return 0.0
    steps = width - 1  # number of penalised columns
    factor = 1.0 / steps
    total = 0.0
    for offset in range(steps):
        column = window_start + offset
        occupancy = sum(1 for position in free if selection[position] == column)
        weight = (steps - offset) * factor
        total += weight * occupancy / len(free)
    return total


def suitability(
    slack: float,
    current: float,
    energy: float,
    cif: float,
    dpf: float,
    weights: Optional[FactorWeights] = None,
) -> float:
    """Combine the five factors into the suitability ``B`` (lower is better)."""
    values = FactorValues(
        slack_ratio=slack,
        current_ratio=current,
        energy_ratio=energy,
        current_increase_fraction=cif,
        design_point_fraction=dpf,
    )
    if weights is None:
        return values.suitability
    return values.weighted(weights)
