"""Weighted re-sequencing between iterations (``FindWeightedSequence``, Equation 4).

After a design-point assignment has been chosen, the paper refines the task
*order* for the next iteration: every task ``v`` receives the weight

    w(v) = sum of the chosen design-point currents over the subgraph G_v
           rooted at v (v itself included),

and a list scheduler places ready tasks with larger weights first.  The
intuition follows the property quoted in Section 3: with the
Rakhmatov–Vrudhula model, discharging high currents early (and letting the
battery recover afterwards) costs less apparent charge than the reverse, so
tasks that dominate large high-current subgraphs should be pulled forward.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..scheduling import DesignPointAssignment, sequence_by_weights
from ..taskgraph import TaskGraph

__all__ = ["equation4_weights", "find_weighted_sequence"]


def equation4_weights(
    graph: TaskGraph, assignment: DesignPointAssignment
) -> Dict[str, float]:
    """Equation 4 weights: total chosen-design-point current of each rooted subgraph."""
    assignment.validate(graph)
    chosen_currents = {
        name: assignment.design_point(graph, name).current for name in graph.task_names()
    }
    return {
        name: sum(chosen_currents[member] for member in graph.subgraph_rooted_at(name))
        for name in graph.task_names()
    }


def find_weighted_sequence(
    graph: TaskGraph, assignment: DesignPointAssignment
) -> Tuple[str, ...]:
    """The paper's ``FindWeightedSequence``: list-schedule with Equation 4 weights."""
    return sequence_by_weights(
        graph, equation4_weights(graph, assignment), higher_first=True
    )
