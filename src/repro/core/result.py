"""Result records produced by the iterative scheduler.

The paper reports its progress per iteration (Tables 2 and 3): the task
sequence used, the design-point assignment chosen per window, the battery
capacity and duration of each window's result, and the weighted sequence
prepared for the next iteration.  :class:`IterationRecord` captures exactly
that, and :class:`SchedulingSolution` bundles the best solution found with
the full iteration history so experiments and tests can reconstruct the
tables without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..scheduling import DesignPointAssignment, Schedule
from ..taskgraph import TaskGraph
from .windows import WindowEvaluation, WindowRecord

__all__ = ["IterationRecord", "SchedulingSolution"]


@dataclass(frozen=True)
class IterationRecord:
    """Everything the algorithm did during one outer iteration."""

    index: int
    """1-based iteration number (matches the paper's "Iter" column)."""

    sequence: Tuple[str, ...]
    """Task sequence used for this iteration (the paper's ``S<index>``)."""

    windows: WindowEvaluation
    """All windows evaluated for the sequence, including the winning one."""

    weighted_sequence: Tuple[str, ...]
    """Sequence produced by Equation 4 for the next iteration (``S<index>w``)."""

    weighted_cost: float
    """Battery cost of the weighted sequence under the winning assignment."""

    weighted_makespan: float
    """Makespan of the weighted sequence (identical task set, same sum of times)."""

    cost: float
    """The iteration's ``MinBCost``: min(winning window cost, weighted cost)."""

    improved_by_weighted: bool
    """True when the weighted sequence beat the winning window's cost."""

    @property
    def best_window(self) -> WindowRecord:
        """The window whose assignment won this iteration."""
        return self.windows.best

    @property
    def assignment(self) -> DesignPointAssignment:
        """Design-point assignment selected in this iteration."""
        return self.windows.best.assignment

    @property
    def best_sequence(self) -> Tuple[str, ...]:
        """The sequence achieving this iteration's ``cost``."""
        return self.weighted_sequence if self.improved_by_weighted else self.sequence


@dataclass(frozen=True)
class SchedulingSolution:
    """Final output of the battery-aware scheduler."""

    graph: TaskGraph
    deadline: float
    sequence: Tuple[str, ...]
    assignment: DesignPointAssignment
    cost: float
    makespan: float
    iterations: Tuple[IterationRecord, ...]
    converged: bool
    """True when the paper's stopping rule fired (no improvement), False when
    the iteration cap was hit first."""

    @property
    def num_iterations(self) -> int:
        """Number of outer iterations executed."""
        return len(self.iterations)

    @property
    def feasible(self) -> bool:
        """True when the returned schedule meets the deadline."""
        return self.makespan <= self.deadline + 1e-9

    def schedule(self) -> Schedule:
        """Materialise the winning schedule (start/finish times per task)."""
        return Schedule(self.graph, self.sequence, self.assignment)

    def design_point_labels(self, prefix: str = "P") -> Tuple[str, ...]:
        """Paper-style per-slot design-point labels of the winning schedule."""
        return self.schedule().design_point_labels(prefix=prefix)

    def iteration_costs(self) -> Tuple[float, ...]:
        """Per-iteration ``MinBCost`` values (non-increasing until convergence)."""
        return tuple(record.cost for record in self.iterations)

    def to_dict(self) -> dict:
        """Compact JSON-friendly summary (omits per-window assignments)."""
        return {
            "graph": self.graph.name,
            "deadline": self.deadline,
            "sequence": list(self.sequence),
            "assignment": self.assignment.to_dict(),
            "cost": self.cost,
            "makespan": self.makespan,
            "converged": self.converged,
            "iterations": [
                {
                    "index": record.index,
                    "sequence": list(record.sequence),
                    "cost": record.cost,
                    "best_window": record.best_window.label,
                    "windows": [
                        {
                            "label": window.label,
                            "cost": window.cost,
                            "makespan": window.makespan,
                            "feasible": window.feasible,
                        }
                        for window in record.windows.records
                    ],
                    "weighted_sequence": list(record.weighted_sequence),
                    "weighted_cost": record.weighted_cost,
                }
                for record in self.iterations
            ],
        }

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        status = "meets" if self.feasible else "MISSES"
        return (
            f"{self.graph.name or 'graph'}: sigma={self.cost:.1f} mA·min, "
            f"makespan={self.makespan:.1f} ({status} deadline {self.deadline:g}), "
            f"{self.num_iterations} iterations, "
            f"{'converged' if self.converged else 'iteration cap reached'}"
        )
