"""Sequence-ordered matrices used by the iterative algorithm.

Section 4 of the paper defines the data layout its pseudocode manipulates:

* the execution-time matrix ``D`` (n x m) — row *i* holds the execution
  times of the *i*-th task **in the current sequence**, columns sorted in
  ascending order of execution time (column 1 fastest);
* the current matrix ``I`` (n x m) — same layout, currents in descending
  order (column 1 highest);
* the selection matrix ``S`` — one 1 per row marking the chosen column; the
  library represents it as a *selection vector* ``sel`` with
  ``sel[i] = chosen column`` (0-based), which is equivalent and cheaper;
* the energy vector ``E`` — sequence positions sorted by increasing average
  design-point energy, used as the promotion priority inside the DPF
  calculation.

Because the matrices are keyed by sequence position, they must be rebuilt
whenever the sequence changes (once per iteration of the top-level
algorithm); :class:`SequencedMatrices` does that once and caches every
derived quantity the factor calculations need (global current extremes,
sequence energy bounds, per-column completion times).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..scheduling import DesignPointAssignment
from ..taskgraph import TaskGraph, validate_sequence

__all__ = ["SequencedMatrices"]


class SequencedMatrices:
    """The paper's ``D``/``I``/``E`` data for one task sequence.

    Parameters
    ----------
    graph:
        Task graph; every task must expose the same number of design points.
    sequence:
        Precedence-respecting total order of the graph's tasks.  Row ``i`` of
        every matrix refers to ``sequence[i]``.
    """

    def __init__(self, graph: TaskGraph, sequence: Sequence[str]) -> None:
        validate_sequence(graph, sequence)
        self.graph = graph
        self.sequence: Tuple[str, ...] = tuple(sequence)
        self.n = len(self.sequence)
        self.m = graph.uniform_design_point_count()

        durations = np.empty((self.n, self.m), dtype=float)
        currents = np.empty((self.n, self.m), dtype=float)
        energies = np.empty((self.n, self.m), dtype=float)
        for row, name in enumerate(self.sequence):
            points = graph.task(name).ordered_design_points()
            durations[row, :] = [dp.execution_time for dp in points]
            currents[row, :] = [dp.current for dp in points]
            energies[row, :] = [dp.energy for dp in points]

        #: Execution-time matrix ``D`` (rows ascending by construction).
        self.durations = durations
        #: Current matrix ``I`` (rows descending for power-monotone tasks).
        self.currents = currents
        #: Per-design-point energy matrix (current * voltage * duration).
        self.energies = energies

        #: Global current extremes over every design point of every task,
        #: used by the Current Ratio normalisation.
        self.current_min = float(currents.min())
        self.current_max = float(currents.max())

        #: Sequence energy bounds ``E_min`` / ``E_max`` used by the Energy
        #: Ratio: the total energy when every task uses its cheapest
        #: (respectively most expensive) design point.
        self.energy_min = float(energies.min(axis=1).sum())
        self.energy_max = float(energies.max(axis=1).sum())

        #: Average design-point energy per sequence position (row).
        self.average_energies = energies.mean(axis=1)

        #: The paper's energy vector ``E``: sequence positions sorted by
        #: increasing average energy (ties broken by position for determinism).
        self.energy_vector: Tuple[int, ...] = tuple(
            int(i) for i in np.lexsort((np.arange(self.n), self.average_energies))
        )

        #: Completion time per column: ``CT(k)`` is the makespan when every
        #: task uses column ``k`` (0-based).
        self.column_times = durations.sum(axis=0)

    # ------------------------------------------------------------------
    # selections
    # ------------------------------------------------------------------
    def lowest_power_selection(self) -> np.ndarray:
        """Selection vector assigning every task to the last (lowest-power) column."""
        return np.full(self.n, self.m - 1, dtype=int)

    def column_time(self, column: int) -> float:
        """``CT(column)``: total execution time when all tasks use ``column``."""
        return float(self.column_times[column])

    def selection_durations(self, selection: np.ndarray) -> np.ndarray:
        """Per-position execution times under a selection vector."""
        return self.durations[np.arange(self.n), selection]

    def selection_currents(self, selection: np.ndarray) -> np.ndarray:
        """Per-position currents under a selection vector."""
        return self.currents[np.arange(self.n), selection]

    def selection_energies(self, selection: np.ndarray) -> np.ndarray:
        """Per-position energies under a selection vector."""
        return self.energies[np.arange(self.n), selection]

    def total_time(self, selection: np.ndarray) -> float:
        """Sequential makespan of a selection (sum of chosen execution times)."""
        return float(self.selection_durations(selection).sum())

    def total_energy(self, selection: np.ndarray) -> float:
        """Total energy of a selection (the paper's ``En``)."""
        return float(self.selection_energies(selection).sum())

    # ------------------------------------------------------------------
    # conversions to/from the public assignment type
    # ------------------------------------------------------------------
    def to_assignment(self, selection: np.ndarray) -> DesignPointAssignment:
        """Convert a selection vector (by sequence position) to a task-keyed assignment."""
        if len(selection) != self.n:
            raise ConfigurationError(
                f"selection has {len(selection)} entries for {self.n} tasks"
            )
        return DesignPointAssignment(
            {name: int(selection[row]) for row, name in enumerate(self.sequence)}
        )

    def from_assignment(self, assignment: DesignPointAssignment) -> np.ndarray:
        """Convert a task-keyed assignment to a selection vector for this sequence."""
        assignment.validate(self.graph)
        return np.array([assignment[name] for name in self.sequence], dtype=int)

    def __repr__(self) -> str:
        return f"SequencedMatrices(n={self.n}, m={self.m})"
