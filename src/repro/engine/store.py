"""Append-only JSONL result store with resume support.

Every completed :class:`~repro.engine.jobs.JobResult` is appended to a
``*.jsonl`` file as one JSON object per line, flushed immediately, so a run
killed half-way leaves a valid store behind.  On the next run the engine
loads the store, skips every job whose key already has a *successful* result
(failed jobs are retried — their error may have been transient), and only
executes the remainder.

Append-only means a key can legitimately appear more than once (a retried
failure, a forced re-run); the last line wins on load.  Lines that fail to
parse — e.g. the torn final line of an interrupted run — are counted and
skipped, never fatal.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Set, Tuple, Union

from .jobs import Job, JobResult

__all__ = ["ResultStore"]

_PathLike = Union[str, Path]


class ResultStore:
    """A durable key -> result-record mapping backed by one JSONL file.

    ``record_type`` is the record class stored in this file —
    :class:`JobResult` (the default) for experiment runs,
    :class:`~repro.engine.simjobs.SimulationRecord` for simulation runs.
    Any class with ``key``/``ok``/``to_dict``/``from_dict`` fits; one store
    file holds exactly one record type.
    """

    def __init__(self, path: _PathLike, record_type: type = JobResult) -> None:
        self.path = Path(path)
        self.record_type = record_type
        self.corrupt_lines = 0

    def exists(self) -> bool:
        """True when the backing file is present on disk."""
        return self.path.exists()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def load(self) -> Dict[str, JobResult]:
        """All stored results, last write per key winning."""
        results: Dict[str, JobResult] = {}
        self.corrupt_lines = 0
        if not self.path.exists():
            return results
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    result = self.record_type.from_dict(json.loads(line))
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    self.corrupt_lines += 1
                    continue
                results[result.key] = result
        return results

    def completed_keys(self, include_failed: bool = False) -> Set[str]:
        """Keys that already hold a result (successful ones only by default)."""
        return {
            key
            for key, result in self.load().items()
            if include_failed or result.ok
        }

    def split_pending(
        self, jobs: Iterable[Job]
    ) -> Tuple[List[Job], Dict[str, JobResult]]:
        """Partition ``jobs`` into (still to run, already-done key -> result).

        A job counts as done only when the store holds a *successful* result
        under its key; failed results are returned for inspection but their
        jobs are scheduled again.
        """
        known = self.load()
        pending: List[Job] = []
        done: Dict[str, JobResult] = {}
        for job in jobs:
            key = job.key()
            result = known.get(key)
            if result is not None and result.ok:
                done[key] = result
            else:
                pending.append(job)
        return pending, done

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, result: JobResult) -> None:
        """Durably append one result (parent directory is created on demand)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(result.to_dict(), sort_keys=True))
            handle.write("\n")
            handle.flush()

    def append_many(self, results: Iterable[JobResult]) -> None:
        """Append several results with a single open/flush cycle."""
        results = list(results)
        if not results:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            for result in results:
                handle.write(json.dumps(result.to_dict(), sort_keys=True))
                handle.write("\n")
            handle.flush()

    def __len__(self) -> int:
        return len(self.load())

    def __repr__(self) -> str:
        return f"ResultStore({str(self.path)!r})"
