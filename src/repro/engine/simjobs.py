"""Simulation jobs: runtime-simulator runs as engine work items.

A :class:`SimulationJob` is to :mod:`repro.sim` what
:class:`~repro.engine.Job` is to the offline algorithms: pure data — a
:class:`~repro.scenarios.ScenarioSpec`, a policy name, policy parameters,
a seed and a replication index — hashed into a stable content key, shipped
to worker processes, executed with per-job error isolation, and resumable
through the same append-only :class:`~repro.engine.ResultStore` (with
``record_type=SimulationRecord``).

Determinism mirrors the experiment engine's guarantee: a job's outcome is
a pure function of its content (the perturbation stream is seeded by
``(seed, replication)``), so serial, parallel and resumed runs of the same
job list produce byte-identical records, and a store never goes stale
under re-ordering.

>>> from repro.engine import SimulationJob, run_simulation_jobs
>>> from repro.scenarios import default_registry
>>> job = SimulationJob(spec=default_registry().get("g3"), policy="greedy-energy")
>>> run = run_simulation_jobs([job])
>>> run.ok and run.records[0].feasible
True
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import traceback as traceback_module

from ..errors import ConfigurationError
from ..obs import RECORDER as _OBS
from ..scenarios import ScenarioSpec
from .cache import BatteryCostCache, CachedBatteryModel
from .executors import SerialExecutor, _job_metrics, _worker_cache
from .jobs import _canonical
from .store import ResultStore

__all__ = [
    "SimulationJob",
    "SimulationRecord",
    "SimulationRun",
    "execute_simulation_job",
    "run_simulation_jobs",
]


@dataclass(frozen=True)
class SimulationJob:
    """One (scenario, policy, seed, replication) simulation work item.

    Attributes
    ----------
    spec:
        The scenario to simulate — its problem *and* its stochastic tier.
    policy:
        Registered policy name (see :func:`repro.sim.policy_names`).
    params:
        JSON-serialisable policy parameters (e.g. ``{"algorithm":
        "annealing", "algorithm_params": {"seed": 7}}`` for a replay of a
        different offline schedule, or ``{"soc_reserve": 0.4}`` for the
        reactive policy).
    seed, replication:
        Perturbation stream identity; replications of one scenario/policy
        cell share ``seed`` and vary ``replication``.
    evaluate_at:
        Sigma evaluation point, as in the offline stack.
    """

    spec: ScenarioSpec
    policy: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    replication: int = 0
    evaluate_at: str = "completion"

    def __post_init__(self) -> None:
        from ..sim.schedulers import POLICIES, policy_names

        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown simulation policy {self.policy!r}; "
                f"choose from {list(policy_names())}"
            )
        object.__setattr__(self, "params", dict(self.params))

    # ------------------------------------------------------------------
    def job_spec(self) -> Dict[str, Any]:
        """The complete, JSON-serialisable description of this job."""
        scenario = self.spec.to_dict()
        # Presentational fields are excluded, like Job.key() excludes the
        # problem's display name: equal work gets equal keys.
        scenario.pop("name", None)
        scenario.pop("description", None)
        return {
            "scenario": scenario,
            "policy": self.policy,
            "params": _canonical(self.params),
            "seed": self.seed,
            "replication": self.replication,
            "evaluate_at": self.evaluate_at,
        }

    def key(self) -> str:
        """Stable content hash identifying this job across runs and machines."""
        cached = self.__dict__.get("_key")
        if cached is None:
            payload = json.dumps(self.job_spec(), sort_keys=True, separators=(",", ":"))
            cached = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]
            object.__setattr__(self, "_key", cached)
        return cached

    @property
    def label(self) -> str:
        """Human-readable ``scenario/policy#replication`` tag."""
        return f"{self.spec.name}/{self.policy}#{self.replication}"

    def failure_result(self, error: str) -> "SimulationRecord":
        """The record shape for a failure outside the runner (pool loss)."""
        return SimulationRecord(
            key=self.key(),
            scenario=self.spec.name,
            policy=self.policy,
            seed=self.seed,
            replication=self.replication,
            error=error,
        )

    def __repr__(self) -> str:
        return f"SimulationJob({self.label}, seed={self.seed})"


@dataclass(frozen=True)
class SimulationRecord:
    """Store-friendly outcome of one :class:`SimulationJob`.

    A completed run carries the realised-timeline essentials and
    ``error is None``; a failed run (including a retry-budget-exhausted
    simulation) carries the one-line error and ``None`` elsewhere.
    """

    key: str
    scenario: str
    policy: str
    seed: int = 0
    replication: int = 0
    cost: Optional[float] = None
    makespan: Optional[float] = None
    feasible: Optional[bool] = None
    retries: int = 0
    events: int = 0
    depletion_time: Optional[float] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    traceback: Optional[str] = None
    #: Battery-cache deltas for this job.  In-memory accounting only,
    #: excluded from :meth:`to_dict`: per-job cache traffic depends on which
    #: worker ran the job before, and the stores must stay byte-identical
    #: between serial and parallel runs.
    cache_hits: int = field(default=0, compare=False)
    cache_misses: int = field(default=0, compare=False)
    cache_evictions: int = field(default=0, compare=False)
    #: Per-job observability metrics delta (``repro.obs``), shipped back to
    #: the parent through the process pool.  Never serialised.
    metrics: Optional[Dict[str, Any]] = field(default=None, compare=False, repr=False)

    @property
    def ok(self) -> bool:
        """True when the simulation completed."""
        return self.error is None

    def to_dict(self) -> Dict[str, Any]:
        """JSONL-friendly representation (inverse of :meth:`from_dict`)."""
        return {
            "key": self.key,
            "scenario": self.scenario,
            "policy": self.policy,
            "seed": self.seed,
            "replication": self.replication,
            "cost": self.cost,
            "makespan": self.makespan,
            "feasible": self.feasible,
            "retries": self.retries,
            "events": self.events,
            "depletion_time": self.depletion_time,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
            "traceback": self.traceback,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationRecord":
        """Rebuild a record from its :meth:`to_dict` form."""
        return cls(
            key=str(data["key"]),
            scenario=str(data["scenario"]),
            policy=str(data["policy"]),
            seed=int(data.get("seed", 0)),
            replication=int(data.get("replication", 0)),
            cost=data.get("cost"),
            makespan=data.get("makespan"),
            feasible=data.get("feasible"),
            retries=int(data.get("retries", 0)),
            events=int(data.get("events", 0)),
            depletion_time=data.get("depletion_time"),
            error=data.get("error"),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            traceback=data.get("traceback"),
        )

    def summary(self) -> str:
        """One-line human-readable outcome."""
        if not self.ok:
            return f"{self.scenario}/{self.policy}#{self.replication}: ERROR {self.error}"
        status = "ok" if self.feasible else "DEADLINE MISS"
        return (
            f"{self.scenario}/{self.policy}#{self.replication}: "
            f"sigma={self.cost:.1f}, makespan={self.makespan:.1f} ({status})"
        )


def execute_simulation_job(
    job: SimulationJob, cache: Optional[BatteryCostCache] = None
) -> SimulationRecord:
    """Run one simulation job to completion, capturing any failure.

    The single execution path of serial and parallel runs (module-level so
    worker processes import it by name).  The battery model is wrapped in
    the worker's :class:`~repro.engine.BatteryCostCache`, so the offline
    schedule a ``static-replay`` policy computes — and the live
    state-of-charge queries of the reactive policy — share cached sigma
    evaluations across jobs exactly like experiment jobs do.
    """
    from ..sim.perturbation import rng_for_seed
    from ..sim.runtime import Simulator
    from ..sim.schedulers import make_policy

    if cache is None:
        cache = _worker_cache()
    obs_before = _OBS.counters_snapshot(include_volatile=True) if _OBS.enabled else None
    before = cache.stats.snapshot()
    started = time.perf_counter()
    try:
        with _OBS.span("engine.job", label=job.label):
            problem = job.spec.build_problem()
            model = CachedBatteryModel(problem.model(), cache)
            scheduler = make_policy(job.policy, problem, job.params, model=model)
            result = Simulator(
                problem,
                scheduler,
                perturbation=job.spec.perturbation(),
                rng=rng_for_seed(job.seed, job.replication),
                model=model,
                evaluate_at=job.evaluate_at,
            ).run()
    except Exception as exc:  # noqa: BLE001 - per-job isolation is the point
        used = cache.stats.delta(before)
        return SimulationRecord(
            key=job.key(),
            scenario=job.spec.name,
            policy=job.policy,
            seed=job.seed,
            replication=job.replication,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback_module.format_exc(),
            elapsed_s=time.perf_counter() - started,
            cache_hits=used.hits,
            cache_misses=used.misses,
            cache_evictions=used.evictions,
            metrics=_job_metrics(obs_before, used, kind="simjobs", failed=True),
        )
    used = cache.stats.delta(before)
    return SimulationRecord(
        key=job.key(),
        scenario=job.spec.name,
        policy=job.policy,
        seed=job.seed,
        replication=job.replication,
        cost=result.cost,
        makespan=result.makespan,
        feasible=result.feasible,
        retries=result.retries,
        events=result.events,
        depletion_time=result.depletion_time,
        elapsed_s=time.perf_counter() - started,
        cache_hits=used.hits,
        cache_misses=used.misses,
        cache_evictions=used.evictions,
        metrics=_job_metrics(obs_before, used, kind="simjobs"),
    )


@dataclass(frozen=True)
class SimulationRun:
    """Everything produced by one :func:`run_simulation_jobs` call."""

    jobs: Tuple[SimulationJob, ...]
    records: Tuple[SimulationRecord, ...]
    executed: int
    """Jobs actually simulated in this call."""
    skipped: int
    """Jobs answered from the result store (resume hits)."""

    @property
    def ok(self) -> bool:
        """True when every simulation completed."""
        return all(record.ok for record in self.records)

    def failures(self) -> Tuple[SimulationRecord, ...]:
        """The records that captured an error."""
        return tuple(record for record in self.records if not record.ok)

    @property
    def cache_hits(self) -> int:
        return sum(record.cache_hits for record in self.records)

    @property
    def cache_misses(self) -> int:
        return sum(record.cache_misses for record in self.records)

    @property
    def cache_hit_rate(self) -> float:
        """Battery-cost cache hit rate aggregated over every executed job.

        Per-worker caches report through the per-record deltas (merged back
        by the parallel executor), so the rate covers pool runs too.
        """
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def by_cell(self) -> Dict[Tuple[str, str], List[SimulationRecord]]:
        """Records grouped per (scenario, policy) cell, replication order."""
        grouped: Dict[Tuple[str, str], List[SimulationRecord]] = {}
        for record in self.records:
            grouped.setdefault((record.scenario, record.policy), []).append(record)
        for cell in grouped.values():
            cell.sort(key=lambda record: record.replication)
        return grouped

    def summary(self) -> str:
        """One-line accounting summary."""
        return (
            f"{len(self.records)} simulations ({self.executed} executed, "
            f"{self.skipped} resumed), {len(self.failures())} failed, "
            f"cache hit rate {self.cache_hit_rate:.1%}"
        )


def run_simulation_jobs(
    jobs: Sequence[SimulationJob],
    executor=None,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    progress=None,
) -> SimulationRun:
    """Run simulation jobs through an executor — the sim analogue of
    :func:`repro.engine.run_jobs`.

    Records come back in job order whatever the executor, so downstream
    reports are byte-reproducible; with ``resume=True`` the store answers
    jobs whose key already holds a completed record.  The store must have
    been built with ``record_type=SimulationRecord``, and a custom
    executor must accept the full contract
    ``run(jobs, progress=..., runner=...)`` (simulation jobs are executed
    through :func:`execute_simulation_job`, passed as ``runner``).
    """
    if resume and store is None:
        raise ConfigurationError("resume=True requires a result store")
    if store is not None and store.record_type is not SimulationRecord:
        raise ConfigurationError(
            "simulation runs need a ResultStore(record_type=SimulationRecord); "
            f"this store holds {store.record_type.__name__}"
        )
    jobs = list(jobs)
    executor = executor if executor is not None else SerialExecutor()

    if resume and store is not None:
        pending, done = store.split_pending(jobs)
    else:
        pending, done = list(jobs), {}

    if _OBS.enabled and done:
        _OBS.count("engine.simjobs.resumed", len(done))
    fresh = (
        executor.run(pending, progress=progress, runner=execute_simulation_job)
        if pending
        else []
    )
    if store is not None:
        with _OBS.span("engine.store.append", label=str(store.path.name)):
            store.append_many(fresh)

    by_key: Dict[str, SimulationRecord] = dict(done)
    for record in fresh:
        by_key[record.key] = record
    ordered = tuple(by_key[job.key()] for job in jobs)
    return SimulationRun(
        jobs=tuple(jobs),
        records=ordered,
        executed=len(fresh),
        skipped=len(done),
    )
