"""Simulation jobs: runtime-simulator runs as engine work items.

A :class:`SimulationJob` is to :mod:`repro.sim` what
:class:`~repro.engine.Job` is to the offline algorithms: pure data — a
:class:`~repro.scenarios.ScenarioSpec`, a policy name, policy parameters,
a seed and a replication index — hashed into a stable content key, shipped
to worker processes, executed with per-job error isolation, and resumable
through the same append-only :class:`~repro.engine.ResultStore` (with
``record_type=SimulationRecord``).

Determinism mirrors the experiment engine's guarantee: a job's outcome is
a pure function of its content (the perturbation stream is seeded by
``(seed, replication)``), so serial, parallel and resumed runs of the same
job list produce byte-identical records, and a store never goes stale
under re-ordering.

>>> from repro.engine import SimulationJob, run_simulation_jobs
>>> from repro.scenarios import default_registry
>>> job = SimulationJob(spec=default_registry().get("g3"), policy="greedy-energy")
>>> run = run_simulation_jobs([job])
>>> run.ok and run.records[0].feasible
True
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import traceback as traceback_module

from ..errors import ConfigurationError
from ..obs import RECORDER as _OBS
from ..scenarios import ScenarioSpec
from .cache import BatteryCostCache, CachedBatteryModel
from .executors import SerialExecutor, _job_metrics, _worker_cache
from .jobs import _canonical
from .store import ResultStore

__all__ = [
    "SimulationJob",
    "SimulationRecord",
    "SimulationBatch",
    "SimulationBatchResult",
    "SimulationRun",
    "execute_simulation_job",
    "execute_simulation_batch",
    "run_simulation_jobs",
]

#: Replication lanes per batch work item (``batch="auto"``).  Caps the
#: per-item memory footprint (one live simulator per lane) and keeps one
#: huge cell splittable across pool workers.
DEFAULT_BATCH_SIZE = 256


@dataclass(frozen=True)
class SimulationJob:
    """One (scenario, policy, seed, replication) simulation work item.

    Attributes
    ----------
    spec:
        The scenario to simulate — its problem *and* its stochastic tier.
    policy:
        Registered policy name (see :func:`repro.sim.policy_names`).
    params:
        JSON-serialisable policy parameters (e.g. ``{"algorithm":
        "annealing", "algorithm_params": {"seed": 7}}`` for a replay of a
        different offline schedule, or ``{"soc_reserve": 0.4}`` for the
        reactive policy).
    seed, replication:
        Perturbation stream identity; replications of one scenario/policy
        cell share ``seed`` and vary ``replication``.
    evaluate_at:
        Sigma evaluation point, as in the offline stack.
    """

    spec: ScenarioSpec
    policy: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    replication: int = 0
    evaluate_at: str = "completion"

    def __post_init__(self) -> None:
        from ..sim.schedulers import POLICIES, policy_names

        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown simulation policy {self.policy!r}; "
                f"choose from {list(policy_names())}"
            )
        object.__setattr__(self, "params", dict(self.params))

    # ------------------------------------------------------------------
    def job_spec(self) -> Dict[str, Any]:
        """The complete, JSON-serialisable description of this job."""
        scenario = self.spec.to_dict()
        # Presentational fields are excluded, like Job.key() excludes the
        # problem's display name: equal work gets equal keys.
        scenario.pop("name", None)
        scenario.pop("description", None)
        return {
            "scenario": scenario,
            "policy": self.policy,
            "params": _canonical(self.params),
            "seed": self.seed,
            "replication": self.replication,
            "evaluate_at": self.evaluate_at,
        }

    def key(self) -> str:
        """Stable content hash identifying this job across runs and machines."""
        cached = self.__dict__.get("_key")
        if cached is None:
            payload = json.dumps(self.job_spec(), sort_keys=True, separators=(",", ":"))
            cached = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]
            object.__setattr__(self, "_key", cached)
        return cached

    def cell_key(self) -> str:
        """Content hash of everything but the replication index.

        Jobs sharing a cell key are replications of one Monte Carlo cell:
        same scenario, policy, parameters, seed and evaluation point.
        Exactly these may run as lockstep lanes of one
        :class:`SimulationBatch` (the perturbation stream is the only
        per-replication input, and each lane owns its own).
        """
        cached = self.__dict__.get("_cell_key")
        if cached is None:
            spec = self.job_spec()
            spec.pop("replication", None)
            payload = json.dumps(spec, sort_keys=True, separators=(",", ":"))
            cached = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]
            object.__setattr__(self, "_cell_key", cached)
        return cached

    @property
    def label(self) -> str:
        """Human-readable ``scenario/policy#replication`` tag."""
        return f"{self.spec.name}/{self.policy}#{self.replication}"

    def failure_result(self, error: str) -> "SimulationRecord":
        """The record shape for a failure outside the runner (pool loss)."""
        return SimulationRecord(
            key=self.key(),
            scenario=self.spec.name,
            policy=self.policy,
            seed=self.seed,
            replication=self.replication,
            error=error,
        )

    def __repr__(self) -> str:
        return f"SimulationJob({self.label}, seed={self.seed})"


@dataclass(frozen=True)
class SimulationRecord:
    """Store-friendly outcome of one :class:`SimulationJob`.

    A completed run carries the realised-timeline essentials and
    ``error is None``; a failed run (including a retry-budget-exhausted
    simulation) carries the one-line error and ``None`` elsewhere.
    """

    key: str
    scenario: str
    policy: str
    seed: int = 0
    replication: int = 0
    cost: Optional[float] = None
    makespan: Optional[float] = None
    feasible: Optional[bool] = None
    retries: int = 0
    events: int = 0
    depletion_time: Optional[float] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    traceback: Optional[str] = None
    #: Battery-cache deltas for this job.  In-memory accounting only,
    #: excluded from :meth:`to_dict`: per-job cache traffic depends on which
    #: worker ran the job before, and the stores must stay byte-identical
    #: between serial and parallel runs.
    cache_hits: int = field(default=0, compare=False)
    cache_misses: int = field(default=0, compare=False)
    cache_evictions: int = field(default=0, compare=False)
    #: Per-job observability metrics delta (``repro.obs``), shipped back to
    #: the parent through the process pool.  Never serialised.
    metrics: Optional[Dict[str, Any]] = field(default=None, compare=False, repr=False)

    @property
    def ok(self) -> bool:
        """True when the simulation completed."""
        return self.error is None

    def to_dict(self) -> Dict[str, Any]:
        """JSONL-friendly representation (inverse of :meth:`from_dict`)."""
        return {
            "key": self.key,
            "scenario": self.scenario,
            "policy": self.policy,
            "seed": self.seed,
            "replication": self.replication,
            "cost": self.cost,
            "makespan": self.makespan,
            "feasible": self.feasible,
            "retries": self.retries,
            "events": self.events,
            "depletion_time": self.depletion_time,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
            "traceback": self.traceback,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationRecord":
        """Rebuild a record from its :meth:`to_dict` form."""
        return cls(
            key=str(data["key"]),
            scenario=str(data["scenario"]),
            policy=str(data["policy"]),
            seed=int(data.get("seed", 0)),
            replication=int(data.get("replication", 0)),
            cost=data.get("cost"),
            makespan=data.get("makespan"),
            feasible=data.get("feasible"),
            retries=int(data.get("retries", 0)),
            events=int(data.get("events", 0)),
            depletion_time=data.get("depletion_time"),
            error=data.get("error"),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            traceback=data.get("traceback"),
        )

    def summary(self) -> str:
        """One-line human-readable outcome."""
        if not self.ok:
            return f"{self.scenario}/{self.policy}#{self.replication}: ERROR {self.error}"
        status = "ok" if self.feasible else "DEADLINE MISS"
        return (
            f"{self.scenario}/{self.policy}#{self.replication}: "
            f"sigma={self.cost:.1f}, makespan={self.makespan:.1f} ({status})"
        )


def execute_simulation_job(
    job: SimulationJob, cache: Optional[BatteryCostCache] = None
) -> SimulationRecord:
    """Run one simulation job to completion, capturing any failure.

    The single execution path of serial and parallel runs (module-level so
    worker processes import it by name).  The battery model is wrapped in
    the worker's :class:`~repro.engine.BatteryCostCache`, so the offline
    schedule a ``static-replay`` policy computes — and the live
    state-of-charge queries of the reactive policy — share cached sigma
    evaluations across jobs exactly like experiment jobs do.
    """
    from ..sim.perturbation import rng_for_seed
    from ..sim.runtime import Simulator
    from ..sim.schedulers import make_policy

    if cache is None:
        cache = _worker_cache()
    obs_before = _OBS.counters_snapshot(include_volatile=True) if _OBS.enabled else None
    before = cache.stats.snapshot()
    started = time.perf_counter()
    try:
        with _OBS.span("engine.job", label=job.label):
            problem = job.spec.build_problem()
            model = CachedBatteryModel(problem.model(), cache)
            scheduler = make_policy(job.policy, problem, job.params, model=model)
            result = Simulator(
                problem,
                scheduler,
                perturbation=job.spec.perturbation(),
                rng=rng_for_seed(job.seed, job.replication),
                model=model,
                evaluate_at=job.evaluate_at,
                imode=job.spec.information_mode(),
            ).run()
    except Exception as exc:  # noqa: BLE001 - per-job isolation is the point
        used = cache.stats.delta(before)
        return SimulationRecord(
            key=job.key(),
            scenario=job.spec.name,
            policy=job.policy,
            seed=job.seed,
            replication=job.replication,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback_module.format_exc(),
            elapsed_s=time.perf_counter() - started,
            cache_hits=used.hits,
            cache_misses=used.misses,
            cache_evictions=used.evictions,
            metrics=_job_metrics(obs_before, used, kind="simjobs", failed=True),
        )
    used = cache.stats.delta(before)
    return SimulationRecord(
        key=job.key(),
        scenario=job.spec.name,
        policy=job.policy,
        seed=job.seed,
        replication=job.replication,
        cost=result.cost,
        makespan=result.makespan,
        feasible=result.feasible,
        retries=result.retries,
        events=result.events,
        depletion_time=result.depletion_time,
        elapsed_s=time.perf_counter() - started,
        cache_hits=used.hits,
        cache_misses=used.misses,
        cache_evictions=used.evictions,
        metrics=_job_metrics(obs_before, used, kind="simjobs"),
    )


@dataclass(frozen=True)
class SimulationBatch:
    """Same-cell simulation jobs shipped to a worker as one work item.

    All member jobs must share a :meth:`SimulationJob.cell_key` — same
    scenario, policy, params, seed and evaluation point, differing only in
    the replication index — so the worker can build the problem and the
    policy context once and run every replication as a lockstep lane of a
    :class:`~repro.sim.BatchSimulator`.  Pure data (like the jobs it
    wraps), so the parallel executor pickles it to workers unchanged.
    """

    #: Span name the parallel executor synthesizes for this work item
    #: (serial runs record the same name inside the batch runner).
    SPAN_NAME = "engine.batch"

    jobs: Tuple[SimulationJob, ...]

    def __post_init__(self) -> None:
        jobs = tuple(self.jobs)
        object.__setattr__(self, "jobs", jobs)
        if not jobs:
            raise ConfigurationError("a simulation batch needs at least one job")
        cell = jobs[0].cell_key()
        for job in jobs[1:]:
            if job.cell_key() != cell:
                raise ConfigurationError(
                    f"batch members must share one cell; {jobs[0].label} and "
                    f"{job.label} differ beyond the replication index"
                )

    @property
    def label(self) -> str:
        """Human-readable ``scenario/policy xN`` tag."""
        first = self.jobs[0]
        return f"{first.spec.name}/{first.policy} x{len(self.jobs)}"

    def failure_result(self, error: str) -> "SimulationBatchResult":
        """The record shape for a batch the *pool* lost (transport errors)."""
        return SimulationBatchResult(
            records=tuple(job.failure_result(error) for job in self.jobs)
        )

    def __repr__(self) -> str:
        return f"SimulationBatch({self.label})"


@dataclass(frozen=True)
class SimulationBatchResult:
    """Outcome of one :class:`SimulationBatch`: a record per member job.

    Carries the same executor-facing accounting surface as a single
    record (``cache_*``, ``elapsed_s``, ``metrics``), aggregated over the
    whole batch, so both executors account batches exactly like jobs.
    """

    records: Tuple[SimulationRecord, ...]
    elapsed_s: float = 0.0
    cache_hits: int = field(default=0, compare=False)
    cache_misses: int = field(default=0, compare=False)
    cache_evictions: int = field(default=0, compare=False)
    metrics: Optional[Dict[str, Any]] = field(default=None, compare=False, repr=False)

    @property
    def ok(self) -> bool:
        """True when every replication in the batch completed."""
        return all(record.ok for record in self.records)


def _batch_metrics(obs_before, used, executed: int, failed: int):
    """Close out one batch's observability accounting; None while disabled.

    The per-job counters advance by the member counts, so a batched run's
    ``engine.simjobs.*`` totals match the scalar path's.
    """
    if obs_before is None or not _OBS.enabled:
        return None
    if executed:
        _OBS.count("engine.simjobs.executed", executed)
    if failed:
        _OBS.count("engine.simjobs.failed", failed)
    _OBS.count("engine.simjobs.batches")
    if used.hits:
        _OBS.count("rt.engine.cache.hits", used.hits)
    if used.misses:
        _OBS.count("rt.engine.cache.misses", used.misses)
    if used.evictions:
        _OBS.count("rt.engine.cache.evictions", used.evictions)
    return _OBS.metrics_delta(obs_before)


def _attribute_cache(records: List[SimulationRecord], used) -> Tuple[SimulationRecord, ...]:
    """Park the batch's cache delta on its first record.

    Cache traffic is a batch-level quantity — the schedule lookups are
    shared across lanes — but :class:`SimulationRun` totals sum the
    per-record counters, so the whole delta rides on one record.  The
    counters compare as equal regardless (``compare=False``) and never
    reach the store, so lane records stay interchangeable with the
    scalar runner's.
    """
    if records:
        records[0] = replace(
            records[0],
            cache_hits=used.hits,
            cache_misses=used.misses,
            cache_evictions=used.evictions,
        )
    return tuple(records)


def _lane_failure(job: SimulationJob, error: Exception, elapsed_s: float, traceback: str) -> SimulationRecord:
    return SimulationRecord(
        key=job.key(),
        scenario=job.spec.name,
        policy=job.policy,
        seed=job.seed,
        replication=job.replication,
        error=f"{type(error).__name__}: {error}",
        traceback=traceback,
        elapsed_s=elapsed_s,
    )


def execute_simulation_batch(
    batch: SimulationBatch, cache: Optional[BatteryCostCache] = None
) -> SimulationBatchResult:
    """Run one batch of same-cell replications through the lockstep driver.

    The worker-side counterpart of :func:`execute_simulation_job` for
    batches (module-level so pools import it by name): problem, battery
    model wrapper and — for ``static-replay`` — the offline schedule are
    resolved **once**, then every replication runs as a
    :class:`~repro.sim.BatchSimulator` lane.  Per-lane outcomes are
    bit-identical to the scalar runner's, so batched and scalar stores
    hold the same rows; errors stay isolated per lane (a replication that
    exhausts its retry budget fails alone), while a setup failure —
    unresolvable scenario, unknown policy parameters — fails every member
    with the same error, since none of them could have run.
    """
    from ..sim.batch import BatchSimulator
    from ..sim.perturbation import rng_for_seed
    from ..sim.schedulers import StaticReplayScheduler, make_policy

    if cache is None:
        cache = _worker_cache()
    obs_before = _OBS.counters_snapshot(include_volatile=True) if _OBS.enabled else None
    before = cache.stats.snapshot()
    started = time.perf_counter()
    jobs = batch.jobs
    first = jobs[0]
    try:
        with _OBS.span("engine.batch", label=batch.label):
            problem = first.spec.build_problem()
            model = CachedBatteryModel(problem.model(), cache)
            if first.policy == "static-replay":
                # Resolve the offline schedule once for the whole cell;
                # sibling lanes replay it through cheap clones.
                base = make_policy(first.policy, problem, first.params, model=model)
                schedulers = [base] + [
                    StaticReplayScheduler(base.sequence, base.columns)
                    for _ in jobs[1:]
                ]
            else:
                schedulers = [
                    make_policy(job.policy, problem, job.params, model=model)
                    for job in jobs
                ]
            outcomes = BatchSimulator(
                problem,
                schedulers,
                rngs=[rng_for_seed(job.seed, job.replication) for job in jobs],
                perturbation=first.spec.perturbation(),
                model=model,
                evaluate_at=first.evaluate_at,
                imode=first.spec.information_mode(),
            ).run()
    except Exception as exc:  # noqa: BLE001 - batch-level isolation
        elapsed = time.perf_counter() - started
        used = cache.stats.delta(before)
        share = elapsed / len(jobs)
        trace = traceback_module.format_exc()
        return SimulationBatchResult(
            records=_attribute_cache(
                [_lane_failure(job, exc, share, trace) for job in jobs], used
            ),
            elapsed_s=elapsed,
            cache_hits=used.hits,
            cache_misses=used.misses,
            cache_evictions=used.evictions,
            metrics=_batch_metrics(obs_before, used, executed=0, failed=len(jobs)),
        )
    elapsed = time.perf_counter() - started
    used = cache.stats.delta(before)
    share = elapsed / len(jobs)
    records: List[SimulationRecord] = []
    failed = 0
    for job, outcome in zip(jobs, outcomes):
        if isinstance(outcome, Exception):
            failed += 1
            trace = "".join(
                traceback_module.format_exception(
                    type(outcome), outcome, outcome.__traceback__
                )
            )
            records.append(_lane_failure(job, outcome, share, trace))
            continue
        records.append(
            SimulationRecord(
                key=job.key(),
                scenario=job.spec.name,
                policy=job.policy,
                seed=job.seed,
                replication=job.replication,
                cost=outcome.cost,
                makespan=outcome.makespan,
                feasible=outcome.feasible,
                retries=outcome.retries,
                events=outcome.events,
                depletion_time=outcome.depletion_time,
                elapsed_s=share,
            )
        )
    return SimulationBatchResult(
        records=_attribute_cache(records, used),
        elapsed_s=elapsed,
        cache_hits=used.hits,
        cache_misses=used.misses,
        cache_evictions=used.evictions,
        metrics=_batch_metrics(
            obs_before, used, executed=len(records) - failed, failed=failed
        ),
    )


@dataclass(frozen=True)
class SimulationRun:
    """Everything produced by one :func:`run_simulation_jobs` call."""

    jobs: Tuple[SimulationJob, ...]
    records: Tuple[SimulationRecord, ...]
    executed: int
    """Jobs actually simulated in this call."""
    skipped: int
    """Jobs answered from the result store (resume hits)."""

    @property
    def ok(self) -> bool:
        """True when every simulation completed."""
        return all(record.ok for record in self.records)

    def failures(self) -> Tuple[SimulationRecord, ...]:
        """The records that captured an error."""
        return tuple(record for record in self.records if not record.ok)

    @property
    def cache_hits(self) -> int:
        return sum(record.cache_hits for record in self.records)

    @property
    def cache_misses(self) -> int:
        return sum(record.cache_misses for record in self.records)

    @property
    def cache_hit_rate(self) -> float:
        """Battery-cost cache hit rate aggregated over every executed job.

        Per-worker caches report through the per-record deltas (merged back
        by the parallel executor), so the rate covers pool runs too.
        """
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def by_cell(self) -> Dict[Tuple[str, str], List[SimulationRecord]]:
        """Records grouped per (scenario, policy) cell, replication order."""
        grouped: Dict[Tuple[str, str], List[SimulationRecord]] = {}
        for record in self.records:
            grouped.setdefault((record.scenario, record.policy), []).append(record)
        for cell in grouped.values():
            cell.sort(key=lambda record: record.replication)
        return grouped

    def summary(self) -> str:
        """One-line accounting summary."""
        return (
            f"{len(self.records)} simulations ({self.executed} executed, "
            f"{self.skipped} resumed), {len(self.failures())} failed, "
            f"cache hit rate {self.cache_hit_rate:.1%}"
        )


def _resolve_batch_size(batch) -> Optional[int]:
    """Lanes per work item implied by the ``batch`` argument, None = off."""
    if batch in (False, None, 0, "off", "none"):
        return None
    if batch in (True, "auto"):
        return DEFAULT_BATCH_SIZE
    if isinstance(batch, int) and not isinstance(batch, bool):
        if batch < 1:
            raise ConfigurationError(f"batch size must be >= 1, got {batch!r}")
        return batch
    raise ConfigurationError(
        f"batch must be 'auto', False, or a positive lane count, got {batch!r}"
    )


def _batched_records(
    pending: Sequence[SimulationJob], executor, progress, batch_size: int
) -> List[SimulationRecord]:
    """Run pending jobs as per-cell lockstep batches; records in job order.

    Jobs are grouped by :meth:`SimulationJob.cell_key` (preserving first-seen
    order), chunked to ``batch_size`` lanes, executed through
    :func:`execute_simulation_batch`, and the per-lane records are scattered
    back to their jobs' original positions — so the returned list (and the
    store rows appended from it) is ordered exactly like the scalar path's.
    Note ``progress`` fires once per *batch* with the
    :class:`SimulationBatchResult` when batching is on.
    """
    cells: Dict[str, List[int]] = {}
    for index, job in enumerate(pending):
        cells.setdefault(job.cell_key(), []).append(index)
    batches: List[SimulationBatch] = []
    index_chunks: List[List[int]] = []
    for indices in cells.values():
        for start in range(0, len(indices), batch_size):
            chunk = indices[start : start + batch_size]
            index_chunks.append(chunk)
            batches.append(
                SimulationBatch(jobs=tuple(pending[i] for i in chunk))
            )
    outcomes = executor.run(
        batches, progress=progress, runner=execute_simulation_batch
    )
    fresh: List[Optional[SimulationRecord]] = [None] * len(pending)
    for chunk, outcome in zip(index_chunks, outcomes):
        for position, record in zip(chunk, outcome.records):
            fresh[position] = record
    return [record for record in fresh if record is not None]


def run_simulation_jobs(
    jobs: Sequence[SimulationJob],
    executor=None,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    progress=None,
    batch="auto",
) -> SimulationRun:
    """Run simulation jobs through an executor — the sim analogue of
    :func:`repro.engine.run_jobs`.

    Records come back in job order whatever the executor, so downstream
    reports are byte-reproducible; with ``resume=True`` the store answers
    jobs whose key already holds a completed record.  Deduplication is
    by :meth:`SimulationJob.key` throughout: resume hits dedupe against
    the store whatever ``batch`` setting wrote it (a ``--no-batch`` store
    resumed with ``batch="auto"`` recomputes nothing, and vice versa),
    and duplicate-key jobs *within* one call — e.g. two differently named
    specs describing the same work, since names are excluded from keys —
    are simulated and stored once, with the one record fanned back to
    every duplicate's position.  The store must have
    been built with ``record_type=SimulationRecord``, and a custom
    executor must accept the full contract
    ``run(jobs, progress=..., runner=...)`` (simulation jobs are executed
    through :func:`execute_simulation_job`, passed as ``runner``).

    ``batch`` controls Monte Carlo batching: with ``"auto"`` (the default)
    replications of one (scenario, policy, params, seed) cell are grouped
    into :class:`SimulationBatch` work items of up to
    :data:`DEFAULT_BATCH_SIZE` lanes and run through the lockstep
    :class:`~repro.sim.BatchSimulator` — bit-identical records, fewer
    kernel calls.  Pass ``False`` to force the scalar per-job path, or a
    positive int to override the lanes-per-batch cap.
    """
    if resume and store is None:
        raise ConfigurationError("resume=True requires a result store")
    if store is not None and store.record_type is not SimulationRecord:
        raise ConfigurationError(
            "simulation runs need a ResultStore(record_type=SimulationRecord); "
            f"this store holds {store.record_type.__name__}"
        )
    batch_size = _resolve_batch_size(batch)
    jobs = list(jobs)
    executor = executor if executor is not None else SerialExecutor()

    # Run-level root span, mirroring run_jobs: worker-side engine.job /
    # engine.batch spans parent onto it through the shipped TraceContext.
    with _OBS.span("engine.run", label=f"{len(jobs)} simjobs"):
        if resume and store is not None:
            pending, done = store.split_pending(jobs)
        else:
            pending, done = list(jobs), {}

        # In-call dedupe: duplicate-key pending jobs run (and hit the store)
        # once; the by_key merge below fans the single record back to every
        # duplicate's position in the returned tuple.
        unique: Dict[str, SimulationJob] = {}
        for job in pending:
            unique.setdefault(job.key(), job)
        duplicates = len(pending) - len(unique)
        pending = list(unique.values())

        if _OBS.enabled and done:
            _OBS.count("engine.simjobs.resumed", len(done))
        if _OBS.enabled and duplicates:
            _OBS.count("engine.simjobs.deduped", duplicates)
        if not pending:
            fresh: List[SimulationRecord] = []
        elif batch_size is not None:
            fresh = _batched_records(pending, executor, progress, batch_size)
        else:
            fresh = executor.run(
                pending, progress=progress, runner=execute_simulation_job
            )
        if store is not None:
            with _OBS.span("engine.store.append", label=str(store.path.name)):
                store.append_many(fresh)

    by_key: Dict[str, SimulationRecord] = dict(done)
    for record in fresh:
        by_key[record.key] = record
    ordered = tuple(by_key[job.key()] for job in jobs)
    return SimulationRun(
        jobs=tuple(jobs),
        records=ordered,
        executed=len(fresh),
        skipped=len(done),
    )
