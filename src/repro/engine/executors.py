"""Pluggable job executors: serial and process-parallel.

Both executors implement the same tiny contract — ``run(jobs, progress=...)``
returns one :class:`~repro.engine.jobs.JobResult` per job, *in submission
order* — so callers never care which one they hold.  Deterministic ordering
is part of the contract: a parallel run must produce the same result rows as
a serial run, byte for byte, regardless of completion order.

Error isolation is also part of the contract: a job that raises is captured
into ``JobResult.error`` and the rest of the batch keeps running.  A sweep
with one pathological instance therefore degrades to one ``inf`` cell
instead of a crashed process.

Each executor owns a :class:`~repro.engine.cache.BatteryCostCache` that is
shared across all jobs it runs (one cache per worker process in the parallel
case), so repeated battery-cost evaluations across jobs — extremely common
in sweeps, where neighbouring coordinates revisit the same profiles — are
answered from memory.
"""

from __future__ import annotations

import os
import time
import traceback as traceback_module
from concurrent import futures
from typing import Callable, Iterable, List, Optional, Sequence

from ..errors import ConfigurationError
from ..obs import RECORDER as _OBS, TraceContext
from .cache import DEFAULT_CACHE_SIZE, BatteryCostCache, CacheStats, CachedBatteryModel
from .jobs import Job, JobResult, get_algorithm

__all__ = [
    "ProgressCallback",
    "execute_job",
    "SerialExecutor",
    "ParallelExecutor",
    "default_executor",
]

#: ``progress(done, total, result)`` is invoked after every job completes.
ProgressCallback = Callable[[int, int, JobResult], None]

#: Executors run any job type through a module-level ``runner(job, cache=None)``
#: returning a result record — :func:`execute_job` for experiment jobs,
#: :func:`repro.engine.simjobs.execute_simulation_job` for simulation jobs.
#: Module-level matters: the parallel executor ships the runner to worker
#: processes by reference.
JobRunner = Callable[..., object]


def execute_job(job: Job, cache: Optional[BatteryCostCache] = None) -> JobResult:
    """Run one job to completion, capturing any failure into the result.

    This is the single execution path used by both executors (and by worker
    processes, which is why it is a module-level function: it must be
    importable by name on the far side of a process boundary).
    """
    if cache is None:
        cache = _worker_cache()
    obs_before = _OBS.counters_snapshot(include_volatile=True) if _OBS.enabled else None
    before = cache.stats.snapshot()
    model = CachedBatteryModel(job.problem.model(), cache)
    runner = get_algorithm(job.algorithm)
    started = time.perf_counter()
    try:
        with _OBS.span("engine.job", label=job.label):
            with _OBS.span("engine.algorithm", label=job.algorithm):
                outcome = runner(job.problem, model, dict(job.params))
    except Exception as exc:  # noqa: BLE001 - per-job isolation is the point
        elapsed = time.perf_counter() - started
        used = cache.stats.delta(before)
        return JobResult(
            key=job.key(),
            algorithm=job.algorithm,
            problem_name=job.problem.name or job.problem.graph.name or "",
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback_module.format_exc(),
            elapsed_s=elapsed,
            cache_hits=used.hits,
            cache_misses=used.misses,
            cache_evictions=used.evictions,
            metrics=_job_metrics(obs_before, used, failed=True),
        )
    elapsed = time.perf_counter() - started
    used = cache.stats.delta(before)
    makespan = float(outcome.makespan)
    return JobResult(
        key=job.key(),
        algorithm=job.algorithm,
        problem_name=job.problem.name or job.problem.graph.name or "",
        cost=float(outcome.cost),
        makespan=makespan,
        feasible=makespan <= job.problem.deadline + 1e-9,
        sequence=tuple(outcome.sequence),
        assignment={name: int(col) for name, col in outcome.assignment.items()},
        elapsed_s=elapsed,
        cache_hits=used.hits,
        cache_misses=used.misses,
        cache_evictions=used.evictions,
        metrics=_job_metrics(obs_before, used),
    )


def _job_metrics(obs_before, used: CacheStats, kind: str = "jobs", failed: bool = False):
    """Close out one job's observability accounting; None while disabled.

    Counts the job itself and its battery-cache traffic, then returns the
    recorder delta since ``obs_before`` so the parallel executor can ship it
    across the process boundary (see ``ParallelExecutor.run``).
    """
    if obs_before is None or not _OBS.enabled:
        return None
    _OBS.count(f"engine.{kind}.failed" if failed else f"engine.{kind}.executed")
    if used.hits:
        _OBS.count("rt.engine.cache.hits", used.hits)
    if used.misses:
        _OBS.count("rt.engine.cache.misses", used.misses)
    if used.evictions:
        _OBS.count("rt.engine.cache.evictions", used.evictions)
    return _OBS.metrics_delta(obs_before)


# ----------------------------------------------------------------------
# worker-process cache (one per process, lazily created)
# ----------------------------------------------------------------------
_PROCESS_CACHE: Optional[BatteryCostCache] = None
_PROCESS_CACHE_SIZE = DEFAULT_CACHE_SIZE


def _init_worker(cache_size: int, obs_enabled: bool = False) -> None:
    """Process-pool initializer: fresh bounded cache, fresh recorder state.

    The recorder reset matters under ``fork``: the child would otherwise
    inherit the parent's counter values *and* its open sink handles, and
    worker writes would interleave garbage into the parent's trace file.
    Workers record into memory only; per-job deltas travel back on the
    result (``JobResult.metrics``) and are merged by the parent.
    """
    global _PROCESS_CACHE, _PROCESS_CACHE_SIZE
    _PROCESS_CACHE_SIZE = cache_size
    _PROCESS_CACHE = BatteryCostCache(cache_size)
    _OBS.reset()
    _OBS.enabled = obs_enabled


def _worker_cache() -> BatteryCostCache:
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = BatteryCostCache(_PROCESS_CACHE_SIZE)
    return _PROCESS_CACHE


def _run_with_context(runner: JobRunner, job, ctx: Optional[TraceContext]):
    """Worker-side shim: run a job inside a shipped :class:`TraceContext`.

    Module-level so the pool pickles it by reference.  While the context is
    active the worker's recorder buffers span events (with true parent ids)
    instead of emitting them; the buffer travels back to the parent on the
    result's ``metrics`` payload under the ``"spans"`` key, alongside
    ``"ctx_elapsed"`` — the worker wall-clock the parent uses to anchor the
    timestamps onto its own clock.  ``merge_metrics`` ignores both keys.
    """
    if ctx is None or not _OBS.enabled:
        return runner(job)
    _OBS.activate_context(ctx)
    try:
        result = runner(job)
    finally:
        spans, ctx_elapsed = _OBS.deactivate_context()
    metrics = getattr(result, "metrics", None)
    if isinstance(metrics, dict):
        metrics["spans"] = spans
        metrics["ctx_elapsed"] = ctx_elapsed
    return result


def _pool_failure_result(job, exc: Exception):
    """A failure record for a job the *pool* (not the runner) lost.

    Runner-level failures are captured inside the worker; this covers
    pickling/transport errors.  Job types other than :class:`Job` supply
    their own record shape through ``failure_result``.
    """
    message = f"{type(exc).__name__}: {exc}"
    maker = getattr(job, "failure_result", None)
    if maker is not None:
        return maker(message)
    return JobResult(
        key=job.key(),
        algorithm=job.algorithm,
        problem_name=job.problem.name or job.problem.graph.name or "",
        error=message,
    )


class SerialExecutor:
    """Run jobs one after another in the calling process.

    The executor keeps its cache across :meth:`run` calls, so driving several
    batches through one executor (as the CLI and the sweep drivers do)
    compounds the hit rate.
    """

    def __init__(self, cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        self.cache = BatteryCostCache(cache_size)

    @property
    def max_workers(self) -> int:
        return 1

    @property
    def cache_stats(self) -> CacheStats:
        """Aggregate battery-cache counters across every job this executor ran."""
        return self.cache.stats

    def run(
        self,
        jobs: Iterable[Job],
        progress: Optional[ProgressCallback] = None,
        runner: JobRunner = execute_job,
    ) -> List[JobResult]:
        """Execute every job; always returns results in submission order."""
        job_list = list(jobs)
        results: List[JobResult] = []
        for index, job in enumerate(job_list):
            result = runner(job, cache=self.cache)
            results.append(result)
            if progress is not None:
                progress(index + 1, len(job_list), result)
        return results

    def __repr__(self) -> str:
        return f"SerialExecutor(cache_entries={len(self.cache)})"


class ParallelExecutor:
    """Fan jobs out over a :class:`concurrent.futures.ProcessPoolExecutor`.

    Jobs are pure data and the runner is resolved by name inside the worker,
    so the only pickled payload is the job spec itself.  Each worker process
    holds one battery-cost cache for its lifetime.  Results are re-ordered
    to submission order before returning, keeping parallel output identical
    to serial output.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {max_workers!r}")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.cache_size = cache_size
        self._serial_fallback: Optional[SerialExecutor] = None
        self._pool_stats = CacheStats()

    @property
    def cache_stats(self) -> CacheStats:
        """Worker-local cache counters, merged back through the pool.

        Per-worker ``CacheStats`` live in worker processes and die with the
        pool; each job therefore reports its own cache delta on its result,
        and ``run`` folds those deltas into this aggregate (plus whatever the
        serial fallback executor accumulated).
        """
        total = self._pool_stats.snapshot()
        if self._serial_fallback is not None:
            total.add(self._serial_fallback.cache_stats)
        return total

    def run(
        self,
        jobs: Iterable[Job],
        progress: Optional[ProgressCallback] = None,
        runner: JobRunner = execute_job,
    ) -> List[JobResult]:
        """Execute every job across the pool; results in submission order."""
        job_list = list(jobs)
        if not job_list:
            return []
        if self.max_workers == 1 or len(job_list) == 1:
            # A one-worker pool would pay process start-up for nothing; the
            # fallback executor persists so its cache spans run() calls.
            if self._serial_fallback is None:
                self._serial_fallback = SerialExecutor(self.cache_size)
            return self._serial_fallback.run(job_list, progress=progress, runner=runner)

        results: List[Optional[JobResult]] = [None] * len(job_list)
        workers = min(self.max_workers, len(job_list))
        pool_started = time.perf_counter()
        with futures.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(self.cache_size, _OBS.enabled),
        ) as pool:
            submitted = time.perf_counter()
            pending = {
                pool.submit(_run_with_context, runner, job, self._job_context()): index
                for index, job in enumerate(job_list)
            }
            done = 0
            for future in futures.as_completed(pending):
                index = pending[future]
                try:
                    result = future.result()
                except Exception as exc:  # pool/pickling failure, not the job
                    job = job_list[index]
                    result = _pool_failure_result(job, exc)
                self._pool_stats.add(
                    CacheStats(
                        hits=getattr(result, "cache_hits", 0),
                        misses=getattr(result, "cache_misses", 0),
                        evictions=getattr(result, "cache_evictions", 0),
                    )
                )
                if _OBS.enabled:
                    self._record_remote_job(result, job_list[index], submitted)
                results[index] = result
                done += 1
                if progress is not None:
                    progress(done, len(job_list), result)
        if _OBS.enabled:
            wall = time.perf_counter() - pool_started
            busy = sum(getattr(r, "elapsed_s", 0.0) or 0.0 for r in results if r)
            if wall > 0.0:
                _OBS.gauge("rt.engine.pool.utilization", busy / (workers * wall))
        return [result for result in results if result is not None]

    @staticmethod
    def _job_context() -> Optional[TraceContext]:
        """Allocate the :class:`TraceContext` shipped with one submitted job.

        ``ctx_id`` comes from the parent's span-id allocator, so every job's
        worker-side span ids live in a namespace no other job (or recycled
        pid) can collide with; ``parent_id`` is whatever span is active at
        submission time (the ``engine.run`` root), which is what the worker's
        ``engine.job`` span will parent onto.
        """
        if not _OBS.enabled:
            return None
        return TraceContext(
            trace_id=_OBS.trace_id,
            parent_id=_OBS.current_span_id(),
            ctx_id=_OBS.new_span_id(),
        )

    @staticmethod
    def _record_remote_job(result, job, submitted: float) -> None:
        """Mirror a worker-side job into the parent recorder.

        Metric deltas merge exactly.  Spans recorded inside the worker come
        back buffered on ``result.metrics["spans"]`` with true parent linkage
        (see :func:`_run_with_context`); the parent re-emits them anchored at
        ``completion - ctx_elapsed`` on its own clock and only synthesizes
        the queue span (submit-to-start wait), which exists nowhere else.
        When no worker spans arrived — obs raced off, or a transport failure
        produced a bare result — it falls back to synthesizing the execute
        span from the job's elapsed time, as before span propagation.
        """
        metrics = getattr(result, "metrics", None)
        _OBS.merge_metrics(metrics)
        completed = time.perf_counter()
        elapsed = getattr(result, "elapsed_s", 0.0) or 0.0
        label = getattr(job, "label", None)
        # Batched items (SimulationBatch) carry their own span name, so
        # serial and parallel runs emit the same span vocabulary.
        span_name = getattr(job, "SPAN_NAME", "engine.job")
        spans = metrics.get("spans") if isinstance(metrics, dict) else None
        if spans:
            ctx_elapsed = float(metrics.get("ctx_elapsed", 0.0))
            _OBS.emit_remote_spans(spans, completed - ctx_elapsed)
        else:
            _OBS.record_span(span_name, label, completed - elapsed, elapsed)
        queue_wait = max(0.0, (completed - submitted) - elapsed)
        _OBS.record_span(span_name + ".queue", label, submitted, queue_wait)

    def __repr__(self) -> str:
        return f"ParallelExecutor(max_workers={self.max_workers})"


def default_executor(jobs: Optional[int] = None):
    """The executor implied by a ``--jobs N`` style setting.

    ``None`` or ``1`` selects the serial executor; anything larger a process
    pool of that many workers.
    """
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ParallelExecutor(max_workers=jobs)
