"""Declarative experiment jobs and their results.

A :class:`Job` is the engine's unit of work: one problem instance (task
graph + deadline + battery) paired with one named algorithm and a
JSON-serialisable parameter mapping.  Jobs are pure data — they carry no
callables — so they can be hashed into stable keys, shipped to worker
processes, and written to disk.  A :class:`JobResult` is the corresponding
unit of output: the essential numbers of the produced schedule (or the
captured error), small enough to round-trip through the JSONL result store.

The mapping from algorithm *names* to implementations lives in the registry
at the bottom of this module; executors resolve names at run time, which is
what keeps jobs serialisable.  Every runner receives an optional battery
``model`` override so the executors can inject the battery-cost cache
without the algorithms knowing about it.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..baselines import (
    AnnealingConfig,
    all_fastest_baseline,
    all_slowest_baseline,
    best_uniform_baseline,
    chowdhury_baseline,
    rakhmatov_baseline,
    simulated_annealing_baseline,
)
from ..battery import BatteryModel
from ..core import FactorWeights, SchedulerConfig, battery_aware_schedule
from ..errors import ConfigurationError
from ..scheduling import SchedulingProblem

__all__ = [
    "Job",
    "JobResult",
    "algorithm_names",
    "resolve_algorithm_name",
    "get_algorithm",
    "register_algorithm",
    "scheduler_config_params",
]


# ----------------------------------------------------------------------
# the job specification
# ----------------------------------------------------------------------
def _canonical(value: Any) -> Any:
    """Normalise a parameter value so that equal configs produce equal JSON."""
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


@dataclass(frozen=True)
class Job:
    """One (problem, algorithm, parameters) work item.

    Attributes
    ----------
    problem:
        The scheduling problem instance to solve.
    algorithm:
        Registered algorithm name (aliases are resolved to the canonical
        name on construction, so equal work always gets equal keys).
    params:
        JSON-serialisable algorithm parameters (e.g. ``{"seed": 7}`` for the
        annealing baseline or ``{"drop_factor": "slack_ratio"}`` for an
        ablated iterative run).
    """

    problem: SchedulingProblem
    algorithm: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "algorithm", resolve_algorithm_name(self.algorithm))
        object.__setattr__(self, "params", dict(self.params))

    # ------------------------------------------------------------------
    def spec(self) -> Dict[str, Any]:
        """The complete, JSON-serialisable description of this job."""
        battery = self.problem.battery
        return {
            "graph": self.problem.graph.to_dict(),
            "deadline": self.problem.deadline,
            "battery": {
                "beta": battery.beta,
                "capacity": _canonical(battery.capacity),
                "series_terms": battery.series_terms,
                "chemistry": battery.chemistry,
                "chemistry_params": _canonical(dict(battery.chemistry_params)),
            },
            "algorithm": self.algorithm,
            "params": _canonical(self.params),
        }

    def key(self) -> str:
        """Stable content hash identifying this job across runs and machines.

        The key covers everything that influences the result — the graph
        structure and design points, the deadline, the battery parameters,
        the algorithm and its parameters — and nothing presentational (the
        problem's display name is excluded).  Memoised: every field is
        frozen after construction and the full-graph serialisation is too
        expensive to repeat on every store/ordering probe.
        """
        cached = self.__dict__.get("_key")
        if cached is None:
            payload = json.dumps(self.spec(), sort_keys=True, separators=(",", ":"))
            cached = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]
            object.__setattr__(self, "_key", cached)
        return cached

    def structural_key(self) -> str:
        """Content hash identifying this job *up to graph isomorphism*.

        Like :meth:`key`, but the graph enters through its canonical-form
        signature (:func:`repro.taskgraph.graph_signature`) instead of its
        verbatim serialisation, so two jobs whose graphs differ only in
        task naming / insertion order collide deliberately.  This is the
        grouping key of the engine's opt-in structural dedup
        (``run_jobs(..., dedupe=True)``).  Memoised like :meth:`key`.
        """
        cached = self.__dict__.get("_structural_key")
        if cached is None:
            from ..taskgraph.optimize import graph_signature

            spec = self.spec()
            spec["graph"] = graph_signature(self.problem.graph)
            payload = json.dumps(spec, sort_keys=True, separators=(",", ":"))
            cached = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]
            object.__setattr__(self, "_structural_key", cached)
        return cached

    @property
    def label(self) -> str:
        """Human-readable ``problem/algorithm`` tag used in progress output."""
        name = self.problem.name or self.problem.graph.name or "problem"
        return f"{name}/{self.algorithm}"

    def __repr__(self) -> str:
        return f"Job({self.label}, params={dict(self.params)!r})"


# ----------------------------------------------------------------------
# the job result
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobResult:
    """Outcome of executing one :class:`Job`.

    Exactly one of the two shapes occurs: a completed run carries the
    schedule essentials and ``error is None``; a failed run carries
    ``error`` (a one-line ``ExceptionType: message`` string) and ``None``
    for every schedule field.  Failures never abort a batch — they surface
    here and the remaining jobs keep running.
    """

    key: str
    algorithm: str
    problem_name: str
    cost: Optional[float] = None
    makespan: Optional[float] = None
    feasible: Optional[bool] = None
    sequence: Optional[Tuple[str, ...]] = None
    assignment: Optional[Dict[str, int]] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    traceback: Optional[str] = None
    #: Cache evictions during this job.  In-memory accounting only (the
    #: executors aggregate it); excluded from :meth:`to_dict` because the
    #: value depends on worker placement, and the stores must stay
    #: byte-identical between serial and parallel runs.
    cache_evictions: int = field(default=0, compare=False)
    #: Per-job observability metrics delta (``repro.obs``), shipped back to
    #: the parent through the process pool.  Never serialised: traced and
    #: untraced runs must produce byte-identical result stores.
    metrics: Optional[Dict[str, Any]] = field(default=None, compare=False, repr=False)

    @property
    def ok(self) -> bool:
        """True when the job produced a schedule."""
        return self.error is None

    def to_dict(self) -> Dict[str, Any]:
        """JSONL-friendly representation (inverse of :meth:`from_dict`)."""
        return {
            "key": self.key,
            "algorithm": self.algorithm,
            "problem_name": self.problem_name,
            "cost": self.cost,
            "makespan": self.makespan,
            "feasible": self.feasible,
            "sequence": list(self.sequence) if self.sequence is not None else None,
            "assignment": dict(self.assignment) if self.assignment is not None else None,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "traceback": self.traceback,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobResult":
        """Rebuild a result from its :meth:`to_dict` form."""
        sequence = data.get("sequence")
        assignment = data.get("assignment")
        return cls(
            key=str(data["key"]),
            algorithm=str(data["algorithm"]),
            problem_name=str(data.get("problem_name", "")),
            cost=data.get("cost"),
            makespan=data.get("makespan"),
            feasible=data.get("feasible"),
            sequence=tuple(sequence) if sequence is not None else None,
            assignment={str(k): int(v) for k, v in assignment.items()}
            if assignment is not None
            else None,
            error=data.get("error"),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
            traceback=data.get("traceback"),
        )

    def summary(self) -> str:
        """One-line human-readable outcome."""
        if not self.ok:
            return f"{self.problem_name}/{self.algorithm}: ERROR {self.error}"
        status = "ok" if self.feasible else "DEADLINE MISS"
        return (
            f"{self.problem_name}/{self.algorithm}: sigma={self.cost:.1f}, "
            f"makespan={self.makespan:.1f} ({status})"
        )


# ----------------------------------------------------------------------
# the algorithm registry
# ----------------------------------------------------------------------
AlgorithmRunner = Callable[[SchedulingProblem, Optional[BatteryModel], Dict[str, Any]], Any]

_REGISTRY: Dict[str, AlgorithmRunner] = {}
_ALIASES: Dict[str, str] = {}


def register_algorithm(
    name: str, runner: AlgorithmRunner, aliases: Tuple[str, ...] = ()
) -> None:
    """Add ``runner`` under ``name`` (plus optional aliases) to the registry.

    The runner is called as ``runner(problem, model, params)`` and must
    return an object exposing ``cost``, ``makespan``, ``sequence`` and
    ``assignment`` — the shape both :class:`~repro.core.SchedulingSolution`
    and :class:`~repro.baselines.BaselineResult` already have.
    """
    _REGISTRY[name] = runner
    for alias in aliases:
        _ALIASES[alias] = name


def resolve_algorithm_name(name: str) -> str:
    """Map an algorithm name or alias to its canonical registry name."""
    if name in _REGISTRY:
        return name
    if name in _ALIASES:
        return _ALIASES[name]
    known = sorted(set(_REGISTRY) | set(_ALIASES))
    raise ConfigurationError(f"unknown algorithm {name!r}; choose from {known}")


def get_algorithm(name: str) -> AlgorithmRunner:
    """The runner registered under ``name`` (or an alias of it)."""
    return _REGISTRY[resolve_algorithm_name(name)]


def algorithm_names() -> Tuple[str, ...]:
    """All canonical algorithm names, sorted."""
    return tuple(sorted(_REGISTRY))


def scheduler_config_params(
    config: Optional[SchedulerConfig], drop_factor: Optional[str] = None
) -> Dict[str, Any]:
    """Translate a :class:`SchedulerConfig` into JSON-able job parameters.

    Only non-default values are emitted, so the common case (paper-default
    configuration) yields ``{}`` and the job key stays independent of how
    the caller spelled the default.  ``record_evaluations`` is intentionally
    dropped: it changes only the in-memory history, never the result.
    """
    params: Dict[str, Any] = {}
    if config is not None:
        defaults = SchedulerConfig()
        for attr in (
            "max_iterations",
            "evaluate_at",
            "require_feasible_windows",
            "repair_infeasible",
            "improvement_tolerance",
        ):
            value = getattr(config, attr)
            if value != getattr(defaults, attr):
                params[attr] = value
        if config.factor_weights is not None:
            params["factor_weights"] = {
                name: getattr(config.factor_weights, name)
                for name in (
                    "slack_ratio",
                    "current_ratio",
                    "energy_ratio",
                    "current_increase_fraction",
                    "design_point_fraction",
                )
            }
    if drop_factor is not None:
        params["drop_factor"] = drop_factor
    return params


def _scheduler_config_from_params(params: Mapping[str, Any]) -> SchedulerConfig:
    """Inverse of :func:`scheduler_config_params` (engine-side)."""
    weights: Optional[FactorWeights] = None
    if "factor_weights" in params:
        weights = FactorWeights(**params["factor_weights"])
    if params.get("drop_factor") is not None:
        weights = FactorWeights.without(params["drop_factor"])
    return SchedulerConfig(
        max_iterations=int(params.get("max_iterations", 25)),
        evaluate_at=str(params.get("evaluate_at", "completion")),
        factor_weights=weights,
        require_feasible_windows=bool(params.get("require_feasible_windows", True)),
        repair_infeasible=bool(params.get("repair_infeasible", True)),
        record_evaluations=False,
        improvement_tolerance=float(params.get("improvement_tolerance", 1e-9)),
    )


def _run_iterative(
    problem: SchedulingProblem, model: Optional[BatteryModel], params: Dict[str, Any]
):
    config = _scheduler_config_from_params(params)
    return battery_aware_schedule(problem, config=config, model=model)


def _run_annealing(
    problem: SchedulingProblem, model: Optional[BatteryModel], params: Dict[str, Any]
):
    config = AnnealingConfig(
        iterations=int(params.get("iterations", AnnealingConfig.iterations)),
    )
    seed = params.get("seed")
    return simulated_annealing_baseline(
        problem, config=config, model=model, seed=int(seed) if seed is not None else None
    )


def _baseline_runner(function: Callable) -> AlgorithmRunner:
    def run(problem: SchedulingProblem, model: Optional[BatteryModel], params: Dict[str, Any]):
        return function(problem, model=model)

    return run


register_algorithm("iterative", _run_iterative, aliases=("iterative (ours)", "ours"))
register_algorithm(
    "dp-energy+greedy", _baseline_runner(rakhmatov_baseline), aliases=("rakhmatov",)
)
register_algorithm(
    "last-task-first", _baseline_runner(chowdhury_baseline), aliases=("chowdhury",)
)
register_algorithm("best-uniform", _baseline_runner(best_uniform_baseline))
register_algorithm("all-fastest", _baseline_runner(all_fastest_baseline))
register_algorithm("all-slowest", _baseline_runner(all_slowest_baseline))
register_algorithm(
    "annealing", _run_annealing, aliases=("simulated-annealing", "sa")
)
