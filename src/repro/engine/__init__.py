"""Parallel experiment-execution engine with caching and a resumable store.

The engine turns every experiment driver into declarative data: a
:class:`~repro.engine.Job` names a problem instance, an algorithm from the
registry and its parameters; executors run job batches serially or across a
process pool; a keyed LRU cache memoises the battery-cost evaluations that
dominate runtime; and an append-only JSONL store makes long sweeps
resumable.  :func:`~repro.engine.run_experiments` is the single entry point
the experiment layer, the benchmarks and the CLI all build on.

Runtime-simulation work rides the same machinery: a
:class:`~repro.engine.SimulationJob` (scenario spec + policy + seed +
replication, content-hash keyed) runs through the same executors via
:func:`~repro.engine.run_simulation_jobs`, with
:class:`~repro.engine.SimulationRecord` rows stored resumably in a
``ResultStore(record_type=SimulationRecord)``.

Guarantees
----------
* **Determinism** — results come back in job order whatever the executor,
  and cache hits return exact stored floats, so ``--jobs 4`` output is
  byte-identical to ``--jobs 1``.
* **Isolation** — a failing job surfaces in ``JobResult.error`` without
  aborting the batch.
* **Resumability** — with ``resume=True`` jobs whose key already has a
  successful stored result are skipped entirely.
"""

from .api import ExperimentRun, build_jobs, run_experiments, run_jobs
from .cache import (
    DEFAULT_CACHE_SIZE,
    BatteryCostCache,
    CachedBatteryModel,
    CacheStats,
    model_signature,
)
from .executors import (
    ParallelExecutor,
    SerialExecutor,
    default_executor,
    execute_job,
)
from .jobs import (
    Job,
    JobResult,
    algorithm_names,
    get_algorithm,
    register_algorithm,
    resolve_algorithm_name,
    scheduler_config_params,
)
from .simjobs import (
    SimulationBatch,
    SimulationBatchResult,
    SimulationJob,
    SimulationRecord,
    SimulationRun,
    execute_simulation_batch,
    execute_simulation_job,
    run_simulation_jobs,
)
from .store import ResultStore

__all__ = [
    "SimulationBatch",
    "SimulationBatchResult",
    "SimulationJob",
    "SimulationRecord",
    "SimulationRun",
    "execute_simulation_batch",
    "execute_simulation_job",
    "run_simulation_jobs",
    "Job",
    "JobResult",
    "algorithm_names",
    "get_algorithm",
    "register_algorithm",
    "resolve_algorithm_name",
    "scheduler_config_params",
    "BatteryCostCache",
    "CachedBatteryModel",
    "CacheStats",
    "model_signature",
    "DEFAULT_CACHE_SIZE",
    "SerialExecutor",
    "ParallelExecutor",
    "default_executor",
    "execute_job",
    "ResultStore",
    "ExperimentRun",
    "build_jobs",
    "run_experiments",
    "run_jobs",
]
