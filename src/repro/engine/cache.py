"""Memoisation of battery-cost evaluations.

Profiling the experiment drivers shows that virtually all of their time is
spent inside :meth:`~repro.battery.BatteryModel.apparent_charge`: the window
search, the weighted re-sequencing, the baselines and every sweep coordinate
evaluate the Rakhmatov–Vrudhula series over and over for *identical*
discharge profiles (the same sequence prefix with the same design points
keeps reappearing across windows and iterations).  The evaluation is a pure
function of ``(model parameters, profile intervals, evaluation time)``, so it
memoises perfectly.

:class:`BatteryCostCache` is a bounded LRU mapping from that fingerprint to
sigma, and :class:`CachedBatteryModel` is a drop-in :class:`BatteryModel`
wrapper that routes ``apparent_charge`` through a cache.  Because every
algorithm in the library accepts a ``model`` override, injecting the cache
needs no changes to the algorithms themselves — the engine's executors wrap
each job's model before running it.

Keys use the *exact* float values of the profile (no rounding), so a cache
hit returns bit-for-bit the number the wrapped model would have produced;
parallel and serial engine runs therefore stay byte-identical.

Two key namespaces share one LRU store:

* **profile keys** — ``apparent_charge`` calls, fingerprinted by the
  profile's interval triples and evaluation time (the original scheme); and
* **schedule keys** — the evaluator stack's array path
  (:meth:`CachedBatteryModel.schedule_charge` and the
  :class:`~repro.scheduling.IncrementalCostEvaluator`'s proposal probes),
  fingerprinted by the back-to-back duration/current value tuples plus the
  post-completion rest.  The evaluator maintains these tuples by splicing
  the changed segment per move — a key over state deltas, with no profile
  object or full re-boxing on the probe path.

The namespaces are tagged so a schedule state can never alias a profile
fingerprint, and both return bit-identical values to the uncached model by
construction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable, Optional, Tuple

from ..battery import BatteryModel, LoadProfile

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "CacheStats",
    "BatteryCostCache",
    "CachedBatteryModel",
    "model_signature",
]

#: Default LRU bound.  One entry is a short tuple key plus a float, so even
#: this many entries stay in the low tens of megabytes.
DEFAULT_CACHE_SIZE = 200_000


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`BatteryCostCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        """An independent copy (used for per-job accounting deltas)."""
        return CacheStats(hits=self.hits, misses=self.misses, evictions=self.evictions)

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
        )

    def add(self, other: "CacheStats") -> None:
        """Fold another stats object in (aggregating per-worker counters)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions


def model_signature(model: BatteryModel) -> Tuple:
    """A hashable fingerprint of a battery model's cost function.

    Two models with equal signatures must produce identical
    ``apparent_charge`` values for every profile, so that one cache can be
    shared safely across models (e.g. across beta-sweep coordinates) *and*
    across chemistries — the signature leads with the model's type name, so
    chemistries with numerically identical parameters can never alias.

    Models defining ``signature()`` (every built-in chemistry, plus
    :class:`CachedBatteryModel`, which delegates to its inner model) supply
    their own exact-parameter fingerprint.  The repr fallback for unknown
    third-party models is precision-lossy (``%g``-style formatting), which
    is why the built-ins stopped relying on it: two models whose parameters
    differ below the repr precision must not share cache entries.
    """
    signature = getattr(model, "signature", None)
    if callable(signature):
        return signature()
    beta = getattr(model, "beta", None)
    series_terms = getattr(model, "series_terms", None)
    if beta is not None:
        return (type(model).__name__, float(beta), series_terms)
    # Fallback: parameter-free models key by type; anything else keys by
    # repr, which every model implements.
    return (type(model).__name__, repr(model))


class BatteryCostCache:
    """Bounded LRU cache of apparent-charge evaluations.

    The cache itself is model-agnostic: the model signature is part of every
    key, so a single instance may back many :class:`CachedBatteryModel`
    wrappers (the engine gives each worker process one shared cache).
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_SIZE) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries!r}")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, float]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Hashable) -> Optional[float]:
        """The cached value for ``key`` (refreshing its recency), or None."""
        try:
            value = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def insert(self, key: Hashable, value: float) -> None:
        """Store ``value``, evicting the least recently used entry when full."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()


def _profile_key(profile: LoadProfile, at_time: Optional[float]) -> Tuple:
    """Exact-value fingerprint of one evaluation request."""
    intervals = tuple(
        (iv.start, iv.duration, iv.current) for iv in profile if iv.current != 0.0
    )
    return (intervals, at_time if at_time is not None else profile.end_time)


#: Namespace tag separating schedule-state keys from profile keys.
_SCHEDULE_TAG = "sched"


class CachedBatteryModel(BatteryModel):
    """A :class:`BatteryModel` that memoises ``apparent_charge`` calls.

    Wraps any inner model and is substitutable anywhere the library accepts
    a model (the core scheduler, every baseline, the sweep evaluators).  The
    derived helpers inherited from :class:`BatteryModel` (``cost``,
    ``lifetime``, ...) route through the cached ``apparent_charge`` too.
    """

    def __init__(
        self, inner: BatteryModel, cache: Optional[BatteryCostCache] = None
    ) -> None:
        self.inner = inner
        self.cache = cache if cache is not None else BatteryCostCache()
        self._signature = model_signature(inner)

    # Expose the wrapped model's parameters so code that introspects the
    # model (e.g. reports printing beta) keeps working on the wrapper.
    @property
    def beta(self) -> Optional[float]:
        return getattr(self.inner, "beta", None)

    @property
    def series_terms(self) -> Optional[int]:
        return getattr(self.inner, "series_terms", None)

    def signature(self) -> Tuple:
        """The wrapped model's cache fingerprint (wrapping never changes keys)."""
        return self._signature

    def apparent_charge(
        self, profile: LoadProfile, at_time: Optional[float] = None
    ) -> float:
        key = (self._signature, _profile_key(profile, at_time))
        value = self.cache.lookup(key)
        if value is None:
            value = self.inner.apparent_charge(profile, at_time=at_time)
            self.cache.insert(key, value)
        return value

    # ------------------------------------------------------------------
    # schedule path (array-keyed, used by the evaluator stack)
    # ------------------------------------------------------------------
    def schedule_charge(self, durations, currents, rest: float = 0.0) -> float:
        """Memoised sigma of a back-to-back schedule (array path).

        Keyed by the exact duration/current values plus ``rest`` — no
        profile object is built for either the probe or the inner
        evaluation when the wrapped model has a vectorized schedule path.
        """
        key = self._schedule_full_key(
            (tuple(map(float, durations)), tuple(map(float, currents)), float(rest))
        )
        value = self.cache.lookup(key)
        if value is None:
            value = self.inner.schedule_charge(durations, currents, rest)
            self.cache.insert(key, value)
        return value

    def lookup_schedule(self, state_key: Tuple) -> Optional[float]:
        """Probe the schedule namespace with an evaluator-maintained state key.

        ``state_key`` is ``(duration values, current values, rest)`` — the
        incremental evaluator splices the value tuples per move so repeat
        visits to a schedule state cost one hash, not one series evaluation.
        """
        return self.cache.lookup(self._schedule_full_key(state_key))

    def store_schedule(self, state_key: Tuple, value: float) -> None:
        """Record a sigma under an evaluator-maintained state key."""
        self.cache.insert(self._schedule_full_key(state_key), value)

    def _schedule_full_key(self, state_key: Tuple) -> Tuple:
        return (self._signature, _SCHEDULE_TAG, state_key)

    # The evaluator's incremental path needs the wrapped model's
    # per-interval decomposition (and its chemistry traits); forward them
    # when present.  (Contribution arrays are not memoised — only
    # whole-schedule sigmas are.)
    def __getattr__(self, name: str):
        if name in (
            "interval_contributions",
            "schedule_contributions",
            "schedule_charge_batch",
            "contribution_floor",
            "TIME_SENSITIVE",
            "KERNEL_NAME",
            "kernel_backend",
            "_kernel_args",
            "_contributions",
        ):
            return getattr(self.inner, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __repr__(self) -> str:
        return (
            f"CachedBatteryModel({self.inner!r}, entries={len(self.cache)}, "
            f"hit_rate={self.cache.stats.hit_rate:.1%})"
        )
