"""Single entry point of the experiment engine: :func:`run_experiments`.

The experiment layer (Table 4, the sweeps, the ablation, the benchmarks and
the CLI) describes its work as *problems x algorithms*, hands the resulting
job list to an executor, and optionally threads a result store through so
interrupted runs resume where they stopped::

    from repro.engine import ParallelExecutor, ResultStore, run_experiments
    from repro.workloads import suite_problems

    run = run_experiments(
        suite_problems(),
        ["iterative", "dp-energy+greedy"],
        executor=ParallelExecutor(max_workers=4),
        store=ResultStore("results/suite.jsonl"),
        resume=True,
    )
    print(run.to_table().to_text())

Results always come back in job order (problems outer, algorithms inner),
independent of executor and of how many jobs were answered from the store,
so downstream tables are reproducible byte for byte.

A minimal in-process run (the doctests below share it):

>>> from repro.engine import run_experiments
>>> from repro.taskgraph import build_g3
>>> from repro.scheduling import SchedulingProblem
>>> problem = SchedulingProblem(graph=build_g3(), deadline=230.0, name="g3")
>>> run = run_experiments([problem], ["all-fastest", "all-slowest"])
>>> run.ok
True
>>> [result.algorithm for result in run.results]
['all-fastest', 'all-slowest']
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..analysis import TextTable
from ..errors import ConfigurationError
from ..obs import RECORDER as _OBS
from ..scheduling import SchedulingProblem
from .executors import ProgressCallback, SerialExecutor
from .jobs import Job, JobResult
from .store import ResultStore

__all__ = ["ExperimentRun", "build_jobs", "run_jobs", "run_experiments"]

#: ``algorithms`` accepts plain names or name -> params mappings.
AlgorithmSpec = Union[Sequence[str], Mapping[str, Mapping[str, Any]]]


def build_jobs(
    problems: Iterable[SchedulingProblem],
    algorithms: AlgorithmSpec,
    params: Optional[Mapping[str, Any]] = None,
) -> List[Job]:
    """The cross product of problems and algorithms as a job list.

    ``algorithms`` is either a sequence of registered names or a mapping
    ``name -> per-algorithm params``; ``params`` (if given) is merged into
    every job's parameters (per-algorithm entries win on conflict).

    >>> from repro.engine import build_jobs
    >>> from repro.taskgraph import build_g3
    >>> from repro.scheduling import SchedulingProblem
    >>> problem = SchedulingProblem(graph=build_g3(), deadline=230.0)
    >>> jobs = build_jobs([problem], {"annealing": {"seed": 7}})
    >>> jobs[0].algorithm, jobs[0].params["seed"]
    ('annealing', 7)
    """
    if isinstance(algorithms, Mapping):
        pairs = [(name, dict(algorithms[name] or {})) for name in algorithms]
    else:
        pairs = [(name, {}) for name in algorithms]
    if not pairs:
        raise ConfigurationError("at least one algorithm is required")
    shared = dict(params or {})
    jobs: List[Job] = []
    for problem in problems:
        for name, algo_params in pairs:
            merged = {**shared, **algo_params}
            jobs.append(Job(problem=problem, algorithm=name, params=merged))
    if not jobs:
        raise ConfigurationError("at least one problem is required")
    return jobs


@dataclass(frozen=True)
class ExperimentRun:
    """Everything produced by one :func:`run_experiments` call.

    >>> from repro.engine import run_experiments
    >>> from repro.taskgraph import build_g3
    >>> from repro.scheduling import SchedulingProblem
    >>> problem = SchedulingProblem(graph=build_g3(), deadline=230.0, name="g3")
    >>> run = run_experiments([problem], ["all-fastest"])
    >>> run.result_for("g3", "all-fastest").feasible
    True
    >>> sorted(run.by_problem()["g3"])
    ['all-fastest']
    """

    jobs: Tuple[Job, ...]
    results: Tuple[JobResult, ...]
    executed: int
    """Jobs actually run in this call."""
    skipped: int
    """Jobs answered from the result store (resume hits)."""
    deduped: int = 0
    """Jobs answered by translating a structurally-isomorphic job's result."""

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """True when every job produced a schedule."""
        return all(result.ok for result in self.results)

    def failures(self) -> Tuple[JobResult, ...]:
        """The results that captured an error."""
        return tuple(result for result in self.results if not result.ok)

    @property
    def cache_hits(self) -> int:
        return sum(result.cache_hits for result in self.results)

    @property
    def cache_misses(self) -> int:
        return sum(result.cache_misses for result in self.results)

    @property
    def cache_hit_rate(self) -> float:
        """Battery-cost cache hit rate aggregated over every executed job."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def elapsed_s(self) -> float:
        """Summed per-job execution time (CPU-side, excludes pool overhead)."""
        return sum(result.elapsed_s for result in self.results)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def result_for(self, problem_name: str, algorithm: str) -> JobResult:
        """The result of one (problem, algorithm) cell."""
        for job, result in zip(self.jobs, self.results):
            if result.problem_name == problem_name and result.algorithm == algorithm:
                return result
        raise KeyError(f"no result for {problem_name!r} / {algorithm!r}")

    def by_problem(self) -> Dict[str, Dict[str, JobResult]]:
        """Results regrouped as ``problem name -> algorithm -> result``."""
        grouped: Dict[str, Dict[str, JobResult]] = {}
        for result in self.results:
            grouped.setdefault(result.problem_name, {})[result.algorithm] = result
        return grouped

    def to_table(self) -> TextTable:
        """One row per job: problem, algorithm, sigma, makespan, status."""
        table = TextTable(
            title="Experiment run",
            headers=("problem", "algorithm", "sigma", "makespan", "status"),
        )
        for result in self.results:
            table.add_row(
                result.problem_name,
                result.algorithm,
                result.cost,
                result.makespan,
                "ok" if result.ok else result.error,
            )
        return table

    def summary(self) -> str:
        """One-line accounting summary."""
        deduped = f", {self.deduped} deduped" if self.deduped else ""
        return (
            f"{len(self.results)} jobs ({self.executed} executed, "
            f"{self.skipped} resumed{deduped}), {len(self.failures())} failed, "
            f"cache hit rate {self.cache_hit_rate:.1%}"
        )


def run_experiments(
    problems: Iterable[SchedulingProblem],
    algorithms: AlgorithmSpec,
    executor=None,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    params: Optional[Mapping[str, Any]] = None,
    dedupe: bool = False,
) -> ExperimentRun:
    """Run every algorithm on every problem through an executor.

    >>> from repro.engine import run_experiments
    >>> from repro.taskgraph import build_g3
    >>> from repro.scheduling import SchedulingProblem
    >>> problem = SchedulingProblem(graph=build_g3(), deadline=230.0, name="g3")
    >>> run = run_experiments([problem], ["all-fastest", "all-slowest"])
    >>> run.summary()
    '2 jobs (2 executed, 0 resumed), 0 failed, cache hit rate 0.0%'

    Parameters
    ----------
    problems:
        Problem instances (e.g. :func:`repro.workloads.suite_problems`).
    algorithms:
        Registered algorithm names, or a mapping of name -> params.
    executor:
        Any object with the executor contract
        (``run(jobs, progress=..., runner=...)`` — ``runner`` is the
        module-level job-execution function, defaulted per job type);
        defaults to a fresh :class:`~repro.engine.executors.SerialExecutor`.
    store:
        Optional :class:`~repro.engine.store.ResultStore`; every newly
        executed result is appended to it.
    resume:
        When true (requires ``store``), jobs whose key already has a
        successful stored result are not executed again.
    progress:
        Optional ``(done, total, result)`` callback for newly executed jobs.
    params:
        Extra parameters merged into every job (see :func:`build_jobs`).
    dedupe:
        When true, run one representative per group of
        structurally-isomorphic jobs and translate its result to the rest
        (see :func:`run_jobs`).
    """
    jobs = build_jobs(problems, algorithms, params=params)
    return run_jobs(
        jobs,
        executor=executor,
        store=store,
        resume=resume,
        progress=progress,
        dedupe=dedupe,
    )


def _translate_dedup_result(
    rep_job: Job, rep_result: JobResult, job: Job
) -> Optional[JobResult]:
    """Re-express a representative's result on an isomorphic job's graph.

    Both graphs canonicalise to the same form (equal structural keys), so
    composing ``representative name -> canonical name -> member name``
    carries the schedule across; costs and makespans transfer verbatim
    because sigma only sees the (identical) design-point values.  Returns
    ``None`` when the translation cannot be trusted — a failed
    representative, or a translated sequence the member graph rejects
    (possible only for graphs whose refinement signatures leave
    non-automorphic tasks tied) — in which case the caller executes the
    member job for real.
    """
    from ..taskgraph.optimize import canonical_form

    if not rep_result.ok or rep_result.sequence is None:
        return None
    rep_to_canon = canonical_form(rep_job.problem.graph).mapping
    canon_to_member = canonical_form(job.problem.graph).inverse
    try:
        sequence = tuple(
            canon_to_member[rep_to_canon[name]] for name in rep_result.sequence
        )
        assignment = (
            {
                canon_to_member[rep_to_canon[name]]: int(column)
                for name, column in rep_result.assignment.items()
            }
            if rep_result.assignment is not None
            else None
        )
    except KeyError:
        return None
    if not job.problem.graph.is_valid_sequence(sequence):
        return None
    return JobResult(
        key=job.key(),
        algorithm=job.algorithm,
        problem_name=job.problem.name or job.problem.graph.name or "",
        cost=rep_result.cost,
        makespan=rep_result.makespan,
        feasible=rep_result.feasible,
        sequence=sequence,
        assignment=assignment,
    )


def run_jobs(
    jobs: Sequence[Job],
    executor=None,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    dedupe: bool = False,
) -> ExperimentRun:
    """Run an explicit job list (the layer below :func:`run_experiments`).

    Drivers whose jobs are not a plain problems-x-algorithms cross product
    (e.g. the ablation, which varies per-job parameters) build their job
    lists by hand and come in here.  Ordering, store and resume semantics
    are identical to :func:`run_experiments`.

    With ``dedupe=True`` the pending jobs are grouped by
    :meth:`Job.structural_key` before dispatch: one representative per
    group of structurally-isomorphic jobs is executed, and the remaining
    members receive the representative's result translated through the
    graphs' canonical forms (see :func:`_translate_dedup_result`).
    Translated results carry the member's own key and are appended to the
    store like executed ones; ``run.deduped`` counts them.  The default is
    off, leaving dispatch byte-identical to previous releases.

    >>> from repro.engine import Job, run_jobs
    >>> from repro.taskgraph import build_g3
    >>> from repro.scheduling import SchedulingProblem
    >>> problem = SchedulingProblem(graph=build_g3(), deadline=230.0)
    >>> run = run_jobs([Job(problem=problem, algorithm="all-fastest")])
    >>> run.executed, run.skipped
    (1, 0)
    """
    if resume and store is None:
        raise ConfigurationError("resume=True requires a result store")
    jobs = list(jobs)
    executor = executor if executor is not None else SerialExecutor()

    # The run-level root span: everything below — dedupe, dispatch, store
    # append, and (via the TraceContext the parallel executor ships) the
    # worker-side job spans — parents onto it, giving traces one tree per
    # engine entry instead of a forest of loose jobs.
    with _OBS.span("engine.run", label=f"{len(jobs)} jobs"):
        if resume and store is not None:
            pending, done = store.split_pending(jobs)
        else:
            pending, done = list(jobs), {}

        if _OBS.enabled and done:
            _OBS.count("engine.jobs.resumed", len(done))
        deduped = 0
        if dedupe and pending:
            groups: Dict[str, List[Job]] = {}
            for job in pending:
                groups.setdefault(job.structural_key(), []).append(job)
            representatives = [group[0] for group in groups.values()]
            with _OBS.span("engine.dedupe", label=f"{len(pending)}->{len(representatives)}"):
                fresh = list(executor.run(representatives, progress=progress))
            retry: List[Job] = []
            for group, rep_result in zip(groups.values(), list(fresh)):
                for member in group[1:]:
                    translated = _translate_dedup_result(group[0], rep_result, member)
                    if translated is None:
                        retry.append(member)
                    else:
                        fresh.append(translated)
                        deduped += 1
            if retry:
                fresh.extend(executor.run(retry, progress=progress))
            if _OBS.enabled and deduped:
                _OBS.count("engine.jobs.deduped", deduped)
        else:
            fresh = executor.run(pending, progress=progress) if pending else []
        if store is not None:
            with _OBS.span("engine.store.append", label=str(store.path.name)):
                store.append_many(fresh)

    by_key: Dict[str, JobResult] = dict(done)
    for result in fresh:
        by_key[result.key] = result
    ordered = tuple(by_key[job.key()] for job in jobs)
    return ExperimentRun(
        jobs=tuple(jobs),
        results=ordered,
        executed=len(fresh) - deduped,
        skipped=len(done),
        deduped=deduped,
    )
