"""Battery-aware task scheduling for portable computing platforms.

A from-scratch reproduction of Khan & Vemuri, *"An Iterative Algorithm for
Battery-Aware Task Scheduling on Portable Computing Platforms"* (DATE 2005):
an iterative heuristic that jointly chooses a task execution order and one
design point (voltage/frequency setting or FPGA bitstream) per task so that
a task-graph deadline is met while the apparent charge drawn from the
battery — per the Rakhmatov–Vrudhula analytical model — is minimised.

Quickstart
----------
>>> from repro import (
...     BatterySpec, SchedulingProblem, battery_aware_schedule, build_g3,
... )
>>> problem = SchedulingProblem(graph=build_g3(), deadline=230.0,
...                             battery=BatterySpec(beta=0.273))
>>> solution = battery_aware_schedule(problem)
>>> solution.feasible
True

Subpackages
-----------
``repro.taskgraph``
    Tasks, design points, DAGs, voltage-scaling synthesis, paper graphs.
``repro.battery``
    Load profiles and battery models (Rakhmatov–Vrudhula, ideal, Peukert).
``repro.scheduling``
    Sequences, assignments, schedules, list scheduling, battery cost.
``repro.core``
    The paper's iterative algorithm and its factor machinery.
``repro.baselines``
    The [1]-style DP+greedy baseline and further comparison schedulers.
``repro.workloads``
    Synthetic task-graph generators and the legacy benchmark-suite view.
``repro.scenarios``
    The scenario catalogue: named, seeded specs crossing DAG families,
    platform models, battery chemistries and deadline tiers.
``repro.engine``
    Parallel experiment execution: jobs, executors, battery-cost caching
    and resumable result stores (offline experiments and simulations).
``repro.sim``
    Event-driven runtime simulation: online scheduling policies,
    seeded perturbations, bit-conformant replay of offline schedules.
``repro.obs``
    Tracing/metrics/profiling: a no-op-when-disabled recorder, JSONL
    traces, Chrome-trace export (``--trace`` / ``repro stats``).
``repro.analysis``
    Metrics, text tables, algorithm comparisons and suite leaderboards.
``repro.experiments``
    Drivers reproducing every table and figure of the paper, plus the
    scenario-suite driver (:func:`repro.experiments.run_suite`).
"""

from .baselines import (
    BaselineResult,
    all_fastest_baseline,
    all_slowest_baseline,
    best_uniform_baseline,
    chowdhury_baseline,
    exhaustive_optimum,
    minimum_energy_assignment,
    rakhmatov_baseline,
    simulated_annealing_baseline,
)
from .battery import (
    BatteryModel,
    BatterySpec,
    IdealBatteryModel,
    KineticBatteryModel,
    LoadInterval,
    LoadProfile,
    PeukertModel,
    RakhmatovVrudhulaModel,
    simulate_discharge,
)
from .core import (
    BatteryAwareScheduler,
    FactorWeights,
    SchedulerConfig,
    SchedulingSolution,
    battery_aware_schedule,
    refine_solution,
)
from .platform import DvsProcessor, FpgaFabric, OperatingPoint
from .errors import (
    BatteryModelError,
    DeadlineError,
    InfeasibleDeadlineError,
    ReproError,
    ScheduleError,
    TaskGraphError,
)
from .scheduling import (
    DesignPointAssignment,
    Schedule,
    SchedulingProblem,
    battery_cost,
    sequence_by_decreasing_energy,
)
from .taskgraph import (
    DesignPoint,
    Task,
    TaskGraph,
    build_g2,
    build_g3,
    scaled_design_points,
)
from .scenarios import ScenarioRegistry, ScenarioSpec, default_registry
from .sim import (
    PerturbationModel,
    Simulator,
    SimulationResult,
    StaticReplayScheduler,
)
from .workloads import (
    chain_graph,
    diamond_graph,
    fork_join_graph,
    layered_graph,
    problem_with_tightness,
    tree_graph,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # task graphs
    "DesignPoint",
    "Task",
    "TaskGraph",
    "build_g2",
    "build_g3",
    "scaled_design_points",
    # battery
    "BatteryModel",
    "BatterySpec",
    "IdealBatteryModel",
    "PeukertModel",
    "KineticBatteryModel",
    "RakhmatovVrudhulaModel",
    "LoadInterval",
    "LoadProfile",
    "simulate_discharge",
    # platform models
    "DvsProcessor",
    "OperatingPoint",
    "FpgaFabric",
    # scheduling substrate
    "DesignPointAssignment",
    "Schedule",
    "SchedulingProblem",
    "battery_cost",
    "sequence_by_decreasing_energy",
    # core algorithm
    "battery_aware_schedule",
    "BatteryAwareScheduler",
    "refine_solution",
    "SchedulerConfig",
    "SchedulingSolution",
    "FactorWeights",
    # baselines
    "BaselineResult",
    "rakhmatov_baseline",
    "minimum_energy_assignment",
    "chowdhury_baseline",
    "simulated_annealing_baseline",
    "exhaustive_optimum",
    "all_fastest_baseline",
    "all_slowest_baseline",
    "best_uniform_baseline",
    # workloads
    "chain_graph",
    "fork_join_graph",
    "layered_graph",
    "tree_graph",
    "diamond_graph",
    "problem_with_tightness",
    # scenarios
    "ScenarioSpec",
    "ScenarioRegistry",
    "default_registry",
    # runtime simulation
    "Simulator",
    "SimulationResult",
    "StaticReplayScheduler",
    "PerturbationModel",
    # errors
    "ReproError",
    "TaskGraphError",
    "ScheduleError",
    "DeadlineError",
    "InfeasibleDeadlineError",
    "BatteryModelError",
]
