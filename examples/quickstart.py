#!/usr/bin/env python
"""Quickstart: schedule the paper's G3 task graph against a 230-minute deadline.

This is the smallest end-to-end use of the library:

1. build a task graph (here the paper's Table 1 example, G3),
2. wrap it into a :class:`SchedulingProblem` with a deadline and a battery,
3. run the iterative battery-aware scheduler, and
4. inspect the resulting schedule and compare it against the energy-only
   baseline the paper compares to in Table 4.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BatterySpec,
    SchedulingProblem,
    battery_aware_schedule,
    build_g3,
    rakhmatov_baseline,
)
from repro.analysis import percent_difference, schedule_metrics


def main() -> None:
    # 1. The application: the paper's 15-task fork-join graph with five
    #    design points (voltage/frequency settings) per task.
    graph = build_g3()
    print(f"task graph: {graph.name} with {graph.num_tasks} tasks, "
          f"{graph.uniform_design_point_count()} design points per task")
    print(f"all-fastest makespan: {graph.min_makespan():.1f} min, "
          f"all-slowest makespan: {graph.max_makespan():.1f} min")

    # 2. The problem: finish within 230 minutes on a battery whose
    #    Rakhmatov-Vrudhula diffusion parameter is 0.273 (the paper's value).
    problem = SchedulingProblem(
        graph=graph,
        deadline=230.0,
        battery=BatterySpec(beta=0.273),
        name="G3@230",
    )

    # 3. Run the paper's iterative heuristic.
    solution = battery_aware_schedule(problem)
    print()
    print("iterative battery-aware scheduler")
    print("  " + solution.summary())
    print("  sequence     :", ",".join(solution.sequence))
    print("  design points:", ",".join(solution.design_point_labels()))
    print("  per-iteration sigma:", [round(c, 1) for c in solution.iteration_costs()])

    # 4. Detailed metrics of the final schedule, and the baseline comparison.
    metrics = schedule_metrics(solution.schedule(), problem.model(), deadline=problem.deadline)
    print(f"  slack: {metrics.slack:.1f} min, peak current: {metrics.peak_current:.0f} mA, "
          f"rate-capacity overhead: {metrics.rate_capacity_overhead:.1f} mA·min")

    baseline = rakhmatov_baseline(problem)
    print()
    print("energy-minimising baseline (dynamic program + greedy sequencing)")
    print("  " + baseline.summary())
    print()
    print(f"battery capacity saved vs. the baseline: "
          f"{percent_difference(baseline.cost, solution.cost):.1f} % "
          f"(paper reports 65 % for this instance)")


if __name__ == "__main__":
    main()
