#!/usr/bin/env python
"""Case study: the robotic-arm controller (the paper's Section 5, graph G2).

The application is a 9-task controller running on a voltage-scalable
processor with four operating points per task (Figure 5 of the paper).  The
script reproduces the G2 half of Table 4 — battery capacity used at the
55, 75 and 95 minute deadlines for the iterative heuristic and the
energy-only baseline — and then goes further than the paper by also showing
two additional baselines and the battery lifetime implied by a finite-
capacity battery.

Run with::

    python examples/robotic_arm_controller.py
"""

from __future__ import annotations

from repro import (
    BatterySpec,
    SchedulingProblem,
    battery_aware_schedule,
    build_g2,
)
from repro.analysis import TextTable, percent_difference
from repro.baselines import (
    all_fastest_baseline,
    chowdhury_baseline,
    rakhmatov_baseline,
)
from repro.taskgraph import G2_TABLE4_DEADLINES, to_dot


def main() -> None:
    graph = build_g2()
    battery = BatterySpec(beta=0.273)

    print("robotic-arm controller task graph (G2):")
    print(to_dot(graph))
    print()

    table = TextTable(
        title="Battery capacity used (mA·min) on G2 — lower is better",
        headers=(
            "deadline (min)",
            "iterative (ours)",
            "dp-energy+greedy",
            "last-task-first",
            "all-fastest",
            "% diff vs dp",
        ),
    )

    for deadline in G2_TABLE4_DEADLINES:
        problem = SchedulingProblem(
            graph=graph, deadline=deadline, battery=battery, name=f"G2@{deadline:g}"
        )
        ours = battery_aware_schedule(problem)
        dp = rakhmatov_baseline(problem)
        chowdhury = chowdhury_baseline(problem)
        fastest = all_fastest_baseline(problem)
        table.add_row(
            deadline,
            ours.cost,
            dp.cost,
            chowdhury.cost,
            fastest.cost,
            percent_difference(dp.cost, ours.cost),
        )

    print(table.to_text())
    print()

    # Beyond the paper: how long would a realistic battery actually last if
    # the controller ran its 75-minute schedule repeatedly, back to back?
    problem = SchedulingProblem(graph=graph, deadline=75.0, battery=battery)
    solution = battery_aware_schedule(problem)
    model = problem.model()
    single_run = solution.schedule().to_profile()

    capacity = 40_000.0  # mA·min, a small lithium cell
    runs = 0
    profile = single_run
    while model.lifetime(profile, capacity) is None and runs < 50:
        runs += 1
        profile = profile.concatenate(single_run)
    print(f"with a {capacity:.0f} mA·min battery the 75-minute schedule can be repeated "
          f"about {runs} times before the battery is exhausted "
          f"(apparent charge per run: {solution.cost:.0f} mA·min)")


if __name__ == "__main__":
    main()
