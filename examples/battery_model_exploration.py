#!/usr/bin/env python
"""Explore the Rakhmatov–Vrudhula battery model the scheduler optimises for.

The scheduling results only make sense in the light of three battery
behaviours (Section 3 of the paper):

* the **rate-capacity effect** — drawing a high current costs more apparent
  charge than its coulomb count;
* the **recovery effect** — resting after a heavy discharge lets the battery
  recover part of the apparent loss; and
* the **ordering property** — for independent tasks, executing the
  high-current ones first minimises the apparent charge at completion.

This example quantifies each one with the library's battery models and shows
how an ideal coulomb counter and a Peukert's-law model rank the same
profiles differently.

Run with::

    python examples/battery_model_exploration.py
"""

from __future__ import annotations

import itertools

from repro import IdealBatteryModel, LoadProfile, PeukertModel, RakhmatovVrudhulaModel
from repro.analysis import TextTable


def rate_capacity_effect() -> None:
    """Same charge, different rates: the faster discharge costs more."""
    model = RakhmatovVrudhulaModel(beta=0.273)
    table = TextTable(
        title="Rate-capacity effect: 12000 mA·min of nominal charge drawn at different rates",
        headers=("current (mA)", "duration (min)", "sigma (mA·min)", "overhead (%)"),
    )
    for current in (200.0, 400.0, 800.0, 1600.0):
        duration = 12000.0 / current
        profile = LoadProfile.from_back_to_back([duration], [current])
        sigma = model.cost(profile)
        table.add_row(current, duration, sigma, (sigma / 12000.0 - 1.0) * 100.0)
    print(table.to_text())
    print()


def recovery_effect() -> None:
    """Inserting idle time between two bursts reduces the final apparent charge."""
    model = RakhmatovVrudhulaModel(beta=0.273)
    table = TextTable(
        title="Recovery effect: two 10-minute 800 mA bursts separated by a rest",
        headers=("rest between bursts (min)", "sigma at completion (mA·min)"),
    )
    for rest in (0.0, 5.0, 15.0, 30.0, 60.0):
        first = LoadProfile.from_back_to_back([10.0], [800.0])
        second = LoadProfile.from_back_to_back([10.0], [800.0])
        profile = first.concatenate(second, gap=rest)
        table.add_row(rest, model.cost(profile))
    print(table.to_text())
    print()


def ordering_property() -> None:
    """All permutations of three independent tasks, ranked by apparent charge."""
    tasks = {"heavy": (10.0, 900.0), "medium": (10.0, 400.0), "light": (10.0, 100.0)}
    models = {
        "analytical (beta=0.273)": RakhmatovVrudhulaModel(beta=0.273),
        "ideal": IdealBatteryModel(),
        "peukert (k=1.2)": PeukertModel(exponent=1.2, reference_current=400.0),
    }
    table = TextTable(
        title="Ordering property: apparent charge of every execution order",
        headers=("order",) + tuple(models),
    )
    for order in itertools.permutations(tasks):
        profile = LoadProfile.from_back_to_back(
            [tasks[name][0] for name in order],
            [tasks[name][1] for name in order],
        )
        table.add_row(
            " -> ".join(order),
            *(model.cost(profile) for model in models.values()),
        )
    print(table.to_text())
    print()
    print("note: only the analytical model distinguishes the orders — the paper's")
    print("sequencing heuristics have no effect under an ideal or Peukert battery.")
    print()


def lifetime_estimation() -> None:
    """Battery lifetime under a periodic workload for different battery qualities."""
    table = TextTable(
        title="Lifetime of a 30000 mA·min battery under a repeating 600 mA, 5-minute duty cycle "
              "with 5-minute rests",
        headers=("beta", "lifetime (min)"),
    )
    cycle = LoadProfile.from_back_to_back([5.0], [600.0])
    workload = cycle
    for _ in range(40):
        workload = workload.concatenate(cycle, gap=5.0)
    for beta in (0.15, 0.273, 0.6, 5.0):
        model = RakhmatovVrudhulaModel(beta=beta)
        lifetime = model.lifetime(workload, capacity=30_000.0)
        table.add_row(beta, lifetime if lifetime is not None else float("nan"))
    print(table.to_text())


def main() -> None:
    rate_capacity_effect()
    recovery_effect()
    ordering_property()
    lifetime_estimation()


if __name__ == "__main__":
    main()
